"""Quickstart: from measurements to Tolerance Tier routing rules.

This walks the full Tolerance Tiers pipeline on the image-classification
service in under a minute:

1. measure every service version over a batch of representative requests,
2. inspect the "one size fits all" trade-off those measurements expose,
3. let the routing-rule generator bootstrap the ensemble design space with
   statistical confidence,
4. read off, for the 1 % / 5 % / 10 % tiers, which ensemble each tier uses
   and what it saves compared to always serving the most accurate model, and
5. stand up a :class:`~repro.service.gateway.TierGateway` over the same
   measurements (a :class:`~repro.service.gateway.ReplayBackend` — no
   cluster needed) and serve a batch of annotated requests through it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table, osfa_limit_summary, version_summaries
from repro.core import (
    RoutingRuleGenerator,
    SingleVersionPolicy,
    TierRouter,
    build_pricing,
    enumerate_configurations,
    evaluate_policy,
)
from repro.service import Objective, ServiceRequest, measure_ic_service
from repro.service.gateway import ReplayBackend, TierGateway


def main() -> None:
    # 1. Measure the service: every version sees the same 3 000 requests.
    measurements = measure_ic_service(3000, device="cpu", seed=7)
    print(f"service: {measurements.service}, requests: {measurements.n_requests}\n")

    # 2. The "one size fits all" picture (paper Section III).
    rows = [
        [s.version, s.mean_error, s.mean_latency_s, s.latency_vs_fastest, s.error_vs_best]
        for s in version_summaries(measurements)
    ]
    print(
        format_table(
            ["version", "top-1 error", "latency (s)", "latency vs fastest", "error vs best"],
            rows,
            title="Service versions (fastest first)",
        )
    )
    summary = osfa_limit_summary(measurements)
    print(
        f"\nPaying {summary.latency_ratio:.1f}x the latency buys a "
        f"{summary.error_reduction:.0%} error reduction — but every consumer "
        "pays it, whether they need the accuracy or not.\n"
    )

    # 3. Generate routing rules with 99.9 % confidence (paper Fig. 7).
    configurations = enumerate_configurations(measurements)
    generator = RoutingRuleGenerator(
        measurements, configurations, confidence=0.999, seed=1
    )

    # 4. What each tier buys, for both objectives.  Pricing and the OSFA
    # baseline are evaluated once and threaded through every call.
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(
        measurements.most_accurate_version()
    ).evaluate(measurements)
    tolerances = [0.01, 0.05, 0.10]
    tables = {}
    for objective in ("response-time", "cost"):
        table = generator.generate(tolerances, objective)
        tables[Objective.from_header(objective)] = table
        rows = []
        for tolerance in tolerances:
            configuration = table.config_for(tolerance)
            metrics = evaluate_policy(
                measurements,
                configuration.policy,
                pricing=pricing,
                baseline_outcomes=baseline,
            )
            rows.append(
                [
                    f"{tolerance:.0%}",
                    configuration.name,
                    metrics.error_degradation,
                    metrics.response_time_reduction,
                    metrics.cost_reduction,
                ]
            )
        print(
            format_table(
                ["tier", "configuration", "error degradation", "time saved", "cost saved"],
                rows,
                title=f"Tolerance Tiers, objective = {objective}",
                float_format=".3f",
            )
        )
        print()

    # 5. Serve through the gateway.  The replay backend executes each
    # ensemble against the measured outcome table, so no cluster is needed
    # to see the client API end to end.
    gateway = TierGateway(ReplayBackend(measurements), router=TierRouter(tables))
    requests = [
        ServiceRequest(
            request_id=f"client_{i}",
            payload=measurements.request_ids[i],
            tolerance=tolerance,
        )
        for i, tolerance in enumerate([0.0, 0.01, 0.05, 0.10] * 3)
    ]
    tickets = gateway.submit_batch(requests, deadline_s=0.5)
    escalated = sum(1 for t in tickets if len(t.result().versions_used) > 1)
    met = sum(1 for t in tickets if t.deadline_met)
    print(
        f"Gateway over the replay backend served {len(tickets)} annotated "
        f"requests: {escalated} escalated, {met}/{len(tickets)} met the "
        "500 ms deadline."
    )


if __name__ == "__main__":
    main()
