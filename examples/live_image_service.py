"""Live serving scenario: the tier gateway over real CNNs.

Everything here runs "for real": miniature CNNs are trained with the NumPy
trainer, wrapped as service versions, deployed as node pools behind a load
balancer, and fronted by a :class:`~repro.service.gateway.TierGateway`
over the live :class:`~repro.service.gateway.DirectBackend`.  Consumers
then submit requests with the paper's ``Tolerance`` / ``Objective``
headers — a photo organiser that just wants quick labels uses the 10 %
tier, a medical-imaging triage app insists on the 0 % tier — and the
gateway escalates between the small and large CNN based on the small
model's confidence.  A final batch shows the session surface: tickets
from ``submit_batch`` with a per-request deadline.

Run with::

    python examples/live_image_service.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    RoutingRuleGenerator,
    TierRouter,
    enumerate_configurations,
)
from repro.service.gateway import DirectBackend, TierGateway
from repro.datasets import make_imagenet_surrogate
from repro.service import (
    ClusterDeployment,
    NodePool,
    Objective,
    ServiceRequest,
    get_instance_type,
    measure_mini_ic_service,
)
from repro.service.node import CallableVersion, VersionResult
from repro.vision import ImageClassifier, SGDTrainer, TrainingConfig, build_mini_model


def train_classifiers(dataset, n_classes):
    """Train a small and a large miniature CNN on the synthetic images."""
    classifiers = {}
    n_train = int(len(dataset) * 0.7)
    for name, epochs in (("mini_googlenet", 6), ("mini_resnet", 6)):
        network = build_mini_model(name, dataset.images.shape[1:], n_classes, seed=0)
        trainer = SGDTrainer(
            network, TrainingConfig(epochs=epochs, learning_rate=0.08, seed=0)
        )
        history = trainer.train(dataset.images[:n_train], dataset.labels[:n_train])
        print(f"trained {name}: final train accuracy {history[-1]['accuracy']:.2f}")
        classifiers[name] = ImageClassifier(network, device_gflops=1.0)
    return classifiers


def as_service_version(name, classifier, dataset):
    """Adapt an ImageClassifier into the cluster's ServiceVersion protocol."""

    def handler(request_id, payload):
        index = int(payload)
        image, label = dataset[index]
        result = classifier.classify(image, label, request_id=request_id)
        return VersionResult(
            request_id=request_id,
            version=name,
            output=result.predicted_class,
            error=result.top1_error,
            confidence=result.confidence,
            compute_seconds=result.latency_s,
        )

    return CallableVersion(name, handler)


def main() -> None:
    dataset = make_imagenet_surrogate(n_images=900, n_classes=6, image_size=8, seed=4)
    classifiers = train_classifiers(dataset, n_classes=6)

    # Offline: measure the miniature service and generate routing rules.
    # Only the two deployed versions are kept; whichever trained better is
    # the "accurate" version the other escalates to.
    measurements = measure_mini_ic_service(
        n_images=900, n_classes=6, image_size=8, epochs=6, seed=4
    ).restrict_versions(["mini_googlenet", "mini_resnet"])
    accurate = measurements.most_accurate_version()
    fast = next(v for v in measurements.versions if v != accurate)
    print(f"\ndeployed versions: fast={fast}, accurate={accurate}")
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=[fast],
        accurate_version=accurate,
    )
    generator = RoutingRuleGenerator(
        measurements, configurations, confidence=0.99, seed=0,
        min_trials=8, max_trials=40,
    )
    router = TierRouter(
        {
            Objective.RESPONSE_TIME: generator.generate(
                [0.01, 0.05, 0.10], Objective.RESPONSE_TIME
            ),
            Objective.COST: generator.generate([0.01, 0.05, 0.10], Objective.COST),
        }
    )

    # Online: deploy node pools and the annotated-request endpoint.
    instance = get_instance_type("cpu.medium")
    cluster = ClusterDeployment(
        {
            "mini_googlenet": NodePool(
                as_service_version("mini_googlenet", classifiers["mini_googlenet"], dataset),
                instance,
                n_nodes=2,
            ),
            "mini_resnet": NodePool(
                as_service_version("mini_resnet", classifiers["mini_resnet"], dataset),
                instance,
            ),
        }
    )
    gateway = TierGateway(DirectBackend(cluster), router=router)

    rng = np.random.default_rng(0)
    print("\nServing annotated requests (paper Section IV-A):")
    for consumer, headers in (
        ("photo-organiser", {"Tolerance": "0.10", "Objective": "response-time"}),
        ("shopping-app", {"Tolerance": "0.05", "Objective": "cost"}),
        ("medical-triage", {"Tolerance": "0.0", "Objective": "response-time"}),
    ):
        image_index = int(rng.integers(600, 900))
        response = gateway.handle_http(
            request_id=f"{consumer}_{image_index}",
            payload=image_index,
            headers=headers,
        )
        true_label = int(dataset.labels[image_index])
        print(
            f"  {consumer:16s} tier={headers['Tolerance']:>4s}/{headers['Objective']:<13s} "
            f"versions={'+'.join(response.versions_used):28s} "
            f"predicted={response.result} (true {true_label})  "
            f"latency={response.response_time_s * 1000:6.1f} ms  "
            f"cost=${response.invocation_cost * 1e6:.2f}e-6"
        )

    # The session surface: a burst of 10 %-tier requests as tickets, each
    # against a 150 ms response-time deadline.
    batch = [
        ServiceRequest(
            request_id=f"burst_{i:02d}",
            payload=int(rng.integers(600, 900)),
            tolerance=0.10,
        )
        for i in range(8)
    ]
    tickets = gateway.submit_batch(batch, deadline_s=0.150)
    met = sum(1 for t in tickets if t.deadline_met)
    escalated = sum(
        1 for t in tickets if len(t.result().versions_used) > 1
    )
    print(
        f"\nBurst of {len(tickets)} ticketed requests: "
        f"{met}/{len(tickets)} met the 150 ms deadline, "
        f"{escalated} escalated to the accurate model"
    )

    print("\nProvider-side IaaS spend per version:")
    for version, spend in cluster.iaas_spend().items():
        print(f"  {version}: ${spend * 1e6:.2f}e-6")


if __name__ == "__main__":
    main()
