"""Auditing the accuracy guarantees with cross-validation.

The paper's central promise is statistical: a consumer of the X % tier will
never see more than X % error degradation relative to the most accurate
tier, with 99.9 % confidence.  This example reproduces the audit that backs
that claim — rules are generated from nine folds of the measured traffic
and replayed on the held-out tenth — and prints the worst held-out
degradation observed for a range of tiers, alongside the savings they
delivered.

Run with::

    python examples/guarantee_audit.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import audit_guarantees, enumerate_configurations
from repro.service import measure_ic_service


def main() -> None:
    measurements = measure_ic_service(4000, device="cpu", seed=3)
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7),
        fast_versions=["ic_cpu_squeezenet", "ic_cpu_googlenet"],
    )
    audit = audit_guarantees(
        measurements,
        tolerances=[0.01, 0.02, 0.05, 0.10],
        objective="response-time",
        folds=10,
        confidence=0.999,
        seed=0,
        configurations=configurations,
        generator_kwargs={"min_trials": 8, "max_trials": 40},
    )

    rows = [
        [
            f"{row.tolerance:.0%}",
            row.worst_degradation,
            row.mean_degradation,
            row.mean_response_time_reduction,
            "VIOLATED" if row.violated else "held",
        ]
        for row in audit.rows
    ]
    print(
        format_table(
            ["tier", "worst held-out degradation", "mean degradation",
             "mean time saved", "guarantee"],
            rows,
            title=(
                f"10-fold guarantee audit, {audit.service}, "
                f"objective={audit.objective.value}, confidence={audit.confidence:.1%}"
            ),
            float_format=".4f",
        )
    )
    print(f"\nTotal violations across all tiers and folds: {audit.total_violations}")


if __name__ == "__main__":
    main()
