"""Speech-recognition scenario: Tolerance Tiers over a real beam-search engine.

This example exercises the full ASR substrate — synthetic VoxForge-style
corpus, bigram language model, token-passing beam search under the seven
heuristic service versions — and then applies Tolerance Tiers on top of the
measured accuracy/latency/confidence table, mirroring the paper's speech
evaluation (a voicemail-transcription product that can tolerate a few per
cent extra word errors in exchange for snappier responses).

Run with::

    python examples/asr_tolerance_tiers.py  [n_utterances]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    categorize_requests,
    error_by_category,
    format_table,
    osfa_limit_summary,
    version_pareto,
)
from repro.core import (
    RoutingRuleGenerator,
    SingleVersionPolicy,
    build_pricing,
    enumerate_configurations,
    evaluate_policy,
)
from repro.service import measure_asr_service


def main(n_utterances: int = 120) -> None:
    print(f"Decoding {n_utterances} utterances under all 7 ASR versions ...")
    measurements = measure_asr_service(n_utterances=n_utterances, seed=20190324)

    # --- limitation study -------------------------------------------------
    points = version_pareto(measurements)
    print(
        format_table(
            ["version", "WER", "latency (s)", "Pareto-optimal"],
            [[p.version, p.mean_error, p.mean_latency_s, p.on_frontier] for p in points],
            title="\nASR service versions",
        )
    )

    shares = categorize_requests(measurements, tolerance=1e-6).shares()
    print("\nRequest categories (paper Fig. 2e):")
    for name, share in shares.items():
        print(f"  {name:10s} {share:6.1%}")

    table = error_by_category(measurements)
    print("\nWER of the 'improves' requests per version (paper Fig. 3a):")
    improves = table.get("improves", {})
    for version, error in improves.items():
        print(f"  {version}: {error:.3f}")

    summary = osfa_limit_summary(measurements)
    print(
        f"\n'One size fits all' forces every request onto {summary.most_accurate_version}: "
        f"{summary.latency_ratio:.1f}x the latency of {summary.fastest_version} "
        f"for a {summary.error_reduction:.0%} lower WER.\n"
    )

    # --- Tolerance Tiers ---------------------------------------------------
    configurations = enumerate_configurations(
        measurements,
        thresholds=(0.4, 0.5, 0.6, 0.7, 0.8),
        fast_versions=["asr_v3", "asr_v4", "asr_v5", "asr_v6"],
    )
    generator = RoutingRuleGenerator(
        measurements, configurations, confidence=0.999, seed=11
    )

    # Shared pricing + OSFA baseline for the tier evaluations below.
    pricing = build_pricing(measurements)
    baseline = SingleVersionPolicy(
        measurements.most_accurate_version()
    ).evaluate(measurements)
    rows = []
    for tolerance in (0.01, 0.02, 0.05, 0.10):
        table = generator.generate([tolerance], "response-time")
        configuration = table.config_for(tolerance)
        metrics = evaluate_policy(
            measurements,
            configuration.policy,
            pricing=pricing,
            baseline_outcomes=baseline,
        )
        rows.append(
            [
                f"{tolerance:.0%}",
                configuration.name,
                metrics.mean_error,
                metrics.error_degradation,
                metrics.response_time_reduction,
                metrics.escalation_rate,
            ]
        )
    print(
        format_table(
            ["tier", "configuration", "WER", "degradation", "time saved", "escalated"],
            rows,
            title="Response-time tiers for the ASR service",
            float_format=".3f",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
