"""The Tolerance Tier abstraction.

A tier is what the API consumer programs against: "I can tolerate at most
X relative error degradation compared to the most accurate tier; subject to
that, optimise Y" where Y is response time or invocation cost.  The paper
evaluates tolerances from 0 to 10 % in 0.1 % steps with a 99.9 % confidence
requirement on the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.service.request import Objective

__all__ = ["ToleranceTier", "default_tolerance_grid"]


@dataclass(frozen=True)
class ToleranceTier:
    """One tier an API consumer can select.

    Attributes:
        tolerance: Maximum acceptable relative error degradation versus the
            most accurate tier (e.g. ``0.01`` for the 1 % tier).  ``0.0``
            denotes the most accurate tier itself.
        objective: What the tier optimises once the tolerance is satisfied.
    """

    tolerance: float
    objective: Objective = Objective.RESPONSE_TIME

    def __post_init__(self) -> None:
        if self.tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")

    @property
    def label(self) -> str:
        """Human-readable tier label, e.g. ``"1.0% / response-time"``."""
        return f"{self.tolerance * 100:.1f}% / {self.objective.value}"

    def admits(self, error_degradation: float) -> bool:
        """Whether a measured degradation satisfies this tier's bound."""
        return error_degradation <= self.tolerance + 1e-12


def default_tolerance_grid(
    *, maximum: float = 0.10, step: float = 0.001
) -> List[float]:
    """The paper's tolerance grid: 0 to ``maximum`` in ``step`` increments.

    Args:
        maximum: Largest tolerance (default 10 %).
        step: Grid spacing (default 0.1 %).

    Returns:
        Monotonically increasing tolerances, starting at ``step`` (the 0 %
        tier is the most accurate configuration by definition and needs no
        rule).
    """
    if maximum <= 0.0 or step <= 0.0:
        raise ValueError("maximum and step must be positive")
    if step > maximum:
        raise ValueError("step must not exceed maximum")
    n_steps = int(round(maximum / step))
    return [round(step * (i + 1), 10) for i in range(n_steps)]
