"""The routing-rule generator (paper Fig. 7).

Given training measurements, a candidate configuration space and a
confidence level, the generator bootstraps every configuration to a
confident worst-case estimate and can then emit routing rules: for each
Tolerance Tier, the configuration that optimises the tier's objective while
keeping its worst-case error degradation inside the tier's tolerance.

The public surface intentionally mirrors the paper's pseudo-code: the
constructor bootstraps every configuration (``self.results``), and
``generate(tolerances, objective)`` produces the rule table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bootstrap import WorstCaseEstimate, bootstrap_configuration
from repro.core.configuration import EnsembleConfiguration, enumerate_configurations
from repro.core.metrics import build_pricing
from repro.core.outcome_matrix import OutcomeMatrix
from repro.core.policies import SingleVersionPolicy
from repro.core.router import RoutingRuleTable
from repro.service.measurement import MeasurementSet
from repro.service.request import Objective
from repro.stats.confidence import ConfidenceTest

__all__ = ["RoutingRuleGenerator"]


class RoutingRuleGenerator:
    """Bootstraps candidate configurations and emits tier routing rules.

    Args:
        train_measurements: Measurements of representative client traffic
            (the paper assumes the provider curates such a dataset).
        configurations: Candidate design space; defaults to
            :func:`~repro.core.configuration.enumerate_configurations` over
            the training measurements.
        confidence: Confidence level of the worst-case estimates (the paper
            uses 99.9 %).
        sample_fraction: Fraction of the training data per bootstrap trial.
        seed: Seed for all bootstrap subsampling.
        degradation_mode: ``"relative"`` (paper default) or ``"absolute"``.
        min_trials: Minimum bootstrap trials per configuration.
        max_trials: Safety cap on bootstrap trials per configuration.
        engine: ``"vectorized"`` (default) bootstraps against a shared
            :class:`~repro.core.outcome_matrix.OutcomeMatrix` — one pricing
            model and one cached baseline evaluation across all
            configurations and trials; ``"legacy"`` keeps the scalar
            per-trial loop of the seed implementation (the correctness
            oracle, and the baseline `benchmarks/bench_perf.py` measures
            speedups against).  Both produce identical results for the
            same seed.
    """

    def __init__(
        self,
        train_measurements: MeasurementSet,
        configurations: Optional[Sequence[EnsembleConfiguration]] = None,
        *,
        confidence: float = 0.999,
        sample_fraction: float = 0.1,
        seed: int = 0,
        degradation_mode: str = "relative",
        min_trials: int = 10,
        max_trials: int = 120,
        engine: str = "vectorized",
    ) -> None:
        if engine not in ("vectorized", "legacy"):
            raise ValueError(
                f"engine must be 'vectorized' or 'legacy', got {engine!r}"
            )
        self.measurements = train_measurements
        self.configurations: List[EnsembleConfiguration] = list(
            configurations
            if configurations is not None
            else enumerate_configurations(train_measurements)
        )
        if not self.configurations:
            raise ValueError("the configuration space is empty")
        self.confidence = confidence
        self.degradation_mode = degradation_mode
        self.sample_fraction = sample_fraction
        self.engine = engine
        self._confidence_test = ConfidenceTest(
            confidence=confidence, min_trials=min_trials, max_trials=max_trials
        )
        self._rng = np.random.default_rng(seed)
        self._pricing = build_pricing(train_measurements)
        self.baseline_version = train_measurements.most_accurate_version()

        #: Shared precomputed outcome columns (``None`` on the legacy
        #: engine).  Configurations whose policies the matrix cannot expand
        #: (custom ``evaluate`` overrides) transparently use the scalar
        #: loop.
        self.outcome_matrix: Optional[OutcomeMatrix] = None
        if engine == "vectorized":
            self.outcome_matrix = OutcomeMatrix.build(
                train_measurements,
                self.configurations,
                pricing=self._pricing,
                baseline_version=self.baseline_version,
                degradation_mode=degradation_mode,
            )

        #: Worst-case estimate per configuration, aligned with
        #: :attr:`configurations` (mirrors ``self.results`` in Fig. 7).
        self.results: List[WorstCaseEstimate] = [
            self.bootstrap(configuration) for configuration in self.configurations
        ]

    # ------------------------------------------------------------------
    # bootstrapping
    # ------------------------------------------------------------------
    def bootstrap(self, configuration: EnsembleConfiguration) -> WorstCaseEstimate:
        """Bootstrap one configuration to its confident worst case."""
        return bootstrap_configuration(
            self.measurements,
            configuration,
            confidence_test=self._confidence_test,
            rng=self._rng,
            sample_fraction=self.sample_fraction,
            pricing=self._pricing,
            baseline_version=self.baseline_version,
            degradation_mode=self.degradation_mode,
            outcome_matrix=self.outcome_matrix,
        )

    def estimate_for(self, config_id: str) -> WorstCaseEstimate:
        """Worst-case estimate of a configuration by id."""
        for estimate in self.results:
            if estimate.config_id == config_id:
                return estimate
        raise KeyError(f"no bootstrap result for configuration {config_id!r}")

    # ------------------------------------------------------------------
    # rule generation
    # ------------------------------------------------------------------
    def _baseline_configuration(self) -> EnsembleConfiguration:
        """The most accurate single-version configuration (the 0 % tier)."""
        for configuration in self.configurations:
            if (
                configuration.kind == "single"
                and configuration.versions == (self.baseline_version,)
            ):
                return configuration
        # The design space may have been restricted; synthesise the baseline.
        return EnsembleConfiguration(
            config_id="cfg_baseline",
            policy=SingleVersionPolicy(self.baseline_version),
        )

    def generate(
        self,
        tolerances: Sequence[float],
        objective: Objective | str,
    ) -> RoutingRuleTable:
        """Generate routing rules for a set of Tolerance Tiers.

        For each tolerance the generator picks, among the configurations
        whose worst-case error degradation fits inside the tolerance, the
        one minimising the worst-case value of the tier's objective.  If no
        configuration fits (which can only happen for tolerances tighter
        than the baseline's own bootstrap noise), the most accurate single
        version is used.

        Args:
            tolerances: Tier tolerances (e.g. ``default_tolerance_grid()``).
            objective: ``Objective`` or its header string.

        Returns:
            A :class:`~repro.core.router.RoutingRuleTable`.
        """
        if isinstance(objective, str):
            objective = Objective.from_header(objective)
        baseline_configuration = self._baseline_configuration()

        rules: Dict[float, EnsembleConfiguration] = {}
        estimates: Dict[float, WorstCaseEstimate] = {}
        for tolerance in tolerances:
            if tolerance < 0.0:
                raise ValueError(f"tolerance must be non-negative, got {tolerance}")
            best_configuration: Optional[EnsembleConfiguration] = None
            best_estimate: Optional[WorstCaseEstimate] = None
            best_value = float("inf")
            for configuration, estimate in zip(self.configurations, self.results):
                if estimate.error_degradation > tolerance:
                    continue
                value = estimate.objective_value(objective.value)
                if value < best_value:
                    best_configuration = configuration
                    best_estimate = estimate
                    best_value = value
            if best_configuration is None:
                best_configuration = baseline_configuration
                best_estimate = self._estimate_or_none(baseline_configuration)
            rules[float(tolerance)] = best_configuration
            if best_estimate is not None:
                estimates[float(tolerance)] = best_estimate

        return RoutingRuleTable(
            objective=objective,
            baseline=baseline_configuration,
            rules=rules,
            estimates=estimates,
            confidence=self.confidence,
        )

    def _estimate_or_none(
        self, configuration: EnsembleConfiguration
    ) -> Optional[WorstCaseEstimate]:
        try:
            return self.estimate_for(configuration.config_id)
        except KeyError:
            return None
