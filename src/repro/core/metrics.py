"""Tier metrics: error degradation, response time and cost aggregation.

The routing-rule generator compares ensemble configurations on three
quantities (paper Fig. 7): the *error degradation* relative to the most
accurate configuration, the mean *response time*, and the mean *invocation
cost*.  This module computes all three from policy outcomes, plus the
reduction-versus-OSFA views the evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.outcomes import EnsembleOutcomes
from repro.core.policies import EnsemblePolicy, SingleVersionPolicy
from repro.service.measurement import MeasurementSet
from repro.service.pricing import PricingModel

__all__ = [
    "PolicyMetrics",
    "build_pricing",
    "error_degradation",
    "evaluate_policy",
]


def build_pricing(
    measurements: MeasurementSet,
    *,
    per_request_fee: float = 0.0,
    markup: float = 3.0,
) -> PricingModel:
    """Build the pricing model implied by a measurement set's deployment.

    Args:
        measurements: Measurement set whose ``version_instances`` defines
            which instance type each version runs on.
        per_request_fee: Fixed platform fee per invocation.
        markup: Consumer-billing markup over raw IaaS cost.
    """
    return PricingModel(
        {
            version: measurements.instance_for(version)
            for version in measurements.versions
        },
        per_request_fee=per_request_fee,
        markup=markup,
    )


def error_degradation(
    candidate_error: float, baseline_error: float, *, mode: str = "relative"
) -> float:
    """Error degradation of a candidate versus the most accurate baseline.

    Args:
        candidate_error: Mean error of the candidate configuration.
        baseline_error: Mean error of the most accurate configuration.
        mode: ``"relative"`` (the paper's "less than X % worse than the most
            accurate tier", i.e. ``(err - err_best) / err_best``) or
            ``"absolute"`` (plain difference in error).

    Returns:
        The degradation, clipped below at 0.0 (a candidate that happens to
        beat the baseline has zero degradation).
    """
    if mode not in ("relative", "absolute"):
        raise ValueError(f"mode must be 'relative' or 'absolute', got {mode!r}")
    diff = candidate_error - baseline_error
    if diff <= 0.0:
        return 0.0
    if mode == "absolute":
        return diff
    if baseline_error <= 0.0:
        # A perfect baseline makes any regression an infinite relative
        # degradation; return the absolute difference instead so the rule
        # generator can still order configurations.
        return diff
    return diff / baseline_error


@dataclass(frozen=True)
class PolicyMetrics:
    """Aggregate metrics of one policy over one measurement (sub)set.

    Attributes:
        policy_name: Name of the evaluated policy.
        mean_error: Mean error of the results served to consumers.
        error_degradation: Degradation versus the most accurate single
            version on the same requests.
        mean_response_time_s: Mean end-to-end response time.
        mean_invocation_cost: Mean amount billed per request.
        mean_iaas_cost: Mean provider-side node cost per request.
        escalation_rate: Fraction of requests served by more than one
            version.
        response_time_reduction: Relative response-time saving versus the
            OSFA baseline (positive is better).
        cost_reduction: Relative invocation-cost saving versus OSFA.
    """

    policy_name: str
    mean_error: float
    error_degradation: float
    mean_response_time_s: float
    mean_invocation_cost: float
    mean_iaas_cost: float
    escalation_rate: float
    response_time_reduction: float
    cost_reduction: float


def evaluate_policy(
    measurements: MeasurementSet,
    policy: EnsemblePolicy,
    *,
    indices: Optional[Sequence[int]] = None,
    pricing: Optional[PricingModel] = None,
    baseline_version: Optional[str] = None,
    baseline_policy: Optional[SingleVersionPolicy] = None,
    baseline_outcomes: Optional[EnsembleOutcomes] = None,
    degradation_mode: str = "relative",
) -> PolicyMetrics:
    """Evaluate one policy against the OSFA baseline on the same requests.

    Args:
        measurements: The service's measurement set.
        policy: The ensembling policy to evaluate.
        indices: Optional row subset (e.g. a bootstrap sample or a held-out
            fold).
        pricing: Pricing model; derived from the measurement set when
            omitted.
        baseline_version: The most accurate version the degradation and the
            reductions are measured against; defaults to the version with
            the lowest mean error on the *full* measurement set.
        baseline_policy: Pre-built baseline policy object, so tight loops
            (the bootstrap, the benchmark sweeps) do not rebuild one per
            call.
        baseline_outcomes: Pre-evaluated baseline outcomes *for the same*
            ``indices``; skips re-evaluating the OSFA baseline entirely.
            The caller is responsible for the row alignment.
        degradation_mode: ``"relative"`` or ``"absolute"``.

    Returns:
        Aggregate :class:`PolicyMetrics`.
    """
    if pricing is None:
        pricing = build_pricing(measurements)
    if baseline_outcomes is None:
        if baseline_policy is None:
            if baseline_version is None:
                baseline_version = measurements.most_accurate_version()
            baseline_policy = SingleVersionPolicy(baseline_version)
        baseline_outcomes = baseline_policy.evaluate(measurements, indices)
    outcomes = policy.evaluate(measurements, indices)

    return summarize_outcomes(
        outcomes,
        baseline_outcomes,
        pricing,
        degradation_mode=degradation_mode,
    )


def summarize_outcomes(
    outcomes: EnsembleOutcomes,
    baseline: EnsembleOutcomes,
    pricing: PricingModel,
    *,
    degradation_mode: str = "relative",
) -> PolicyMetrics:
    """Summarise policy outcomes against an already-evaluated baseline."""
    baseline_time = baseline.mean_response_time()
    baseline_cost = baseline.mean_invocation_cost(pricing)
    mean_time = outcomes.mean_response_time()
    mean_cost = outcomes.mean_invocation_cost(pricing)
    degradation = error_degradation(
        outcomes.mean_error(), baseline.mean_error(), mode=degradation_mode
    )
    return PolicyMetrics(
        policy_name=outcomes.policy_name,
        mean_error=outcomes.mean_error(),
        error_degradation=degradation,
        mean_response_time_s=mean_time,
        mean_invocation_cost=mean_cost,
        mean_iaas_cost=outcomes.cost(pricing).iaas_cost / outcomes.n_requests,
        escalation_rate=outcomes.escalation_rate(),
        response_time_reduction=1.0 - mean_time / baseline_time
        if baseline_time > 0
        else 0.0,
        cost_reduction=1.0 - mean_cost / baseline_cost if baseline_cost > 0 else 0.0,
    )
