"""Deprecated: the original consumer-facing Tolerance Tiers endpoint.

:class:`ToleranceTiersService` used to carry its own hand-rolled copy of
the single/seq/conc/et escalation semantics.  That logic now lives in one
place — :class:`~repro.core.executor.PolicyExecutor` — and the serving
surface is :class:`~repro.service.gateway.gateway.TierGateway`, which adds
sessions, tickets, deadlines, a structured error hierarchy and pluggable
execution backends (live, replay, simulated).

This class remains as a thin shim over ``TierGateway`` +
:class:`~repro.service.gateway.backends.DirectBackend` with bit-identical
responses, and emits a :class:`DeprecationWarning` at construction.
Migrate with::

    # before
    service = ToleranceTiersService(cluster, router)
    # after
    gateway = TierGateway(DirectBackend(cluster), router=router)

(see ``docs/API.md`` for the full migration guide).
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from repro.core.router import TierRouter
from repro.service.cluster import ClusterDeployment
from repro.service.request import ServiceRequest, ServiceResponse

__all__ = ["ToleranceTiersService"]


class ToleranceTiersService:
    """Deprecated live MLaaS endpoint; use
    :class:`~repro.service.gateway.gateway.TierGateway` instead.

    Args:
        cluster: Deployment hosting a pool for every version the router's
            configurations may use.
        router: Tier router produced by the routing-rule generator.
    """

    def __init__(self, cluster: ClusterDeployment, router: TierRouter) -> None:
        # Imported lazily: repro.core.api loads with repro.core's own
        # __init__, before the gateway package can (the gateway imports
        # repro.core submodules).
        from repro.service.gateway import DirectBackend, TierGateway

        warnings.warn(
            "ToleranceTiersService is deprecated; use "
            "TierGateway(DirectBackend(cluster), router=router) instead "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.cluster = cluster
        self.router = router
        self._gateway = TierGateway(DirectBackend(cluster), router=router)

    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one annotated request."""
        return self._gateway.handle(request)

    def handle_http(
        self,
        request_id: str,
        payload: Any,
        headers: Mapping[str, str],
    ) -> ServiceResponse:
        """Serve a request expressed as HTTP-style headers plus a payload."""
        return self._gateway.handle_http(request_id, payload, headers)
