"""The consumer-facing Tolerance Tiers service endpoint.

This is the live-serving counterpart of the measurement-replay machinery:
an API consumer submits a request annotated with ``Tolerance`` and
``Objective`` headers (paper Section IV-A), the tier router picks an
ensemble configuration, and the configuration is executed against a real
:class:`~repro.service.cluster.ClusterDeployment` — dispatching to the fast
version's pool, checking its confidence, and escalating to the accurate
pool when the policy says so.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.configuration import EnsembleConfiguration
from repro.core.router import TierRouter
from repro.service.cluster import ClusterDeployment
from repro.service.request import ServiceRequest, ServiceResponse

__all__ = ["ToleranceTiersService"]


class ToleranceTiersService:
    """Live MLaaS endpoint with Tolerance Tier support.

    Args:
        cluster: Deployment hosting a pool for every version the router's
            configurations may use.
        router: Tier router produced by the routing-rule generator.
    """

    def __init__(self, cluster: ClusterDeployment, router: TierRouter) -> None:
        self.cluster = cluster
        self.router = router
        self._validate_versions()

    def _validate_versions(self) -> None:
        deployed = set(self.cluster.versions)
        for objective in self.router.objectives:
            table = self.router.table_for(objective)
            for configuration in list(table.rules.values()) + [table.baseline]:
                missing = set(configuration.versions) - deployed
                if missing:
                    raise ValueError(
                        f"configuration {configuration.name!r} needs versions "
                        f"{sorted(missing)} that the cluster does not deploy"
                    )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one annotated request."""
        configuration = self.router.route(request.tolerance, request.objective)
        return self._execute(configuration, request)

    def handle_http(
        self,
        request_id: str,
        payload: Any,
        headers: Mapping[str, str],
    ) -> ServiceResponse:
        """Serve a request expressed as HTTP-style headers plus a payload.

        This mirrors the paper's ``curl`` example: the ``Tolerance`` and
        ``Objective`` headers select the tier.
        """
        request = ServiceRequest.from_headers(request_id, payload, headers)
        return self.handle(request)

    # ------------------------------------------------------------------
    # policy execution against the live cluster
    # ------------------------------------------------------------------
    def _execute(
        self, configuration: EnsembleConfiguration, request: ServiceRequest
    ) -> ServiceResponse:
        policy = configuration.policy
        if configuration.kind == "single":
            return self._respond_single(policy.versions[0], request)
        return self._respond_two_version(configuration, request)

    def _respond_single(
        self, version: str, request: ServiceRequest
    ) -> ServiceResponse:
        result, latency = self.cluster.raw_dispatch(version, request)
        cost = self.cluster.cost_of({version: latency})
        return ServiceResponse(
            request_id=request.request_id,
            result=result.output,
            versions_used=(version,),
            response_time_s=latency,
            invocation_cost=cost.invocation_cost,
            tier=request.tolerance,
            confidence=result.confidence,
        )

    def _respond_two_version(
        self, configuration: EnsembleConfiguration, request: ServiceRequest
    ) -> ServiceResponse:
        policy = configuration.policy
        fast_version: str = policy.fast_version
        accurate_version: str = policy.accurate_version
        threshold: float = getattr(policy, "confidence_threshold", 0.5)
        kind = configuration.kind

        fast_result, fast_latency = self.cluster.raw_dispatch(fast_version, request)
        escalate = fast_result.confidence < threshold

        if not escalate:
            # Fast result accepted.  Concurrent policies still consumed node
            # time on the accurate pool; early termination bounds that waste
            # by the fast latency.
            node_seconds = {fast_version: fast_latency}
            if kind == "conc":
                _, accurate_latency = self.cluster.raw_dispatch(
                    accurate_version, request
                )
                node_seconds[accurate_version] = accurate_latency
            elif kind == "et":
                _, accurate_latency = self.cluster.raw_dispatch(
                    accurate_version, request
                )
                node_seconds[accurate_version] = min(accurate_latency, fast_latency)
            cost = self.cluster.cost_of(node_seconds)
            return ServiceResponse(
                request_id=request.request_id,
                result=fast_result.output,
                versions_used=tuple(node_seconds.keys()),
                response_time_s=fast_latency,
                invocation_cost=cost.invocation_cost,
                tier=request.tolerance,
                confidence=fast_result.confidence,
            )

        accurate_result, accurate_latency = self.cluster.raw_dispatch(
            accurate_version, request
        )
        if kind == "seq":
            response_time = fast_latency + accurate_latency
        else:  # conc / et overlap the two executions
            response_time = max(fast_latency, accurate_latency)
        cost = self.cluster.cost_of(
            {fast_version: fast_latency, accurate_version: accurate_latency}
        )
        return ServiceResponse(
            request_id=request.request_id,
            result=accurate_result.output,
            versions_used=(fast_version, accurate_version),
            response_time_s=response_time,
            invocation_cost=cost.invocation_cost,
            tier=request.tolerance,
            confidence=accurate_result.confidence,
        )
