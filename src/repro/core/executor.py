"""The one canonical implementation of ensemble execution semantics.

Three serving paths used to each re-implement the paper's single/seq/conc/et
escalation rules: the vectorized replay policies
(:mod:`repro.core.policies`), the discrete-event engine
(:mod:`repro.service.simulation.engine`) and a hand-rolled synchronous copy
in the old :class:`~repro.core.api.ToleranceTiersService`.  This module is
now the single source of truth:

* the pure decision functions — :func:`should_escalate`,
  :func:`compose_response_time`, :func:`billed_node_seconds`,
  :func:`early_termination_cap`, :func:`require_confidence_threshold` —
  encode the escalation decision, the latency composition and the
  node-seconds billing rules once, and the simulation engine calls them
  per event;
* :class:`PolicyExecutor` composes them into a synchronous per-request
  execution over any :class:`ExecutionBackend` — the gateway's live path
  (``DirectBackend``), and the measurement-replay oracle
  (``ReplayBackend``) that the vectorized policies are pinned against.

The semantics, per policy kind (paper Section IV):

========  =========================  ==========================  =============================
kind      response time              accurate version runs       accurate node-seconds billed
========  =========================  ==========================  =============================
single    latency                    —                           —
seq       fast (+ accurate if esc.)  only on escalation          full, only on escalation
conc      fast / max(fast, acc)      always                      full, always
et        fast / max(fast, acc)      always, cancelled on        min(acc, fast) when the fast
                                     fast acceptance             result is accepted
========  =========================  ==========================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Protocol, Tuple

from repro.core.errors import PolicyConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.configuration import EnsembleConfiguration
    from repro.service.request import ServiceRequest

__all__ = [
    "ExecutionBackend",
    "ExecutionOutcome",
    "Invocation",
    "PolicyExecutor",
    "billed_node_seconds",
    "compose_response_time",
    "early_termination_cap",
    "require_confidence_threshold",
    "should_escalate",
]

#: Policy kinds whose accurate leg launches at request arrival.
CONCURRENT_KINDS: Tuple[str, ...] = ("conc", "et")


# ----------------------------------------------------------------------
# pure decision functions (shared with the discrete-event engine)
# ----------------------------------------------------------------------
def require_confidence_threshold(policy: Any) -> float:
    """The policy's confidence threshold, as a hard requirement.

    A two-version policy without a ``confidence_threshold`` is a
    deployment bug — earlier code silently substituted ``0.5``, which
    turned a misconfigured ensemble into one serving the wrong guarantee.

    Raises:
        PolicyConfigurationError: If the policy has no threshold, or the
            threshold is outside ``[0, 1]``.
    """
    threshold = getattr(policy, "confidence_threshold", None)
    if threshold is None:
        name = getattr(policy, "name", repr(policy))
        raise PolicyConfigurationError(
            f"policy {name!r} (kind {getattr(policy, 'kind', '?')!r}) has no "
            "confidence_threshold; two-version escalation policies must be "
            "configured with an explicit threshold"
        )
    threshold = float(threshold)
    if not 0.0 <= threshold <= 1.0:
        raise PolicyConfigurationError(
            f"confidence_threshold must be in [0, 1], got {threshold}"
        )
    return threshold


def should_escalate(fast_confidence: float, threshold: float) -> bool:
    """The escalation decision: escalate when the fast result is unsure."""
    return fast_confidence < threshold


def compose_response_time(
    kind: str,
    fast_latency_s: float,
    accurate_latency_s: Optional[float],
    escalated: bool,
) -> float:
    """End-to-end response time of a two-version execution.

    A non-escalated request responds at the fast latency regardless of
    kind.  An escalated ``seq`` request pays both latencies back to back;
    the concurrent kinds overlap them.
    """
    if not escalated:
        return fast_latency_s
    if accurate_latency_s is None:
        raise ValueError("an escalated request needs an accurate latency")
    if kind == "seq":
        return fast_latency_s + accurate_latency_s
    return max(fast_latency_s, accurate_latency_s)


def early_termination_cap(
    accurate_seconds: float, fast_solo_seconds: float
) -> float:
    """Billed accurate node-seconds after an ``et`` cancellation.

    The accurate job is killed the moment the fast result is accepted, so
    its wasted node time is bounded by the fast execution's solo time.
    """
    return min(accurate_seconds, fast_solo_seconds)


def billed_node_seconds(
    kind: str,
    fast_version: str,
    accurate_version: str,
    fast_latency_s: float,
    accurate_latency_s: Optional[float],
    escalated: bool,
) -> Dict[str, float]:
    """Node-seconds billed per version for a two-version execution.

    Insertion order is fast-then-accurate; the gateway derives
    ``versions_used`` from the keys, so this order is part of the response
    contract.
    """
    if escalated:
        if accurate_latency_s is None:
            raise ValueError("an escalated request consumed accurate time")
        return {
            fast_version: fast_latency_s,
            accurate_version: accurate_latency_s,
        }
    seconds = {fast_version: fast_latency_s}
    if kind == "conc":
        # The accurate version runs to completion on every request.
        seconds[accurate_version] = accurate_latency_s
    elif kind == "et":
        seconds[accurate_version] = early_termination_cap(
            accurate_latency_s, fast_latency_s
        )
    return seconds


# ----------------------------------------------------------------------
# synchronous execution over a backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Invocation:
    """One version's answer to one request, as a backend reports it.

    Attributes:
        output: The model output (a transcript, a class id, ...).
        confidence: The version's confidence in the output.
        latency_s: Service latency of the invocation.
        error: Measured error of the output, when the backend knows it
            (replay backends do; live backends may not).
    """

    output: Any
    confidence: float
    latency_s: float
    error: Optional[float] = None


class ExecutionBackend(Protocol):
    """What :class:`PolicyExecutor` needs from an execution substrate.

    Synchronous backends (live dispatch, measurement replay) implement
    :meth:`invoke` and :meth:`cost_of`; the deferred simulation backend
    instead executes whole sessions under a virtual clock (see
    :mod:`repro.service.gateway.simulated`) and never enters the
    executor's synchronous path.
    """

    #: Whether :meth:`invoke` produces a result immediately.  Deferred
    #: backends resolve requests at drain time instead.
    synchronous: bool

    #: Versions the backend can execute, or ``None`` when unknown.
    versions: Optional[Tuple[str, ...]]

    def invoke(self, version: str, request: "ServiceRequest") -> Invocation:
        """Execute one request on one version."""
        ...

    def cost_of(self, node_seconds: Mapping[str, float]):
        """Price a bundle of node-seconds; returns an object with an
        ``invocation_cost`` attribute."""
        ...


@dataclass(frozen=True)
class ExecutionOutcome:
    """Everything one ensemble execution produced.

    This is the executor's native result type; the gateway narrows it to a
    consumer-facing :class:`~repro.service.request.ServiceResponse`, while
    the replay oracle keeps the :attr:`error` column the response hides.
    """

    request_id: str
    result: Any
    versions_used: Tuple[str, ...]
    response_time_s: float
    node_seconds: Dict[str, float]
    invocation_cost: float
    confidence: float
    escalated: bool
    error: Optional[float] = None


class PolicyExecutor:
    """Execute ensemble configurations synchronously over a backend.

    This is the canonical composition of the decision functions above:
    dispatch the fast version, decide escalation from its confidence,
    dispatch the accurate version exactly when the policy kind requires
    it, and compose latency, billing and the answering result.

    Args:
        backend: The execution substrate; must be synchronous.
    """

    def __init__(self, backend: ExecutionBackend) -> None:
        self.backend = backend

    def execute(
        self, configuration: "EnsembleConfiguration", request: "ServiceRequest"
    ) -> ExecutionOutcome:
        """Run one request through one configuration."""
        if configuration.kind == "single":
            return self._execute_single(configuration, request)
        return self._execute_two_version(configuration, request)

    # ------------------------------------------------------------------
    def _execute_single(
        self, configuration: "EnsembleConfiguration", request: "ServiceRequest"
    ) -> ExecutionOutcome:
        version = configuration.policy.versions[0]
        invocation = self.backend.invoke(version, request)
        node_seconds = {version: invocation.latency_s}
        cost = self.backend.cost_of(node_seconds)
        return ExecutionOutcome(
            request_id=request.request_id,
            result=invocation.output,
            versions_used=(version,),
            response_time_s=invocation.latency_s,
            node_seconds=node_seconds,
            invocation_cost=cost.invocation_cost,
            confidence=invocation.confidence,
            escalated=False,
            error=invocation.error,
        )

    def _execute_two_version(
        self, configuration: "EnsembleConfiguration", request: "ServiceRequest"
    ) -> ExecutionOutcome:
        policy = configuration.policy
        kind = configuration.kind
        fast_version: str = policy.fast_version
        accurate_version: str = policy.accurate_version
        threshold = require_confidence_threshold(policy)

        fast = self.backend.invoke(fast_version, request)
        escalated = should_escalate(fast.confidence, threshold)
        # The accurate leg executes exactly when the policy kind launched
        # it (conc/et launch at arrival) or escalation demands it (seq).
        accurate: Optional[Invocation] = None
        if escalated or kind in CONCURRENT_KINDS:
            accurate = self.backend.invoke(accurate_version, request)

        accurate_latency = accurate.latency_s if accurate is not None else None
        node_seconds = billed_node_seconds(
            kind,
            fast_version,
            accurate_version,
            fast.latency_s,
            accurate_latency,
            escalated,
        )
        cost = self.backend.cost_of(node_seconds)
        answering = accurate if escalated else fast
        return ExecutionOutcome(
            request_id=request.request_id,
            result=answering.output,
            versions_used=tuple(node_seconds.keys()),
            response_time_s=compose_response_time(
                kind, fast.latency_s, accurate_latency, escalated
            ),
            node_seconds=node_seconds,
            invocation_cost=cost.invocation_cost,
            confidence=answering.confidence,
            escalated=escalated,
            error=answering.error,
        )
