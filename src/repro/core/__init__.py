"""Tolerance Tiers — the paper's primary contribution.

The package follows the paper's architecture (Section IV):

* :mod:`repro.core.tiers` -- the tier abstraction an API consumer selects:
  an error *tolerance* plus an optimisation *objective*.
* :mod:`repro.core.policies` -- service-version ensembling policies
  (single version, sequential escalation, concurrent, concurrent with
  early termination) evaluated over measurement sets.
* :mod:`repro.core.configuration` -- the ensemble design space the
  routing-rule generator searches.
* :mod:`repro.core.metrics` -- error degradation, response time and cost
  aggregation for policy outcomes.
* :mod:`repro.core.simulator` -- ``simulate(sample, cfg)``: replay a
  configuration over measured requests (paper Fig. 7's inner call).
* :mod:`repro.core.outcome_matrix` -- precomputed per-request outcome
  columns turning bootstrap trials into vectorized gathers (the rule
  generator's fast path; the scalar path remains the oracle).
* :mod:`repro.core.bootstrap` / :mod:`repro.core.rule_generator` -- the
  bootstrapping routing-rule generator with statistical confidence
  (paper Fig. 7).
* :mod:`repro.core.router` -- the serving-time router mapping a requested
  (tolerance, objective) to a configuration.
* :mod:`repro.core.guarantees` -- the k-fold held-out audit showing the
  accuracy guarantees are never violated.
* :mod:`repro.core.executor` -- the one canonical implementation of the
  single/seq/conc/et ensemble semantics (:class:`PolicyExecutor` and the
  pure decision functions the simulation engine shares).
* :mod:`repro.core.errors` -- the structured :class:`TierError` hierarchy
  of the serving surface.
* :mod:`repro.core.api` -- the deprecated ``ToleranceTiersService`` shim;
  the serving surface is now
  :class:`~repro.service.gateway.gateway.TierGateway` (re-exported here
  lazily, together with the execution backends).
* :mod:`repro.core.learned_router` -- the learned-escalation baseline the
  paper compared against (and found no better than the simple policies).

The replay machinery here is contention-free by design; evaluating the
same tiers under offered load (queueing, batching, autoscaling) lives in
:mod:`repro.service.simulation` — and the gateway's ``SimulatedBackend``
serves the public API straight through it.
"""

from repro.core.api import ToleranceTiersService
from repro.core.errors import (
    BackendCapabilityError,
    GatewayClosedError,
    MissingVersionError,
    PolicyConfigurationError,
    RequestFailedError,
    RequestValidationError,
    ResultPendingError,
    TierError,
    UnknownObjectiveError,
    UnroutableToleranceError,
)
from repro.core.executor import (
    ExecutionBackend,
    ExecutionOutcome,
    Invocation,
    PolicyExecutor,
    billed_node_seconds,
    compose_response_time,
    early_termination_cap,
    require_confidence_threshold,
    should_escalate,
)
from repro.core.bootstrap import WorstCaseEstimate, bootstrap_configuration
from repro.core.configuration import (
    EnsembleConfiguration,
    enumerate_configurations,
)
from repro.core.guarantees import GuaranteeAudit, ToleranceAuditRow, audit_guarantees
from repro.core.learned_router import LogisticEscalationPolicy
from repro.core.metrics import (
    PolicyMetrics,
    build_pricing,
    error_degradation,
    evaluate_policy,
)
from repro.core.outcome_matrix import (
    ConfigurationColumns,
    OutcomeMatrix,
    TrialMetricBlock,
)
from repro.core.outcomes import EnsembleOutcomes, LazyRequestIds
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    EnsemblePolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.core.router import RoutingRuleTable, TierRouter
from repro.core.rule_generator import RoutingRuleGenerator
from repro.core.simulator import TierSimulation, simulate
from repro.core.tiers import ToleranceTier

__all__ = [
    "BackendCapabilityError",
    "ConcurrentPolicy",
    "ConfigurationColumns",
    "DirectBackend",
    "EarlyTerminationPolicy",
    "EnsembleConfiguration",
    "EnsembleOutcomes",
    "EnsemblePolicy",
    "ExecutionBackend",
    "ExecutionOutcome",
    "GatewayClosedError",
    "GuaranteeAudit",
    "Invocation",
    "LazyRequestIds",
    "LogisticEscalationPolicy",
    "MissingVersionError",
    "OutcomeMatrix",
    "PolicyConfigurationError",
    "PolicyExecutor",
    "PolicyMetrics",
    "ReplayBackend",
    "RequestFailedError",
    "RequestValidationError",
    "ResultPendingError",
    "RoutingRuleGenerator",
    "SimulatedBackend",
    "TrialMetricBlock",
    "RoutingRuleTable",
    "SequentialPolicy",
    "SingleVersionPolicy",
    "TierError",
    "TierGateway",
    "TierRouter",
    "TierSimulation",
    "TierTicket",
    "ToleranceAuditRow",
    "ToleranceTier",
    "ToleranceTiersService",
    "UnknownObjectiveError",
    "UnroutableToleranceError",
    "WorstCaseEstimate",
    "audit_guarantees",
    "billed_node_seconds",
    "bootstrap_configuration",
    "build_pricing",
    "compose_response_time",
    "early_termination_cap",
    "enumerate_configurations",
    "error_degradation",
    "evaluate_policy",
    "require_confidence_threshold",
    "should_escalate",
    "simulate",
]

#: Gateway names re-exported lazily (PEP 562): the gateway package imports
#: ``repro.core`` submodules, so an eager import here would be circular
#: when the gateway is the import entry point.
_GATEWAY_EXPORTS = (
    "DirectBackend",
    "ReplayBackend",
    "SimulatedBackend",
    "TierGateway",
    "TierTicket",
)


def __getattr__(name):
    if name in _GATEWAY_EXPORTS:
        from repro.service import gateway as _gateway

        return getattr(_gateway, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
