"""Tolerance Tiers — the paper's primary contribution.

The package follows the paper's architecture (Section IV):

* :mod:`repro.core.tiers` -- the tier abstraction an API consumer selects:
  an error *tolerance* plus an optimisation *objective*.
* :mod:`repro.core.policies` -- service-version ensembling policies
  (single version, sequential escalation, concurrent, concurrent with
  early termination) evaluated over measurement sets.
* :mod:`repro.core.configuration` -- the ensemble design space the
  routing-rule generator searches.
* :mod:`repro.core.metrics` -- error degradation, response time and cost
  aggregation for policy outcomes.
* :mod:`repro.core.simulator` -- ``simulate(sample, cfg)``: replay a
  configuration over measured requests (paper Fig. 7's inner call).
* :mod:`repro.core.outcome_matrix` -- precomputed per-request outcome
  columns turning bootstrap trials into vectorized gathers (the rule
  generator's fast path; the scalar path remains the oracle).
* :mod:`repro.core.bootstrap` / :mod:`repro.core.rule_generator` -- the
  bootstrapping routing-rule generator with statistical confidence
  (paper Fig. 7).
* :mod:`repro.core.router` -- the serving-time router mapping a requested
  (tolerance, objective) to a configuration.
* :mod:`repro.core.guarantees` -- the k-fold held-out audit showing the
  accuracy guarantees are never violated.
* :mod:`repro.core.api` -- the consumer-facing Tolerance Tiers endpoint
  (the ``Tolerance:`` / ``Objective:`` annotated request interface).
* :mod:`repro.core.learned_router` -- the learned-escalation baseline the
  paper compared against (and found no better than the simple policies).

The replay machinery here is contention-free by design; evaluating the
same tiers under offered load (queueing, batching, autoscaling) lives in
:mod:`repro.service.simulation`.
"""

from repro.core.api import ToleranceTiersService
from repro.core.bootstrap import WorstCaseEstimate, bootstrap_configuration
from repro.core.configuration import (
    EnsembleConfiguration,
    enumerate_configurations,
)
from repro.core.guarantees import GuaranteeAudit, ToleranceAuditRow, audit_guarantees
from repro.core.learned_router import LogisticEscalationPolicy
from repro.core.metrics import (
    PolicyMetrics,
    build_pricing,
    error_degradation,
    evaluate_policy,
)
from repro.core.outcome_matrix import (
    ConfigurationColumns,
    OutcomeMatrix,
    TrialMetricBlock,
)
from repro.core.outcomes import EnsembleOutcomes, LazyRequestIds
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    EnsemblePolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.core.router import RoutingRuleTable, TierRouter
from repro.core.rule_generator import RoutingRuleGenerator
from repro.core.simulator import TierSimulation, simulate
from repro.core.tiers import ToleranceTier

__all__ = [
    "ConcurrentPolicy",
    "ConfigurationColumns",
    "EarlyTerminationPolicy",
    "EnsembleConfiguration",
    "EnsembleOutcomes",
    "EnsemblePolicy",
    "GuaranteeAudit",
    "LazyRequestIds",
    "LogisticEscalationPolicy",
    "OutcomeMatrix",
    "PolicyMetrics",
    "RoutingRuleGenerator",
    "TrialMetricBlock",
    "RoutingRuleTable",
    "SequentialPolicy",
    "SingleVersionPolicy",
    "TierRouter",
    "TierSimulation",
    "ToleranceAuditRow",
    "ToleranceTier",
    "ToleranceTiersService",
    "WorstCaseEstimate",
    "audit_guarantees",
    "bootstrap_configuration",
    "build_pricing",
    "enumerate_configurations",
    "error_degradation",
    "evaluate_policy",
    "simulate",
]
