"""The structured error hierarchy of the Tolerance Tiers serving surface.

Every failure a gateway client can provoke maps to one :class:`TierError`
subclass, so callers can catch the whole family with one ``except
TierError`` or discriminate precisely.  Each subclass also inherits the
built-in exception the pre-gateway code raised for the same condition
(``ValueError`` for validation failures, ``KeyError``-adjacent lookups are
normalised to ``ValueError``, ``RuntimeError`` for lifecycle misuse), so
code written against :class:`~repro.core.api.ToleranceTiersService`' error
contract keeps working unchanged.

This module is import-cycle-free on purpose: it imports nothing from the
rest of the package, so the request layer, the executor, the gateway and
the simulation engine can all share it.
"""

from __future__ import annotations

__all__ = [
    "BackendCapabilityError",
    "GatewayClosedError",
    "MissingVersionError",
    "PolicyConfigurationError",
    "RequestFailedError",
    "RequestShedError",
    "RequestValidationError",
    "ResultPendingError",
    "TierError",
    "UnknownObjectiveError",
    "UnroutableToleranceError",
]


class TierError(Exception):
    """Base class of every Tolerance Tiers serving error."""


class RequestValidationError(TierError, ValueError):
    """A request's annotation headers could not be parsed or validated."""


class UnknownObjectiveError(TierError, ValueError):
    """The requested objective names no routing-rule table."""


class UnroutableToleranceError(TierError, ValueError):
    """The requested tolerance is invalid (negative, NaN or infinite)."""


class MissingVersionError(TierError, ValueError):
    """A routed configuration needs a version the backend cannot execute."""


class PolicyConfigurationError(TierError, ValueError):
    """An ensemble policy is missing a required parameter.

    The canonical case: a two-version policy without a
    ``confidence_threshold``.  Earlier code silently substituted ``0.5``;
    a missing threshold is a deployment bug, not a default.
    """


class RequestFailedError(TierError, RuntimeError):
    """A request failed terminally inside the execution backend.

    Raised by :meth:`~repro.service.gateway.gateway.TierTicket.result`
    when a simulated request exhausted its retries or its capacity never
    recovered.  Carries the backend's per-request record (when available)
    as :attr:`record`.
    """

    def __init__(self, message: str, record=None) -> None:
        super().__init__(message)
        self.record = record


class RequestShedError(RequestFailedError):
    """A request was shed by admission control before it was served.

    Raised by :meth:`~repro.service.gateway.gateway.TierTicket.result`
    when the control plane's admission controller dropped the request
    under an SLO breach.  A shed ticket resolves the moment the shed is
    known — it never hangs a :meth:`drain`.  Subclasses
    :class:`RequestFailedError`, so callers handling terminal failures
    handle sheds too; discriminate with ``except RequestShedError``
    first when shed traffic deserves a different retry story (it does:
    the request was never attempted, so an immediate client-side retry
    against a healthier replica is safe).
    """


class ResultPendingError(TierError, RuntimeError):
    """A ticket's result was read before the gateway drained it."""


class GatewayClosedError(TierError, RuntimeError):
    """The gateway session is closed (its backend was already drained)."""


class BackendCapabilityError(TierError, RuntimeError):
    """The operation needs a capability this execution backend lacks.

    For example, :meth:`~repro.service.gateway.gateway.TierGateway.handle`
    needs a synchronous backend, while
    :meth:`~repro.service.gateway.gateway.TierGateway.run_load` needs a
    deferred (simulated) one.
    """
