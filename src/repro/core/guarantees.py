"""Held-out audit of the Tolerance Tier accuracy guarantees.

The paper evaluates its guarantees with 10-fold cross validation: rules are
generated from nine folds and the tenth replays production traffic the
generator never saw.  A tier *violates* its guarantee when the error
degradation measured on held-out requests exceeds the tier's tolerance.
The paper reports zero violations; :func:`audit_guarantees` reproduces that
audit and also reports the held-out savings each tier delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configuration import EnsembleConfiguration, enumerate_configurations
from repro.core.metrics import build_pricing, evaluate_policy
from repro.core.rule_generator import RoutingRuleGenerator
from repro.service.measurement import MeasurementSet
from repro.service.request import Objective
from repro.stats.resampling import kfold_indices

__all__ = ["GuaranteeAudit", "ToleranceAuditRow", "audit_guarantees"]


@dataclass(frozen=True)
class ToleranceAuditRow:
    """Audit outcome for one tier tolerance, aggregated over folds.

    Attributes:
        tolerance: The tier's promised maximum error degradation.
        worst_degradation: Largest held-out degradation observed across all
            folds.
        mean_degradation: Mean held-out degradation across folds.
        mean_response_time_reduction: Mean held-out response-time saving.
        mean_cost_reduction: Mean held-out invocation-cost saving.
        violations: Number of folds whose held-out degradation exceeded the
            tolerance.
        configurations_used: Names of the configurations the rules selected
            across folds (deduplicated, order preserved).
    """

    tolerance: float
    worst_degradation: float
    mean_degradation: float
    mean_response_time_reduction: float
    mean_cost_reduction: float
    violations: int
    configurations_used: tuple

    @property
    def violated(self) -> bool:
        """Whether any fold violated the guarantee."""
        return self.violations > 0


@dataclass(frozen=True)
class GuaranteeAudit:
    """Full audit across tolerances.

    Attributes:
        service: Audited service name.
        objective: Objective the rules optimised.
        folds: Number of cross-validation folds.
        confidence: Confidence level used by the rule generator.
        rows: One :class:`ToleranceAuditRow` per audited tolerance.
    """

    service: str
    objective: Objective
    folds: int
    confidence: float
    rows: tuple

    @property
    def total_violations(self) -> int:
        """Total guarantee violations across all tolerances and folds."""
        return int(sum(row.violations for row in self.rows))

    def row_for(self, tolerance: float) -> ToleranceAuditRow:
        """The audit row of a specific tolerance."""
        for row in self.rows:
            if abs(row.tolerance - tolerance) < 1e-12:
                return row
        raise KeyError(f"tolerance {tolerance} was not audited")


def audit_guarantees(
    measurements: MeasurementSet,
    tolerances: Sequence[float],
    objective: Objective | str,
    *,
    folds: int = 10,
    confidence: float = 0.999,
    seed: int = 0,
    configurations: Optional[Sequence[EnsembleConfiguration]] = None,
    degradation_mode: str = "relative",
    generator_kwargs: Optional[dict] = None,
) -> GuaranteeAudit:
    """Cross-validated audit of the tier guarantees for one service.

    For each fold, rules are generated from the training portion and every
    audited tolerance is replayed on the held-out portion; degradation is
    measured against the most accurate version *on the held-out requests*,
    exactly what a consumer of the 0 % tier would have received.

    Args:
        measurements: Full measurement set of the service.
        tolerances: Tier tolerances to audit.
        objective: Objective the rules optimise.
        folds: Number of cross-validation folds (paper uses 10).
        confidence: Rule-generator confidence level (paper uses 99.9 %).
        seed: Seed for fold shuffling and bootstrap subsampling.
        configurations: Optional explicit design space.
        degradation_mode: ``"relative"`` or ``"absolute"``.
        generator_kwargs: Extra keyword arguments forwarded to
            :class:`~repro.core.rule_generator.RoutingRuleGenerator`.

    Returns:
        A :class:`GuaranteeAudit`.
    """
    if isinstance(objective, str):
        objective = Objective.from_header(objective)
    rng = np.random.default_rng(seed)
    pricing = build_pricing(measurements)
    generator_kwargs = dict(generator_kwargs or {})

    per_tolerance: Dict[float, List[dict]] = {float(t): [] for t in tolerances}

    for fold_index, (train_idx, test_idx) in enumerate(
        kfold_indices(measurements.n_requests, folds, rng=rng)
    ):
        train = measurements.subset(train_idx)
        fold_configurations = (
            configurations
            if configurations is not None
            else enumerate_configurations(train)
        )
        generator = RoutingRuleGenerator(
            train,
            fold_configurations,
            confidence=confidence,
            seed=seed + fold_index,
            degradation_mode=degradation_mode,
            **generator_kwargs,
        )
        table = generator.generate(tolerances, objective)
        baseline_version = measurements.most_accurate_version()
        for tolerance in tolerances:
            configuration = table.config_for(tolerance)
            metrics = evaluate_policy(
                measurements,
                configuration.policy,
                indices=test_idx,
                pricing=pricing,
                baseline_version=baseline_version,
                degradation_mode=degradation_mode,
            )
            per_tolerance[float(tolerance)].append(
                {
                    "degradation": metrics.error_degradation,
                    "response_time_reduction": metrics.response_time_reduction,
                    "cost_reduction": metrics.cost_reduction,
                    "configuration": configuration.name,
                }
            )

    rows = []
    for tolerance in sorted(per_tolerance):
        fold_results = per_tolerance[tolerance]
        degradations = [r["degradation"] for r in fold_results]
        configurations_used = tuple(
            dict.fromkeys(r["configuration"] for r in fold_results)
        )
        rows.append(
            ToleranceAuditRow(
                tolerance=tolerance,
                worst_degradation=max(degradations),
                mean_degradation=float(np.mean(degradations)),
                mean_response_time_reduction=float(
                    np.mean([r["response_time_reduction"] for r in fold_results])
                ),
                mean_cost_reduction=float(
                    np.mean([r["cost_reduction"] for r in fold_results])
                ),
                violations=int(sum(d > tolerance + 1e-9 for d in degradations)),
                configurations_used=configurations_used,
            )
        )
    return GuaranteeAudit(
        service=measurements.service,
        objective=objective,
        folds=folds,
        confidence=confidence,
        rows=tuple(rows),
    )
