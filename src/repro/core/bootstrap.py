"""Bootstrapping one configuration to a worst-case estimate (paper Fig. 7).

The routing-rule generator needs, for every candidate configuration, a
*confident worst-case* estimate of its error degradation, response time and
invocation cost.  It gets one by repeatedly simulating the configuration on
random subsamples of the training requests until the spread of the observed
trial values satisfies the confidence test, then recording the worst value
seen for each metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.simulator import TierSimulation, simulate
from repro.service.measurement import MeasurementSet
from repro.service.pricing import PricingModel
from repro.stats.confidence import ConfidenceTest
from repro.stats.resampling import subsample_indices

__all__ = ["WorstCaseEstimate", "bootstrap_configuration"]


@dataclass(frozen=True)
class WorstCaseEstimate:
    """Confident worst-case behaviour of one configuration.

    Attributes:
        config_id: Identifier of the bootstrapped configuration.
        error_degradation: Worst observed error degradation across trials.
        mean_response_time_s: Worst observed mean response time.
        mean_invocation_cost: Worst observed mean invocation cost.
        n_trials: Number of bootstrap trials run before the confidence test
            was satisfied.
    """

    config_id: str
    error_degradation: float
    mean_response_time_s: float
    mean_invocation_cost: float
    n_trials: int

    def objective_value(self, objective: str) -> float:
        """Worst-case value of the metric a tier objective minimises."""
        if objective == "response-time":
            return self.mean_response_time_s
        if objective == "cost":
            return self.mean_invocation_cost
        raise ValueError(f"unknown objective {objective!r}")


def bootstrap_configuration(
    measurements: MeasurementSet,
    configuration: EnsembleConfiguration,
    *,
    confidence_test: ConfidenceTest,
    rng: np.random.Generator,
    sample_fraction: float = 0.1,
    pricing: Optional[PricingModel] = None,
    baseline_version: Optional[str] = None,
    degradation_mode: str = "relative",
) -> WorstCaseEstimate:
    """Bootstrap one configuration until its metrics are confidently spread.

    Each trial simulates the configuration on a random
    ``sample_fraction``-sized subsample of the measurements (without
    replacement, mirroring the paper's ``choice(train, k=len/10)``), and the
    loop stops once every metric column satisfies the confidence test (or
    the test's ``max_trials`` safety bound is reached).

    Args:
        measurements: The training measurements.
        configuration: The candidate configuration.
        confidence_test: Spread test bound to the requested confidence level.
        rng: Seeded generator driving the subsampling.
        sample_fraction: Fraction of the training requests per trial.
        pricing: Optional pre-built pricing model.
        baseline_version: Degradation reference version; defaults to the
            most accurate version of the full training set.
        degradation_mode: ``"relative"`` or ``"absolute"``.

    Returns:
        The worst-case estimate across all trials.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    if baseline_version is None:
        baseline_version = measurements.most_accurate_version()

    sample_size = max(2, int(round(measurements.n_requests * sample_fraction)))
    trials: List[TierSimulation] = []

    while True:
        indices = subsample_indices(measurements.n_requests, sample_size, rng=rng)
        trials.append(
            simulate(
                measurements,
                configuration,
                indices=indices,
                pricing=pricing,
                baseline_version=baseline_version,
                degradation_mode=degradation_mode,
            )
        )
        columns = (
            [t.error_degradation for t in trials],
            [t.mean_response_time_s for t in trials],
            [t.mean_invocation_cost for t in trials],
        )
        if confidence_test.all_satisfied(columns):
            break

    return WorstCaseEstimate(
        config_id=configuration.config_id,
        error_degradation=max(t.error_degradation for t in trials),
        mean_response_time_s=max(t.mean_response_time_s for t in trials),
        mean_invocation_cost=max(t.mean_invocation_cost for t in trials),
        n_trials=len(trials),
    )
