"""Bootstrapping one configuration to a worst-case estimate (paper Fig. 7).

The routing-rule generator needs, for every candidate configuration, a
*confident worst-case* estimate of its error degradation, response time and
invocation cost.  It gets one by repeatedly simulating the configuration on
random subsamples of the training requests until the spread of the observed
trial values satisfies the confidence test, then recording the worst value
seen for each metric.

Two implementations share that contract:

* the **legacy scalar loop** — one :func:`~repro.core.simulator.simulate`
  call per trial, kept as the correctness oracle; and
* the **blocked vectorized loop** — used when an
  :class:`~repro.core.outcome_matrix.OutcomeMatrix` is supplied.  Trial
  index sets are drawn in the exact rng order of the scalar loop, but
  evaluated as ``(block, sample_size)`` gathers against the matrix's
  precomputed outcome columns, and the sequential confidence test is fed in
  blocks via :meth:`~repro.stats.confidence.ConfidenceTest.first_satisfied`.
  Because the blocked loop may draw a few trials past the stopping point,
  it rewinds the generator and replays exactly the consumed draws, so the
  rng state after each configuration — and therefore every downstream
  configuration's trials — matches the scalar loop bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SingleVersionPolicy
from repro.core.simulator import TierSimulation, simulate
from repro.service.measurement import MeasurementSet
from repro.service.pricing import PricingModel
from repro.stats.confidence import ConfidenceTest
from repro.stats.resampling import subsample_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.outcome_matrix import OutcomeMatrix

__all__ = ["WorstCaseEstimate", "bootstrap_configuration"]

#: Trials evaluated per vectorized gather once the minimum-trial block has
#: been consumed.  Purely a throughput knob: results are identical for any
#: value because the stopping rule is replayed prefix by prefix.
DEFAULT_TRIAL_BLOCK = 64


@dataclass(frozen=True)
class WorstCaseEstimate:
    """Confident worst-case behaviour of one configuration.

    Attributes:
        config_id: Identifier of the bootstrapped configuration.
        error_degradation: Worst observed error degradation across trials.
        mean_response_time_s: Worst observed mean response time.
        mean_invocation_cost: Worst observed mean invocation cost.
        n_trials: Number of bootstrap trials run before the confidence test
            was satisfied.
    """

    config_id: str
    error_degradation: float
    mean_response_time_s: float
    mean_invocation_cost: float
    n_trials: int

    def objective_value(self, objective: str) -> float:
        """Worst-case value of the metric a tier objective minimises."""
        if objective == "response-time":
            return self.mean_response_time_s
        if objective == "cost":
            return self.mean_invocation_cost
        raise ValueError(f"unknown objective {objective!r}")


def bootstrap_configuration(
    measurements: MeasurementSet,
    configuration: EnsembleConfiguration,
    *,
    confidence_test: ConfidenceTest,
    rng: np.random.Generator,
    sample_fraction: float = 0.1,
    pricing: Optional[PricingModel] = None,
    baseline_version: Optional[str] = None,
    degradation_mode: str = "relative",
    outcome_matrix: Optional["OutcomeMatrix"] = None,
    trial_block: int = DEFAULT_TRIAL_BLOCK,
) -> WorstCaseEstimate:
    """Bootstrap one configuration until its metrics are confidently spread.

    Each trial simulates the configuration on a random
    ``sample_fraction``-sized subsample of the measurements (without
    replacement, mirroring the paper's ``choice(train, k=len/10)``), and the
    loop stops once every metric column satisfies the confidence test (or
    the test's ``max_trials`` safety bound is reached).

    Args:
        measurements: The training measurements.
        configuration: The candidate configuration.
        confidence_test: Spread test bound to the requested confidence level.
        rng: Seeded generator driving the subsampling.
        sample_fraction: Fraction of the training requests per trial.
        pricing: Optional pre-built pricing model.
        baseline_version: Degradation reference version; defaults to the
            most accurate version of the full training set.
        degradation_mode: ``"relative"`` or ``"absolute"``.
        outcome_matrix: Precomputed outcome columns enabling the blocked
            vectorized fast path; the configuration must have been
            expanded into it (fall back to the scalar loop otherwise).
        trial_block: Trials per vectorized gather on the fast path.

    Returns:
        The worst-case estimate across all trials.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    if baseline_version is None:
        baseline_version = measurements.most_accurate_version()

    sample_size = max(2, int(round(measurements.n_requests * sample_fraction)))

    if outcome_matrix is not None and configuration.config_id in outcome_matrix:
        if outcome_matrix.measurements is not measurements:
            raise ValueError(
                "outcome_matrix was built from a different measurement set"
            )
        if outcome_matrix.degradation_mode != degradation_mode:
            raise ValueError(
                f"outcome_matrix was built for degradation_mode="
                f"{outcome_matrix.degradation_mode!r}, not {degradation_mode!r}"
            )
        if outcome_matrix.baseline_version != baseline_version:
            raise ValueError(
                f"outcome_matrix was built against baseline "
                f"{outcome_matrix.baseline_version!r}, not {baseline_version!r}"
            )
        matrix_pricing = outcome_matrix.pricing
        if pricing is not None and not (
            pricing is matrix_pricing
            or (
                pricing.per_request_fee == matrix_pricing.per_request_fee
                and pricing.markup == matrix_pricing.markup
                and pricing.version_instances == matrix_pricing.version_instances
            )
        ):
            raise ValueError(
                "outcome_matrix was built with a different pricing model; "
                "pass an equivalent pricing (or omit it) so both engines "
                "price trials identically"
            )
        return _bootstrap_blocked(
            outcome_matrix,
            configuration,
            confidence_test=confidence_test,
            rng=rng,
            sample_size=sample_size,
            trial_block=trial_block,
        )
    return _bootstrap_scalar(
        measurements,
        configuration,
        confidence_test=confidence_test,
        rng=rng,
        sample_size=sample_size,
        pricing=pricing,
        baseline_version=baseline_version,
        degradation_mode=degradation_mode,
    )


def _bootstrap_scalar(
    measurements: MeasurementSet,
    configuration: EnsembleConfiguration,
    *,
    confidence_test: ConfidenceTest,
    rng: np.random.Generator,
    sample_size: int,
    pricing: Optional[PricingModel],
    baseline_version: str,
    degradation_mode: str,
) -> WorstCaseEstimate:
    """The legacy per-trial loop (the seed implementation; the oracle)."""
    baseline_policy = SingleVersionPolicy(baseline_version)
    trials: List[TierSimulation] = []

    while True:
        indices = subsample_indices(measurements.n_requests, sample_size, rng=rng)
        trials.append(
            simulate(
                measurements,
                configuration,
                indices=indices,
                pricing=pricing,
                baseline_version=baseline_version,
                baseline_policy=baseline_policy,
                degradation_mode=degradation_mode,
            )
        )
        columns = (
            [t.error_degradation for t in trials],
            [t.mean_response_time_s for t in trials],
            [t.mean_invocation_cost for t in trials],
        )
        if confidence_test.all_satisfied(columns):
            break

    return WorstCaseEstimate(
        config_id=configuration.config_id,
        error_degradation=max(t.error_degradation for t in trials),
        mean_response_time_s=max(t.mean_response_time_s for t in trials),
        mean_invocation_cost=max(t.mean_invocation_cost for t in trials),
        n_trials=len(trials),
    )


def _bootstrap_blocked(
    matrix: "OutcomeMatrix",
    configuration: EnsembleConfiguration,
    *,
    confidence_test: ConfidenceTest,
    rng: np.random.Generator,
    sample_size: int,
    trial_block: int,
) -> WorstCaseEstimate:
    """The blocked vectorized loop over precomputed outcome columns."""
    if trial_block < 1:
        raise ValueError("trial_block must be positive")
    n = matrix.n_requests
    sample_size = int(min(max(sample_size, 1), n))  # subsample_indices' clip
    max_trials = confidence_test.max_trials
    # The state property builds a fresh dict on access, so no copy needed.
    start_state = rng.bit_generator.state

    degradation = np.empty(max_trials)
    response = np.empty(max_trials)
    cost = np.empty(max_trials)
    index_buffer = np.empty(
        (min(max(confidence_test.min_trials, trial_block), max_trials), sample_size),
        dtype=np.int64,
    )
    # After the clip above this is exactly subsample_indices' draw, with
    # the wrapper's per-call validation hoisted out of the loop.
    draw = rng.choice
    drawn = 0
    stop: Optional[int] = None

    while stop is None:
        # The first block covers the trials the test cannot pass without
        # (it rejects every prefix shorter than min_trials), later blocks
        # are a throughput knob; max_trials caps the total either way.
        if drawn == 0:
            block = min(confidence_test.min_trials, max_trials)
        else:
            block = min(trial_block, max_trials - drawn)
        indices = index_buffer[:block]
        for row in range(block):
            indices[row] = draw(n, size=sample_size, replace=False)
        metrics = matrix.trial_metrics(configuration.config_id, indices)
        degradation[drawn : drawn + block] = metrics.error_degradation
        response[drawn : drawn + block] = metrics.mean_response_time_s
        cost[drawn : drawn + block] = metrics.mean_invocation_cost
        checked = drawn
        drawn += block
        stop = confidence_test.first_satisfied(
            (degradation[:drawn], response[:drawn], cost[:drawn]),
            start=checked + 1,
        )
        if stop is None and drawn >= max_trials:
            stop = max_trials  # unconditional safety valve

    if drawn > stop:
        # Replay exactly the draws the scalar loop would have consumed so
        # the generator state seen by the next configuration is identical.
        rng.bit_generator.state = start_state
        for _ in range(stop):
            draw(n, size=sample_size, replace=False)

    return WorstCaseEstimate(
        config_id=configuration.config_id,
        error_degradation=float(degradation[:stop].max()),
        mean_response_time_s=float(response[:stop].max()),
        mean_invocation_cost=float(cost[:stop].max()),
        n_trials=stop,
    )
