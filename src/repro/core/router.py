"""Serving-time routing: map a requested tier to a configuration.

The rule generator runs offline; what the load balancer needs online is a
fast lookup from the ``(Tolerance, Objective)`` headers of an incoming
request to the ensemble configuration that should serve it.
:class:`RoutingRuleTable` is the per-objective lookup table the generator
emits, and :class:`TierRouter` bundles the tables for all objectives.

Two online consumers share this router:

* :class:`~repro.core.api.ToleranceTiersService` executes the chosen
  configuration synchronously against a live cluster (one request at a
  time, no contention), and
* :class:`~repro.service.simulation.engine.ServingSimulator` executes it
  under offered load inside a discrete-event loop, where the same routing
  decision additionally determines which pools' queues the request joins
  (via :meth:`TierRouter.route_request`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.bootstrap import WorstCaseEstimate
from repro.core.configuration import EnsembleConfiguration
from repro.service.request import Objective, ServiceRequest

__all__ = ["RoutingRuleTable", "TierRouter"]


@dataclass
class RoutingRuleTable:
    """Routing rules for one objective.

    Attributes:
        objective: The objective the rules optimise.
        baseline: The most accurate configuration (serves the 0 % tier and
            any tolerance tighter than the smallest rule).
        rules: Mapping from tier tolerance to the chosen configuration.
        estimates: Worst-case estimates backing each rule (when available).
        confidence: Confidence level of the worst-case estimates.
    """

    objective: Objective
    baseline: EnsembleConfiguration
    rules: Dict[float, EnsembleConfiguration]
    estimates: Dict[float, WorstCaseEstimate] = field(default_factory=dict)
    confidence: float = 0.999

    @property
    def tolerances(self) -> Sequence[float]:
        """The tier tolerances covered, ascending."""
        return sorted(self.rules)

    def config_for(self, tolerance: float) -> EnsembleConfiguration:
        """The configuration serving a requested tolerance.

        The request is served by the rule of the *largest* tier tolerance
        that does not exceed the requested one — i.e. the most aggressive
        tier whose guarantee still covers the request.  Requests tighter
        than every rule fall back to the most accurate configuration.

        Args:
            tolerance: The consumer's requested tolerance.
        """
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        eligible = [t for t in self.rules if t <= tolerance + 1e-12]
        if not eligible:
            return self.baseline
        return self.rules[max(eligible)]

    def estimate_for(self, tolerance: float) -> Optional[WorstCaseEstimate]:
        """Worst-case estimate backing the rule used for a tolerance."""
        eligible = [t for t in self.rules if t <= tolerance + 1e-12]
        if not eligible:
            return None
        return self.estimates.get(max(eligible))


class TierRouter:
    """Routes ``(tolerance, objective)`` to an ensemble configuration.

    Args:
        tables: One :class:`RoutingRuleTable` per supported objective.

    Raises:
        ValueError: If no tables are supplied.
    """

    def __init__(self, tables: Dict[Objective, RoutingRuleTable]) -> None:
        if not tables:
            raise ValueError("a tier router needs at least one rule table")
        for objective, table in tables.items():
            if table.objective != objective:
                raise ValueError(
                    f"table registered under {objective} was generated for "
                    f"{table.objective}"
                )
        self._tables = dict(tables)

    @property
    def objectives(self) -> Sequence[Objective]:
        """Objectives the router can serve."""
        return tuple(self._tables.keys())

    def table_for(self, objective: Objective) -> RoutingRuleTable:
        """The rule table of one objective.

        Raises:
            KeyError: If the objective has no table.
        """
        try:
            return self._tables[objective]
        except KeyError:
            raise KeyError(
                f"no routing rules for objective {objective.value!r}; "
                f"available: {[o.value for o in self._tables]}"
            ) from None

    def route(
        self, tolerance: float, objective: Objective | str
    ) -> EnsembleConfiguration:
        """Pick the configuration serving a requested tier.

        Args:
            tolerance: Requested error tolerance.
            objective: Requested objective (enum or header string).
        """
        if isinstance(objective, str):
            objective = Objective.from_header(objective)
        return self.table_for(objective).config_for(tolerance)

    def route_request(self, request: ServiceRequest) -> EnsembleConfiguration:
        """Pick the configuration serving an annotated request.

        Convenience wrapper over :meth:`route` reading the request's
        ``Tolerance`` / ``Objective`` annotation directly; this is the
        entry point the serving simulator calls once per arrival.
        """
        return self.route(request.tolerance, request.objective)
