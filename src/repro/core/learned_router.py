"""Learned-escalation baseline (the paper's "ML-based router" ablation).

The paper reports evaluating richer alternatives to the simple
confidence-threshold policies — including a machine-learning-based router —
and finding that the simple policies outperformed them, so they were left
out of the main design.  To let the benchmark suite reproduce that
comparison, this module provides a learned escalation policy: a logistic
model is fit on training measurements to predict, from the fast version's
confidence, whether its result will be wrong; a request is escalated to the
accurate version when the predicted error probability exceeds a cut-off.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.outcomes import EnsembleOutcomes, LazyRequestIds
from repro.core.policies import EnsemblePolicy
from repro.service.measurement import MeasurementSet

__all__ = ["LogisticEscalationPolicy"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class LogisticEscalationPolicy(EnsemblePolicy):
    """Sequential escalation driven by a learned error predictor.

    Args:
        fast_version: The "little" version tried first.
        accurate_version: The "big" version escalated to.
        escalation_probability: Escalate when the predicted probability that
            the fast result is wrong exceeds this cut-off.
        error_threshold: A fast result counts as "wrong" for training when
            its error exceeds this value (0.0 works for both WER and top-1).
        learning_rate: Gradient-descent step size for the logistic fit.
        iterations: Number of full-batch gradient steps.
    """

    kind = "learned"

    def __init__(
        self,
        fast_version: str,
        accurate_version: str,
        *,
        escalation_probability: float = 0.5,
        error_threshold: float = 0.0,
        learning_rate: float = 0.5,
        iterations: int = 300,
    ) -> None:
        if fast_version == accurate_version:
            raise ValueError("fast and accurate versions must differ")
        if not 0.0 < escalation_probability < 1.0:
            raise ValueError("escalation_probability must be in (0, 1)")
        if iterations <= 0 or learning_rate <= 0.0:
            raise ValueError("iterations and learning_rate must be positive")
        self.fast_version = fast_version
        self.accurate_version = accurate_version
        self.escalation_probability = escalation_probability
        self.error_threshold = error_threshold
        self.learning_rate = learning_rate
        self.iterations = iterations
        self._weight = 0.0
        self._bias = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    # policy interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return (
            f"learned[{self.fast_version}->{self.accurate_version}"
            f"@p{self.escalation_probability:.2f}]"
        )

    @property
    def versions(self):
        return (self.fast_version, self.accurate_version)

    def describe(self) -> str:
        return (
            f"learned escalation: logistic error predictor on "
            f"{self.fast_version} confidence, escalate to "
            f"{self.accurate_version} when P(error) > "
            f"{self.escalation_probability:.2f}"
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> "LogisticEscalationPolicy":
        """Fit the logistic error predictor on training measurements.

        Args:
            measurements: Training measurement set.
            indices: Optional row subset to fit on.

        Returns:
            ``self`` (for chaining).
        """
        rows = self._select_rows(measurements, indices)
        fast = measurements.version_index(self.fast_version)
        confidence = measurements.confidence[rows, fast]
        wrong = (measurements.error[rows, fast] > self.error_threshold).astype(float)

        weight, bias = 0.0, 0.0
        for _ in range(self.iterations):
            logits = weight * confidence + bias
            predictions = _sigmoid(logits)
            gradient = predictions - wrong
            weight -= self.learning_rate * float((gradient * confidence).mean())
            bias -= self.learning_rate * float(gradient.mean())
        self._weight, self._bias = weight, bias
        self._fitted = True
        return self

    def predict_error_probability(self, confidence: np.ndarray) -> np.ndarray:
        """Predicted probability that the fast result is wrong."""
        if not self._fitted:
            raise RuntimeError("policy must be fit before prediction")
        return _sigmoid(self._weight * np.asarray(confidence, dtype=float) + self._bias)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        if not self._fitted:
            raise RuntimeError("policy must be fit before evaluation")
        rows = self._select_rows(measurements, indices)
        fast = measurements.version_index(self.fast_version)
        accurate = measurements.version_index(self.accurate_version)

        fast_error = measurements.error[rows, fast]
        fast_latency = measurements.latency_s[rows, fast]
        fast_confidence = measurements.confidence[rows, fast]
        accurate_error = measurements.error[rows, accurate]
        accurate_latency = measurements.latency_s[rows, accurate]

        escalate = (
            self.predict_error_probability(fast_confidence)
            > self.escalation_probability
        )
        error = np.where(escalate, accurate_error, fast_error)
        response = np.where(escalate, fast_latency + accurate_latency, fast_latency)
        return EnsembleOutcomes(
            policy_name=self.name,
            request_ids=LazyRequestIds(measurements.request_ids, rows),
            error=error,
            response_time_s=response,
            node_seconds={
                self.fast_version: fast_latency.copy(),
                self.accurate_version: np.where(escalate, accurate_latency, 0.0),
            },
            escalated=escalate,
        )
