"""Ensemble configurations and the design space the rule generator searches.

A *configuration* is one concrete deployable choice: an ensembling policy
with all of its parameters bound (which versions, which confidence
threshold).  The routing-rule generator bootstraps every candidate
configuration and then assigns one to each Tolerance Tier.

:func:`enumerate_configurations` builds the paper's design space: every
single version, plus every (fast version, accurate version) pair combined
under the sequential / concurrent / early-termination policies across a
grid of confidence thresholds.  The paper notes that richer spaces (three
or more versions, learned routers) did not outperform these simple
policies, so they are kept as ablations rather than defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    EnsemblePolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.measurement import MeasurementSet

__all__ = ["EnsembleConfiguration", "enumerate_configurations"]

_POLICY_CLASSES = {
    "seq": SequentialPolicy,
    "conc": ConcurrentPolicy,
    "et": EarlyTerminationPolicy,
}

#: Default confidence-threshold grid for the two-version policies.
DEFAULT_THRESHOLDS: Tuple[float, ...] = tuple(
    round(0.20 + 0.05 * i, 2) for i in range(15)
)


@dataclass(frozen=True)
class EnsembleConfiguration:
    """One deployable ensemble configuration.

    Attributes:
        config_id: Stable identifier within a design space.
        policy: The bound ensembling policy.
    """

    config_id: str
    policy: EnsemblePolicy

    @property
    def name(self) -> str:
        """The underlying policy's name."""
        return self.policy.name

    @property
    def versions(self) -> Tuple[str, ...]:
        """Service versions the configuration uses."""
        return self.policy.versions

    @property
    def kind(self) -> str:
        """Policy kind (``single`` / ``seq`` / ``conc`` / ``et``)."""
        return self.policy.kind

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.config_id}: {self.policy.describe()}"


def enumerate_configurations(
    measurements: MeasurementSet,
    *,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    policy_kinds: Sequence[str] = ("single", "seq", "conc", "et"),
    accurate_version: Optional[str] = None,
    fast_versions: Optional[Sequence[str]] = None,
) -> List[EnsembleConfiguration]:
    """Enumerate the candidate design space for a measurement set.

    Args:
        measurements: Measurement set whose versions define the space.
        thresholds: Confidence-threshold grid for the two-version policies.
        policy_kinds: Which policy families to include.
        accurate_version: The "big" version every two-version ensemble
            escalates to; defaults to the most accurate version of the set.
        fast_versions: Candidate "little" versions; defaults to every other
            version.

    Returns:
        A list of uniquely identified configurations.  Single-version
        configurations come first (they double as baselines).
    """
    unknown = set(policy_kinds) - ({"single"} | set(_POLICY_CLASSES))
    if unknown:
        raise ValueError(f"unknown policy kinds: {sorted(unknown)}")
    for threshold in thresholds:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside [0, 1]")

    if accurate_version is None:
        accurate_version = measurements.most_accurate_version()
    if accurate_version not in measurements.versions:
        raise ValueError(f"unknown accurate version {accurate_version!r}")
    if fast_versions is None:
        fast_versions = [
            v for v in measurements.versions if v != accurate_version
        ]
    else:
        for version in fast_versions:
            if version not in measurements.versions:
                raise ValueError(f"unknown fast version {version!r}")

    configurations: List[EnsembleConfiguration] = []
    counter = 0

    if "single" in policy_kinds:
        for version in measurements.versions:
            configurations.append(
                EnsembleConfiguration(
                    config_id=f"cfg_{counter:03d}",
                    policy=SingleVersionPolicy(version),
                )
            )
            counter += 1

    for kind in policy_kinds:
        if kind == "single":
            continue
        policy_cls = _POLICY_CLASSES[kind]
        for fast in fast_versions:
            if fast == accurate_version:
                continue
            for threshold in thresholds:
                configurations.append(
                    EnsembleConfiguration(
                        config_id=f"cfg_{counter:03d}",
                        policy=policy_cls(fast, accurate_version, threshold),
                    )
                )
                counter += 1
    return configurations
