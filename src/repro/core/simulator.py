"""Tier simulation: replay one configuration over measured requests.

This is the ``simulate(sample, cfg)`` call inside the paper's routing-rule
generator (Fig. 7): given a subset of the training measurements and one
candidate configuration, report the three numbers the generator cares about
— error degradation versus the most accurate version, mean response time,
and mean invocation cost.

Scope note: this replay is *contention-free* — each request is scored in
isolation, so response times contain no queueing delay and costs assume no
batching.  That is exactly what the offline rule generator needs (it ranks
configurations, it does not size clusters).  To evaluate the same
configurations under offered load — arrival processes, per-node FIFO
queues, request batching, autoscaling — use the discrete-event engine in
:mod:`repro.service.simulation` (:class:`~repro.service.simulation.engine.ServingSimulator`),
which replays the very same measurements through
:class:`~repro.service.simulation.replay.MeasurementReplayVersion` and
reports tail percentiles instead of means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.configuration import EnsembleConfiguration
from repro.core.metrics import build_pricing, evaluate_policy
from repro.core.policies import SingleVersionPolicy
from repro.service.measurement import MeasurementSet
from repro.service.pricing import PricingModel

__all__ = ["TierSimulation", "simulate"]


@dataclass(frozen=True)
class TierSimulation:
    """Result of simulating one configuration over one request sample.

    Attributes:
        config_id: Identifier of the simulated configuration.
        error_degradation: Relative error degradation versus the most
            accurate single version on the same sample.
        mean_response_time_s: Mean end-to-end response time (service time
            only; see the module docstring for the load-aware counterpart,
            :class:`~repro.service.simulation.report.LoadTestReport`).
        mean_invocation_cost: Mean billed cost per request.
        response_time_reduction: Saving versus the OSFA baseline.
        cost_reduction: Saving versus the OSFA baseline.
    """

    config_id: str
    error_degradation: float
    mean_response_time_s: float
    mean_invocation_cost: float
    response_time_reduction: float
    cost_reduction: float

    def objective_value(self, objective: str) -> float:
        """The raw metric a tier with the given objective minimises.

        Args:
            objective: ``"response-time"`` or ``"cost"``.
        """
        if objective == "response-time":
            return self.mean_response_time_s
        if objective == "cost":
            return self.mean_invocation_cost
        raise ValueError(f"unknown objective {objective!r}")


def simulate(
    measurements: MeasurementSet,
    configuration: EnsembleConfiguration,
    *,
    indices: Optional[Sequence[int]] = None,
    pricing: Optional[PricingModel] = None,
    baseline_version: Optional[str] = None,
    baseline_policy: Optional["SingleVersionPolicy"] = None,
    degradation_mode: str = "relative",
) -> TierSimulation:
    """Simulate one configuration over (a sample of) the measurements.

    This is the generator's contention-free inner loop; for the same
    configuration under offered load, drive a
    :class:`~repro.service.simulation.engine.ServingSimulator` instead.

    Args:
        measurements: The service's measurement set.
        configuration: The candidate configuration to replay.
        indices: Optional row subset (a bootstrap trial's sample).
        pricing: Optional pre-built pricing model (saves re-deriving it in
            tight bootstrap loops).
        baseline_version: Most accurate version used as the degradation
            reference; defaults to the set's most accurate version.
        baseline_policy: Pre-built baseline policy threaded through to
            :func:`~repro.core.metrics.evaluate_policy`, so bootstrap loops
            do not rebuild one per trial.
        degradation_mode: ``"relative"`` or ``"absolute"``.
    """
    if pricing is None:
        pricing = build_pricing(measurements)
    metrics = evaluate_policy(
        measurements,
        configuration.policy,
        indices=indices,
        pricing=pricing,
        baseline_version=baseline_version,
        baseline_policy=baseline_policy,
        degradation_mode=degradation_mode,
    )
    return TierSimulation(
        config_id=configuration.config_id,
        error_degradation=metrics.error_degradation,
        mean_response_time_s=metrics.mean_response_time_s,
        mean_invocation_cost=metrics.mean_invocation_cost,
        response_time_reduction=metrics.response_time_reduction,
        cost_reduction=metrics.cost_reduction,
    )
