"""Per-request outcomes of an ensembling policy.

A policy evaluated over a measurement set produces, for every request, the
error of the result the consumer actually receives, the end-to-end response
time, and the node-seconds each service version consumed (including wasted
concurrent work).  :class:`EnsembleOutcomes` carries those arrays plus the
aggregation helpers the metrics layer builds on.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.service.pricing import CostBreakdown, PricingModel

__all__ = ["EnsembleOutcomes", "LazyRequestIds"]


class LazyRequestIds(SequenceABC):
    """Request ids resolved from row indices only on access.

    Policy evaluation used to materialise an O(n) tuple of request-id
    strings on *every* call — a real cost inside the bootstrap loop, which
    evaluates thousands of subsamples and never looks at the ids.  This
    view stores the source id tuple plus the selected row indices and
    resolves ids lazily; iterating, slicing and comparing materialise (and
    cache) the tuple once.

    Args:
        source: The full request-id sequence (row order of the
            measurement set).
        rows: Integer row indices selecting and ordering the ids.
    """

    __slots__ = ("_source", "_rows", "_materialized")

    def __init__(self, source: Sequence[str], rows: np.ndarray) -> None:
        self._source = source
        self._rows = np.asarray(rows, dtype=int)
        self._materialized: Optional[Tuple[str, ...]] = None

    def materialize(self) -> Tuple[str, ...]:
        """The resolved id tuple (built on first call, then cached)."""
        if self._materialized is None:
            self._materialized = tuple(
                self._source[i] for i in self._rows
            )
        return self._materialized

    def __len__(self) -> int:
        return int(self._rows.size)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return self.materialize()[item]
        return self._source[int(self._rows[item])]

    def __iter__(self):
        return iter(self.materialize())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyRequestIds):
            return self.materialize() == other.materialize()
        if isinstance(other, (tuple, list)):
            return self.materialize() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __repr__(self) -> str:
        return f"LazyRequestIds(n={len(self)})"


@dataclass
class EnsembleOutcomes:
    """Outcome of running one policy over a set of measured requests.

    Attributes:
        policy_name: Name of the policy that produced the outcomes.
        request_ids: The requests covered (row order of all arrays); either
            a materialised tuple or a :class:`LazyRequestIds` view.
        error: Error of the result returned to the consumer, per request.
        response_time_s: End-to-end response time, per request.
        node_seconds: Node-seconds consumed per service version, per request
            (arrays aligned with ``request_ids``); includes work whose
            result was discarded.
        escalated: Whether more than one version contributed work.
    """

    policy_name: str
    request_ids: Sequence[str]
    error: np.ndarray
    response_time_s: np.ndarray
    node_seconds: Dict[str, np.ndarray]
    escalated: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def __post_init__(self) -> None:
        n = len(self.request_ids)
        self.error = np.asarray(self.error, dtype=float)
        self.response_time_s = np.asarray(self.response_time_s, dtype=float)
        if self.error.shape != (n,) or self.response_time_s.shape != (n,):
            raise ValueError("error/response_time arrays must be one value per request")
        for version, seconds in self.node_seconds.items():
            seconds = np.asarray(seconds, dtype=float)
            if seconds.shape != (n,):
                raise ValueError(
                    f"node_seconds[{version!r}] must have one value per request"
                )
            self.node_seconds[version] = seconds
        if self.escalated.size == 0:
            self.escalated = np.zeros(n, dtype=bool)
        self.escalated = np.asarray(self.escalated, dtype=bool)
        if self.escalated.shape != (n,):
            raise ValueError("escalated must have one value per request")

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of requests covered."""
        return len(self.request_ids)

    def mean_error(self) -> float:
        """Mean error of the results returned to the consumer."""
        return float(self.error.mean())

    def mean_response_time(self) -> float:
        """Mean end-to-end response time in seconds."""
        return float(self.response_time_s.mean())

    def p99_response_time(self) -> float:
        """99th-percentile response time in seconds."""
        return float(np.percentile(self.response_time_s, 99))

    def escalation_rate(self) -> float:
        """Fraction of requests that involved more than one version."""
        return float(self.escalated.mean())

    def total_node_seconds(self) -> Dict[str, float]:
        """Total node-seconds consumed per version."""
        return {v: float(s.sum()) for v, s in self.node_seconds.items()}

    def cost(self, pricing: PricingModel) -> CostBreakdown:
        """Price the outcomes under a pricing model.

        Args:
            pricing: Pricing model covering every version that did work.
        """
        per_version = {
            version: pricing.compute_cost(version, float(seconds.sum()))
            for version, seconds in self.node_seconds.items()
        }
        iaas = sum(per_version.values())
        invocation = (
            self.n_requests * pricing.per_request_fee + pricing.markup * iaas
        )
        return CostBreakdown(
            invocation_cost=invocation,
            iaas_cost=iaas,
            per_version_iaas=per_version,
            n_requests=self.n_requests,
        )

    def mean_invocation_cost(self, pricing: PricingModel) -> float:
        """Average invocation cost per request."""
        return self.cost(pricing).invocation_cost / self.n_requests
