"""Service-version ensembling policies (paper Section IV).

Tolerance Tiers serves a tier not with one model but with an *ensemble* of
service versions combined by a routing policy.  The paper evaluates simple
two-version policies built around a fast ("little") version and an accurate
("big") version, gated by the fast version's result confidence:

* :class:`SingleVersionPolicy` — the degenerate ensemble of one version;
  the conventional "one size fits all" deployment is the single most
  accurate version.
* :class:`SequentialPolicy` (``seq``) — run the fast version first; when its
  confidence falls below the threshold, re-run the request on the accurate
  version and return that result.  Saves compute, but escalated requests pay
  both latencies back to back.
* :class:`ConcurrentPolicy` (``conc``) — launch both versions at once;
  return the fast result if it is confident, otherwise wait for the accurate
  one.  Escalated requests only pay the accurate version's latency, but the
  accurate version's work is spent on every request.
* :class:`EarlyTerminationPolicy` (``et``) — like ``conc``, but the accurate
  version is cancelled as soon as the fast result is accepted, so the wasted
  work is bounded by the fast version's latency.

All policies are evaluated by *replaying* a
:class:`~repro.service.measurement.MeasurementSet`: the per-request error,
latency and confidence of each version were measured once, and the policy
decides which of those measurements the consumer would have received.  This
mirrors the paper's rule generator, which simulates configurations over
training data rather than re-running models.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.outcomes import EnsembleOutcomes, LazyRequestIds
from repro.service.measurement import MeasurementSet

__all__ = [
    "ConcurrentPolicy",
    "EarlyTerminationPolicy",
    "EnsemblePolicy",
    "SequentialPolicy",
    "SingleVersionPolicy",
]


class EnsemblePolicy:
    """Base class for ensembling policies.

    Subclasses implement :meth:`evaluate`, returning per-request
    :class:`~repro.core.outcomes.EnsembleOutcomes` for a measurement set.
    """

    #: Short policy kind identifier (``"single"``, ``"seq"``, ``"conc"``, ``"et"``).
    kind: str = "base"

    @property
    def name(self) -> str:
        """Unique, human-readable policy name."""
        raise NotImplementedError

    @property
    def versions(self) -> Tuple[str, ...]:
        """Service versions the policy may use."""
        raise NotImplementedError

    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        """Replay the policy over (a subset of) a measurement set.

        Args:
            measurements: Dense measurement table for the service.
            indices: Optional row indices restricting the replay.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _select_rows(
        measurements: MeasurementSet, indices: Optional[Sequence[int]]
    ) -> np.ndarray:
        if indices is None:
            return np.arange(measurements.n_requests)
        rows = np.asarray(indices, dtype=int)
        if rows.size == 0:
            raise ValueError("cannot evaluate a policy over zero requests")
        return rows


class SingleVersionPolicy(EnsemblePolicy):
    """Serve every request with one fixed service version.

    Args:
        version: The service version to use.
    """

    kind = "single"

    def __init__(self, version: str) -> None:
        self._version = version

    @property
    def name(self) -> str:
        return f"single[{self._version}]"

    @property
    def versions(self) -> Tuple[str, ...]:
        return (self._version,)

    @property
    def version(self) -> str:
        """The single version used."""
        return self._version

    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        rows = self._select_rows(measurements, indices)
        col = measurements.version_index(self._version)
        latency = measurements.latency_s[rows, col]
        return EnsembleOutcomes(
            policy_name=self.name,
            request_ids=LazyRequestIds(measurements.request_ids, rows),
            error=measurements.error[rows, col],
            response_time_s=latency,
            node_seconds={self._version: latency.copy()},
            escalated=np.zeros(rows.size, dtype=bool),
        )


class _TwoVersionPolicy(EnsemblePolicy):
    """Shared machinery of the fast/accurate confidence-gated policies."""

    def __init__(
        self, fast_version: str, accurate_version: str, confidence_threshold: float
    ) -> None:
        if fast_version == accurate_version:
            raise ValueError("fast and accurate versions must differ")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in [0, 1]")
        self.fast_version = fast_version
        self.accurate_version = accurate_version
        self.confidence_threshold = confidence_threshold

    @property
    def name(self) -> str:
        return (
            f"{self.kind}[{self.fast_version}->{self.accurate_version}"
            f"@{self.confidence_threshold:.2f}]"
        )

    @property
    def versions(self) -> Tuple[str, ...]:
        return (self.fast_version, self.accurate_version)

    def describe(self) -> str:
        return (
            f"{self.kind}: try {self.fast_version}, escalate to "
            f"{self.accurate_version} when confidence < "
            f"{self.confidence_threshold:.2f}"
        )

    def _columns(
        self, measurements: MeasurementSet, rows: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        fast = measurements.version_index(self.fast_version)
        accurate = measurements.version_index(self.accurate_version)
        return (
            measurements.error[rows, fast],
            measurements.latency_s[rows, fast],
            measurements.confidence[rows, fast],
            measurements.error[rows, accurate],
            measurements.latency_s[rows, accurate],
        )


class SequentialPolicy(_TwoVersionPolicy):
    """Fast first; escalate to the accurate version when unconfident."""

    kind = "seq"

    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        rows = self._select_rows(measurements, indices)
        fast_err, fast_lat, fast_conf, acc_err, acc_lat = self._columns(
            measurements, rows
        )
        escalate = fast_conf < self.confidence_threshold
        error = np.where(escalate, acc_err, fast_err)
        response = np.where(escalate, fast_lat + acc_lat, fast_lat)
        return EnsembleOutcomes(
            policy_name=self.name,
            request_ids=LazyRequestIds(measurements.request_ids, rows),
            error=error,
            response_time_s=response,
            node_seconds={
                self.fast_version: fast_lat.copy(),
                self.accurate_version: np.where(escalate, acc_lat, 0.0),
            },
            escalated=escalate,
        )


class ConcurrentPolicy(_TwoVersionPolicy):
    """Run both versions in parallel; the accurate one always completes."""

    kind = "conc"

    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        rows = self._select_rows(measurements, indices)
        fast_err, fast_lat, fast_conf, acc_err, acc_lat = self._columns(
            measurements, rows
        )
        escalate = fast_conf < self.confidence_threshold
        error = np.where(escalate, acc_err, fast_err)
        response = np.where(escalate, np.maximum(fast_lat, acc_lat), fast_lat)
        return EnsembleOutcomes(
            policy_name=self.name,
            request_ids=LazyRequestIds(measurements.request_ids, rows),
            error=error,
            response_time_s=response,
            node_seconds={
                self.fast_version: fast_lat.copy(),
                # The accurate version runs to completion on every request,
                # whether or not its result is used.
                self.accurate_version: acc_lat.copy(),
            },
            escalated=escalate,
        )


class EarlyTerminationPolicy(_TwoVersionPolicy):
    """Concurrent execution with cancellation of the accurate version.

    When the fast version's result is accepted, the accurate version is
    killed at that moment, so its wasted node time is bounded by the fast
    version's latency instead of its own.
    """

    kind = "et"

    def evaluate(
        self,
        measurements: MeasurementSet,
        indices: Optional[Sequence[int]] = None,
    ) -> EnsembleOutcomes:
        rows = self._select_rows(measurements, indices)
        fast_err, fast_lat, fast_conf, acc_err, acc_lat = self._columns(
            measurements, rows
        )
        escalate = fast_conf < self.confidence_threshold
        error = np.where(escalate, acc_err, fast_err)
        response = np.where(escalate, np.maximum(fast_lat, acc_lat), fast_lat)
        accurate_seconds = np.where(
            escalate, acc_lat, np.minimum(acc_lat, fast_lat)
        )
        return EnsembleOutcomes(
            policy_name=self.name,
            request_ids=LazyRequestIds(measurements.request_ids, rows),
            error=error,
            response_time_s=response,
            node_seconds={
                self.fast_version: fast_lat.copy(),
                self.accurate_version: accurate_seconds,
            },
            escalated=escalate,
        )
