"""Precomputed outcome columns: the rule generator's vectorized fast path.

The bootstrap loop of the routing-rule generator (paper Fig. 7) evaluates
the *same* configuration on hundreds of random subsamples.  The legacy path
pays Python-object overhead on every trial: it rebuilds policy outcome
objects, re-evaluates the OSFA baseline from scratch and materialises
per-row request-id tuples, only to reduce everything to three scalars.

:class:`OutcomeMatrix` removes that overhead by observing that for the
policies the design space enumerates (``single`` / ``seq`` / ``conc`` /
``et``), every per-request outcome is a *fixed function of the measurement
table* — independent of which subsample a trial draws.  So the matrix
computes, once per configuration, dense ``(n_requests,)`` outcome columns:

* the error of the result the consumer receives,
* the end-to-end response time, and
* the node-seconds each version consumes (including wasted concurrent
  work).

For the threshold grid, the fast/accurate measurement columns are fetched
once per version pair and every threshold's columns are derived from
comparisons on the shared confidence column, instead of re-evaluating each
:class:`~repro.core.configuration.EnsembleConfiguration` independently.

A bootstrap trial then becomes a ``(block, sample_size)`` integer gather
plus a ``mean(axis=1)`` — see :meth:`OutcomeMatrix.trial_metrics` — and the
arithmetic is ordered exactly like the legacy scalar path
(:func:`repro.core.simulator.simulate`) so both produce bit-identical
metrics; the legacy path is kept as the correctness oracle
(``tests/core/test_outcome_matrix.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.metrics import build_pricing
from repro.core.policies import (
    ConcurrentPolicy,
    EarlyTerminationPolicy,
    EnsemblePolicy,
    SequentialPolicy,
    SingleVersionPolicy,
)
from repro.service.measurement import MeasurementSet
from repro.service.pricing import PricingModel

__all__ = ["ConfigurationColumns", "OutcomeMatrix", "TrialMetricBlock"]

#: Policy types the matrix can expand into dense outcome columns.  Exact
#: types, not ``isinstance``: a subclass may override ``evaluate`` (the
#: learned-escalation baseline does) and must fall back to the legacy path.
_SUPPORTED_POLICY_TYPES = (
    SingleVersionPolicy,
    SequentialPolicy,
    ConcurrentPolicy,
    EarlyTerminationPolicy,
)


@dataclass(frozen=True)
class ConfigurationColumns:
    """Dense per-request outcome columns of one configuration.

    All columns live in one ``stacked`` matrix — rows: consumer error,
    baseline error, response time, then the node-seconds rows named by
    ``node_rows`` — so a trial block needs a single contiguous gather.  For
    a single-version policy the response-time row doubles as its
    node-seconds row (they are the same column).

    Attributes:
        config_id: The configuration the columns describe.
        stacked: ``(n_rows, n_requests)`` outcome-column matrix.
        node_rows: ``(version, row-index)`` pairs in the policy's version
            order (the order the legacy cost breakdown sums in).
    """

    config_id: str
    stacked: np.ndarray
    node_rows: Tuple[Tuple[str, int], ...]

    @property
    def error(self) -> np.ndarray:
        """Error of the result served to the consumer, per request."""
        return self.stacked[0]

    @property
    def baseline_error(self) -> np.ndarray:
        """Error of the OSFA baseline version, per request."""
        return self.stacked[1]

    @property
    def response_time_s(self) -> np.ndarray:
        """End-to-end response time, per request."""
        return self.stacked[2]

    @property
    def node_seconds(self) -> Tuple[Tuple[str, np.ndarray], ...]:
        """``(version, seconds-column)`` pairs in policy version order."""
        return tuple(
            (version, self.stacked[row]) for version, row in self.node_rows
        )


@dataclass(frozen=True)
class TrialMetricBlock:
    """Metrics of a block of bootstrap trials, one entry per trial.

    The three arrays mirror the fields of
    :class:`~repro.core.simulator.TierSimulation` that the bootstrap
    consumes.
    """

    error_degradation: np.ndarray
    mean_response_time_s: np.ndarray
    mean_invocation_cost: np.ndarray


class OutcomeMatrix:
    """Per-configuration outcome columns over one measurement set.

    Build with :meth:`build`; evaluate bootstrap trials with
    :meth:`trial_metrics`.  The matrix also owns the shared pieces every
    configuration's evaluation needs — one pricing model, one baseline
    error column (the cached OSFA evaluation), one degradation mode — so
    nothing is re-derived per configuration or per trial.
    """

    def __init__(
        self,
        measurements: MeasurementSet,
        pricing: PricingModel,
        baseline_version: str,
        degradation_mode: str,
        columns: Dict[str, ConfigurationColumns],
    ) -> None:
        if degradation_mode not in ("relative", "absolute"):
            raise ValueError(
                f"mode must be 'relative' or 'absolute', got {degradation_mode!r}"
            )
        self.measurements = measurements
        self.pricing = pricing
        self.baseline_version = baseline_version
        self.degradation_mode = degradation_mode
        self._columns = columns
        self._baseline_error = np.ascontiguousarray(
            measurements.error[:, measurements.version_index(baseline_version)]
        )
        self._price = {
            version: pricing.instance_for(version).price_per_second
            for version in measurements.versions
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def supports(policy: EnsemblePolicy) -> bool:
        """Whether the matrix can precompute columns for a policy."""
        return type(policy) in _SUPPORTED_POLICY_TYPES

    @classmethod
    def build(
        cls,
        measurements: MeasurementSet,
        configurations: Iterable[EnsembleConfiguration],
        *,
        pricing: Optional[PricingModel] = None,
        baseline_version: Optional[str] = None,
        degradation_mode: str = "relative",
    ) -> "OutcomeMatrix":
        """Precompute outcome columns for every supported configuration.

        Unsupported policies (custom ``evaluate`` overrides) are skipped;
        callers detect them via ``config_id in matrix`` and keep the legacy
        scalar path for those.

        Args:
            measurements: The training measurement table.
            configurations: Candidate configurations to expand.
            pricing: Shared pricing model; derived from the measurements
                when omitted.
            baseline_version: Degradation reference; defaults to the most
                accurate version.
            degradation_mode: ``"relative"`` or ``"absolute"``.
        """
        if pricing is None:
            pricing = build_pricing(measurements)
        if baseline_version is None:
            baseline_version = measurements.most_accurate_version()
        baseline_error = np.ascontiguousarray(
            measurements.error[:, measurements.version_index(baseline_version)]
        )

        version_cols: Dict[str, Dict[str, np.ndarray]] = {}

        def cols_for(version: str) -> Dict[str, np.ndarray]:
            cached = version_cols.get(version)
            if cached is None:
                j = measurements.version_index(version)
                cached = {
                    "error": np.ascontiguousarray(measurements.error[:, j]),
                    "latency": np.ascontiguousarray(measurements.latency_s[:, j]),
                    "confidence": np.ascontiguousarray(
                        measurements.confidence[:, j]
                    ),
                }
                version_cols[version] = cached
            return cached

        n = measurements.n_requests
        columns: Dict[str, ConfigurationColumns] = {}
        for configuration in configurations:
            policy = configuration.policy
            if not cls.supports(policy):
                continue
            if isinstance(policy, SingleVersionPolicy):
                version = policy.version
                # 3 rows: the latency row is both the response time and
                # the version's node seconds.
                stacked = np.empty((3, n))
                stacked[0] = cols_for(version)["error"]
                stacked[1] = baseline_error
                stacked[2] = cols_for(version)["latency"]
                columns[configuration.config_id] = ConfigurationColumns(
                    config_id=configuration.config_id,
                    stacked=stacked,
                    node_rows=((version, 2),),
                )
                continue

            fast = cols_for(policy.fast_version)
            accurate = cols_for(policy.accurate_version)
            fast_lat, acc_lat = fast["latency"], accurate["latency"]
            escalate = fast["confidence"] < policy.confidence_threshold
            stacked = np.empty((5, n))
            # np.copyto(..., where=) is a pure selection, so the rows are
            # elementwise identical to the policies' np.where expressions.
            np.copyto(stacked[0], fast["error"])
            np.copyto(stacked[0], accurate["error"], where=escalate)
            stacked[1] = baseline_error
            stacked[3] = fast_lat
            if isinstance(policy, SequentialPolicy):
                np.add(fast_lat, acc_lat, out=stacked[2])
                np.copyto(stacked[2], fast_lat, where=~escalate)
                stacked[4] = 0.0
                np.copyto(stacked[4], acc_lat, where=escalate)
            else:  # conc / et share the concurrent response time
                np.maximum(fast_lat, acc_lat, out=stacked[2])
                np.copyto(stacked[2], fast_lat, where=~escalate)
                if isinstance(policy, EarlyTerminationPolicy):
                    np.minimum(acc_lat, fast_lat, out=stacked[4])
                    np.copyto(stacked[4], acc_lat, where=escalate)
                else:
                    stacked[4] = acc_lat
            columns[configuration.config_id] = ConfigurationColumns(
                config_id=configuration.config_id,
                stacked=stacked,
                node_rows=(
                    (policy.fast_version, 3),
                    (policy.accurate_version, 4),
                ),
            )
        return cls(
            measurements, pricing, baseline_version, degradation_mode, columns
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of requests (rows) every column covers."""
        return self.measurements.n_requests

    @property
    def config_ids(self) -> Tuple[str, ...]:
        """Identifiers of the configurations with precomputed columns."""
        return tuple(self._columns)

    def __contains__(self, config_id: str) -> bool:
        return config_id in self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def columns_for(self, config_id: str) -> ConfigurationColumns:
        """The precomputed columns of one configuration.

        Raises:
            KeyError: If the configuration was not expanded.
        """
        try:
            return self._columns[config_id]
        except KeyError:
            raise KeyError(
                f"no outcome columns for configuration {config_id!r}"
            ) from None

    @property
    def baseline_error(self) -> np.ndarray:
        """The cached baseline (OSFA) error column."""
        return self._baseline_error

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def trial_metrics(
        self, config_id: str, indices: np.ndarray
    ) -> TrialMetricBlock:
        """Evaluate a block of bootstrap trials in one vectorized pass.

        Args:
            config_id: Configuration to evaluate.
            indices: Integer row-index array of shape ``(block,
                sample_size)`` — one trial per row — or ``(sample_size,)``
                for a single trial.

        Returns:
            Per-trial metric arrays of shape ``(block,)``.  Every value is
            arithmetically ordered like the legacy scalar path, so it is
            bit-identical to ``simulate(measurements, cfg, indices=row)``.
        """
        cols = self.columns_for(config_id)
        idx = np.asarray(indices)
        if idx.ndim == 1:
            idx = idx[np.newaxis, :]
        if idx.ndim != 2 or idx.shape[1] == 0:
            raise ValueError("indices must be a (block, sample_size) array")
        block, sample_size = idx.shape
        n_rows = cols.stacked.shape[0]

        # One gather for all columns.  ``take`` (unlike ``stacked[:, idx]``,
        # which leaves the gathered axes strided) yields a C-contiguous
        # result, so the per-row sums reduce along the contiguous axis in
        # the same pairwise order as the scalar path's 1-D means and every
        # metric is bit-identical to simulate().
        gathered = cols.stacked.take(idx.reshape(-1), axis=1)
        sums = gathered.reshape(n_rows, block, sample_size).sum(axis=2)
        candidate_error = sums[0] / sample_size
        baseline_error = sums[1] / sample_size
        degradation = _vector_degradation(
            candidate_error, baseline_error, mode=self.degradation_mode
        )
        response = sums[2] / sample_size

        # Cost, ordered exactly like EnsembleOutcomes.cost(): per-version
        # node-second sums, priced, then accumulated in version order
        # (starting the accumulation at the first version is exact:
        # ``0.0 + x == x``).
        (first_version, first_row), *rest = cols.node_rows
        iaas = sums[first_row] * self._price[first_version]
        for version, row in rest:
            iaas += sums[row] * self._price[version]
        invocation = (
            sample_size * self.pricing.per_request_fee
            + self.pricing.markup * iaas
        )
        cost = invocation / sample_size
        return TrialMetricBlock(
            error_degradation=degradation,
            mean_response_time_s=response,
            mean_invocation_cost=cost,
        )

    def evaluate(
        self, config_id: str, indices: Optional[Sequence[int]] = None
    ) -> TrialMetricBlock:
        """Metrics of one configuration over (a subset of) all requests.

        Convenience wrapper around :meth:`trial_metrics` treating the whole
        row set (or the given subset) as a single trial.
        """
        if indices is None:
            idx = np.arange(self.n_requests)
        else:
            idx = np.asarray(indices, dtype=int)
        return self.trial_metrics(config_id, idx[np.newaxis, :])


def _vector_degradation(
    candidate_error: np.ndarray, baseline_error: np.ndarray, *, mode: str
) -> np.ndarray:
    """Vectorized :func:`repro.core.metrics.error_degradation`.

    Elementwise-identical to the scalar function: zero when the candidate
    beats the baseline, the absolute difference in ``"absolute"`` mode or
    against a perfect (zero-error) baseline, the relative difference
    otherwise.
    """
    diff = candidate_error - baseline_error
    if mode == "absolute":
        raw = diff
    else:
        positive = baseline_error > 0.0
        raw = np.where(
            positive, diff / np.where(positive, baseline_error, 1.0), diff
        )
    return np.where(diff <= 0.0, 0.0, raw)
