"""Post-hoc span reconstruction from finished reports.

The columnar engine never pays per-event hooks — that is what keeps its
hot path >10x over the legacy loop.  Instead, when a collector is
attached and the run drained columnar, the engine hands the finished
:class:`~repro.service.simulation.report.LoadTestReport` here and the
span trees are rebuilt *after the fact* from ``RecordColumns``: the
derived stage boundaries (queue-wait end, fast-leg end) are computed
vectorized over the whole run, then one coarse trace per request is
materialized.

Reconstruction is **coarse** by design: the columns record when a
request arrived, how long it queued, when it finished, whether it
escalated and what each leg billed — not per-batch start/finish times.
The rebuilt tree is therefore ``request → queue-wait → leg(fast) →
escalate`` with leg ends *estimated* from billed node-seconds (clamped
to the finish time).  The per-record fallback path produces the exact
same trees from materialized :class:`RequestRecord` objects, so the
two paths are interchangeable and testable against each other.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.obs.trace import Span, Trace

__all__ = ["trace_from_record", "traces_from_report"]


def _status(shed: bool, failed: bool) -> str:
    if shed:
        return "shed"
    if failed:
        return "failed"
    return "ok"


def _build_trace(
    *,
    request_id: str,
    payload: object,
    tier: float,
    arrival: float,
    finished: float,
    queue_wait: float,
    escalated: bool,
    retries: int,
    shed: bool,
    failed: bool,
    degraded: bool,
    retry_denied: bool,
    confidence: Optional[float],
    fast_version: Optional[str],
    fast_seconds: Optional[float],
    fast_end: float,
    accurate_version: Optional[str],
    accurate_seconds: Optional[float],
) -> Trace:
    root = Span(
        name="request",
        start_s=arrival,
        end_s=finished,
        status=_status(shed, failed),
        attrs={
            "tier": float(tier),
            "payload": str(payload),
            "escalated": bool(escalated),
            "retries": int(retries),
        },
    )
    if degraded:
        root.attrs["degraded"] = True
    if retry_denied:
        root.attrs["retry_denied"] = True
    if confidence is not None:
        root.attrs["confidence"] = float(confidence)
    spans: List[Span] = [root]
    if shed:
        return Trace(request_id=request_id, spans=spans)
    spans.append(
        Span(
            name="queue-wait",
            start_s=arrival,
            end_s=arrival + queue_wait,
        )
    )
    if fast_version is not None:
        leg = Span(
            name="leg",
            start_s=arrival + queue_wait,
            end_s=fast_end,
            status="failed" if failed and not escalated else "ok",
            attrs={"version": fast_version, "leg": "fast"},
        )
        if fast_seconds is not None:
            leg.attrs["seconds"] = float(fast_seconds)
        spans.append(leg)
    if escalated and accurate_version is not None:
        escalate = Span(
            name="escalate",
            start_s=fast_end,
            end_s=finished,
            status="failed" if failed else "ok",
            attrs={"version": accurate_version, "leg": "accurate"},
        )
        if accurate_seconds is not None:
            escalate.attrs["seconds"] = float(accurate_seconds)
        spans.append(escalate)
    elif accurate_seconds is not None and accurate_version is not None:
        # Concurrent/early-termination policies bill the accurate leg
        # without an escalation stage; the columns cannot place it on
        # the clock, so it is recorded as billed time on the root.
        root.attrs["accurate_billed_s"] = float(accurate_seconds)
        root.attrs["accurate_version"] = accurate_version
    return Trace(request_id=request_id, spans=spans)


def _from_columns(columns) -> List[Trace]:
    arrival = columns.arrival_s
    finished = columns.finished_s
    qw_end = arrival + columns.queue_wait_s
    # Escalated requests: the fast leg ends (at the latest) when its
    # billed seconds elapse after the queue releases it; never past the
    # finish time.  Non-escalated requests end with the response.
    fast_end = np.where(
        columns.escalated,
        np.minimum(qw_end + columns.node_seconds_fast, finished),
        finished,
    )
    has_accurate = columns.node_seconds_accurate >= 0.0
    traces: List[Trace] = []
    for i in range(len(columns)):
        accurate = (
            float(columns.node_seconds_accurate[i])
            if bool(has_accurate[i]) and columns.accurate_version is not None
            else None
        )
        traces.append(
            _build_trace(
                request_id=columns.request_ids[i],
                payload=columns.payloads[i],
                tier=float(columns.tier[i]),
                arrival=float(arrival[i]),
                finished=float(finished[i]),
                queue_wait=float(columns.queue_wait_s[i]),
                escalated=bool(columns.escalated[i]),
                retries=int(columns.retries[i]),
                shed=bool(columns.shed[i]),
                failed=bool(columns.failed[i]),
                degraded=bool(columns.degraded[i]),
                retry_denied=bool(columns.retry_denied[i]),
                confidence=float(columns.confidence[i]),
                fast_version=columns.fast_version,
                fast_seconds=float(columns.node_seconds_fast[i]),
                fast_end=float(fast_end[i]),
                accurate_version=columns.accurate_version,
                accurate_seconds=accurate,
            )
        )
    return traces


def _from_record(record) -> Trace:
    fast_version = record.versions_used[0] if record.versions_used else None
    accurate_version = (
        record.versions_used[1] if len(record.versions_used) > 1 else None
    )
    fast_seconds = (
        record.node_seconds.get(fast_version) if fast_version else None
    )
    accurate_seconds = (
        record.node_seconds.get(accurate_version) if accurate_version else None
    )
    qw_end = record.arrival_s + record.queue_wait_s
    if record.escalated and fast_seconds is not None:
        fast_end = min(qw_end + fast_seconds, record.finished_s)
    else:
        fast_end = record.finished_s
    return _build_trace(
        request_id=record.request_id,
        payload=record.payload,
        tier=record.tier,
        arrival=record.arrival_s,
        finished=record.finished_s,
        queue_wait=record.queue_wait_s,
        escalated=record.escalated,
        retries=record.retries,
        shed=record.shed,
        failed=record.failed,
        degraded=record.degraded,
        retry_denied=record.retry_denied,
        confidence=record.confidence,
        fast_version=fast_version,
        fast_seconds=fast_seconds,
        fast_end=fast_end,
        accurate_version=accurate_version,
        accurate_seconds=accurate_seconds,
    )


#: Public single-record entry point: the synchronous gateway path uses
#: it to give sessions without a virtual clock the same coarse trees.
def trace_from_record(record) -> Trace:
    """Coarse span tree for one finished :class:`RequestRecord`."""
    return _from_record(record)


def traces_from_report(report) -> List[Trace]:
    """Rebuild coarse span trees for every request in a report.

    Takes the vectorized path when the report still holds its
    ``RecordColumns`` (columnar engine), the per-record path otherwise.
    Both produce identical traces for the same run.
    """
    records = report.records
    columns = getattr(records, "_columns", None)
    if columns is not None:
        return _from_columns(columns)
    return [_from_record(record) for record in records]
