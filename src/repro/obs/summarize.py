"""``python -m repro.obs.summarize`` — inspect recorded trace runs.

Three modes:

``summarize TRACE.jsonl``
    Load an exported trace run (digest-verified), print the run
    overview, the per-class critical-path table and the tail
    attribution ("where did p95 go").

``summarize --record SCENARIO --out TRACE.jsonl``
    Record a canonical or chaos scenario (toy measurement table) with
    a trace collector attached and export the run to JSONL.

``summarize --smoke``
    End-to-end determinism smoke: record the ``gray-failure`` chaos
    scenario, export → load → digest check, print the critical-path
    table, then replay the recorded arrival stream through
    ``TraceArrivals`` and verify the arrival times reproduce exactly.
    Exits non-zero on any mismatch; wired into the fast CI tier.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.obs.critical_path import (
    aggregate_breakdown,
    format_breakdown_table,
    tail_attribution,
)
from repro.obs.trace import TraceCollector

__all__ = ["main", "summarize_collector"]


def summarize_collector(
    collector: TraceCollector, *, percentile: float = 95.0
) -> str:
    """Human-readable summary of a loaded/recorded trace run."""
    lines = [
        f"traces:      {len(collector)}",
        f"run events:  {len(collector.run_events)}",
        f"digest:      {collector.digest()}",
        "",
        "critical path by request class (mean stage seconds):",
        format_breakdown_table(aggregate_breakdown(collector)),
    ]
    tail = tail_attribution(collector, percentile)
    if tail["n_tail"]:
        lines += [
            "",
            (
                f"tail (p{tail['percentile']:g} >= {tail['threshold_s']:.4f}s, "
                f"{tail['n_tail']}/{tail['n_total']} requests): "
                f"dominant stage '{tail['dominant']}' "
                f"({tail['dominant_share'] * 100.0:.1f}% of attributed seconds)"
            ),
        ]
    return "\n".join(lines)


def _record_scenario(name: str) -> TraceCollector:
    """Run one named toy scenario with a collector attached."""
    from repro.service.simulation.scenarios import (
        canonical_scenarios,
        chaos_scenarios,
        run_scenario,
        scenario_measurements,
    )

    scenarios = dict(canonical_scenarios())
    scenarios.update(chaos_scenarios())
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise SystemExit(f"unknown scenario {name!r}; known: {known}")
    collector = TraceCollector()
    run_scenario(scenarios[name], scenario_measurements(), trace=collector)
    return collector


def _smoke() -> int:
    """Record → export → load → summarize → replay round-trip."""
    import dataclasses

    from repro.service.simulation.scenarios import (
        chaos_scenarios,
        run_scenario,
        scenario_measurements,
    )

    spec = chaos_scenarios()["gray-failure"]
    measurements = scenario_measurements()
    collector = TraceCollector()
    run_scenario(spec, measurements, trace=collector)
    if not len(collector):
        print("smoke FAILED: no traces recorded", file=sys.stderr)
        return 1

    handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="trace-smoke-")
    os.close(handle)
    try:
        collector.export_jsonl(path)
        loaded = TraceCollector.load_jsonl(path)
    finally:
        os.unlink(path)
    if loaded.digest() != collector.digest():
        print("smoke FAILED: digest changed across JSONL round-trip",
              file=sys.stderr)
        return 1

    print(summarize_collector(loaded))

    # Replay: the recorded arrival stream, fed back as the workload,
    # must reproduce the original arrival times bit-for-bit.
    replay_spec = dataclasses.replace(spec, arrivals=loaded.to_arrivals())
    replay_collector = TraceCollector()
    run_scenario(replay_spec, measurements, trace=replay_collector)
    if replay_collector.arrival_times() != loaded.arrival_times():
        print("smoke FAILED: replayed arrival stream diverged",
              file=sys.stderr)
        return 1
    print("\nsmoke OK: JSONL round-trip digest stable, "
          f"replay reproduced {len(loaded)} arrival times")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize", description=__doc__
    )
    parser.add_argument("trace", nargs="?", help="trace-run JSONL file")
    parser.add_argument(
        "--record", metavar="SCENARIO",
        help="record a canonical/chaos scenario instead of loading a file",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="with --record: where to write the JSONL export",
    )
    parser.add_argument(
        "--percentile", type=float, default=95.0,
        help="tail percentile for attribution (default: 95)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the aggregate breakdown and tail attribution as JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="record→summarize→replay round-trip self-check (CI)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke()

    if args.record:
        collector = _record_scenario(args.record)
        if args.out:
            collector.export_jsonl(args.out)
            print(f"wrote {len(collector)} traces to {args.out}")
    elif args.trace:
        collector = TraceCollector.load_jsonl(args.trace)
    else:
        parser.error("provide a trace file, --record SCENARIO, or --smoke")
        return 2

    if args.json:
        print(
            json.dumps(
                {
                    "n_traces": len(collector),
                    "digest": collector.digest(),
                    "breakdown": aggregate_breakdown(collector),
                    "tail": tail_attribution(collector, args.percentile),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(summarize_collector(collector, percentile=args.percentile))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
