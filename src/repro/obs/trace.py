"""The span model: deterministic per-request trace trees.

A :class:`Trace` is one request's story — a root ``request`` span plus
child spans for every stage the request passed through (queue wait,
execution legs, escalation wait, retry backoff, failover hops), each
with virtual-clock timestamps and optional :class:`SpanEvent` markers
for faults and control actions.

Determinism contract
--------------------
Recording draws **nothing** from any RNG: trace ids are derived from
request ids by SHA-256, span ids from ``(request id, span index)``, and
every timestamp comes off the simulator's virtual clock.  Two runs of
the same seeded scenario therefore produce byte-identical JSONL exports
and the same :meth:`TraceCollector.digest`.

The one piece of state that is *not* digest-stable across processes is
node identity (``ServiceNode`` ids come from a process-global counter),
so span attributes named ``node`` are excluded from the digest — the
same exclusion the report digest applies to the fault log.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "SpanEvent",
    "Trace",
    "TraceCollector",
    "span_id_for",
    "trace_id_for",
]

#: Span attributes carrying process-local identity, excluded from the
#: trace digest (mirrors the fault-log ``node_id`` exclusion in
#: ``LoadTestReport.digest``).
_DIGEST_EXCLUDED_ATTRS = frozenset({"node"})


def trace_id_for(request_id: str) -> str:
    """Deterministic 16-hex trace id for a request id (no RNG)."""
    return hashlib.sha256(f"trace:{request_id}".encode()).hexdigest()[:16]


def span_id_for(request_id: str, index: int) -> str:
    """Deterministic 16-hex span id for span ``index`` of a request."""
    return hashlib.sha256(f"span:{request_id}:{index}".encode()).hexdigest()[
        :16
    ]


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time marker on a span (fault hit, control action)."""

    time_s: float
    name: str
    detail: str = ""


@dataclass
class Span:
    """One stage of a request's lifecycle on the virtual clock.

    Args:
        name: Stage name (``request``, ``queue-wait``, ``leg``,
            ``escalate-wait``, ``escalate``, ``retry-backoff``,
            ``failover-hop``).
        start_s: Stage start on the virtual clock.
        end_s: Stage end; equals ``start_s`` for instantaneous spans.
        status: ``ok``, ``failed``, ``shed``, ``cancelled`` or
            ``unserved``.
        attrs: Flat string/number attributes (``version``, ``leg``,
            ``attempt`` ...).  ``node`` is digest-excluded.
        events: Point markers attached to this stage.
    """

    name: str
    start_s: float
    end_s: float
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    span_id: str = ""
    parent_id: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }
        if self.events:
            payload["events"] = [
                {"time_s": e.time_s, "name": e.name, "detail": e.detail}
                for e in self.events
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            status=payload.get("status", "ok"),
            attrs=dict(payload.get("attrs", {})),
            events=[
                SpanEvent(
                    time_s=float(e["time_s"]),
                    name=e["name"],
                    detail=e.get("detail", ""),
                )
                for e in payload.get("events", ())
            ],
            span_id=payload.get("span_id", ""),
            parent_id=payload.get("parent_id"),
        )


def _fmt(value: object) -> str:
    """Digest-stable rendering: floats at 12 significant digits."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.12e}"
    return str(value)


@dataclass
class Trace:
    """One request's span tree: the root ``request`` span plus children.

    Spans are stored in creation order with the root first; children
    link to the root (or another span) through ``parent_id``.  Ids are
    assigned by :meth:`seal`, derived purely from the request id and
    the span's position — never from an RNG.
    """

    request_id: str
    spans: List[Span]
    trace_id: str = ""

    def __post_init__(self) -> None:
        if not self.trace_id:
            self.trace_id = trace_id_for(self.request_id)

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def outcome(self) -> str:
        return self.root.status

    @property
    def arrival_s(self) -> float:
        return self.root.start_s

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    def seal(self) -> "Trace":
        """Assign deterministic span ids and root parent links."""
        for index, span in enumerate(self.spans):
            span.span_id = span_id_for(self.request_id, index)
        root_id = self.spans[0].span_id
        for span in self.spans[1:]:
            if span.parent_id is None:
                span.parent_id = root_id
        self.spans[0].parent_id = None
        return self

    def digest_lines(self) -> Iterable[str]:
        """The digest-participating rendering of this trace."""
        for span in self.spans:
            attrs = ";".join(
                f"{key}={_fmt(value)}"
                for key, value in sorted(span.attrs.items())
                if key not in _DIGEST_EXCLUDED_ATTRS
            )
            events = ";".join(
                f"{_fmt(e.time_s)}:{e.name}:{e.detail}" for e in span.events
            )
            yield (
                f"{self.request_id}|{span.name}|{_fmt(span.start_s)}|"
                f"{_fmt(span.end_s)}|{span.status}|{attrs}|{events}\n"
            )

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        return cls(
            request_id=payload["request_id"],
            trace_id=payload.get("trace_id", ""),
            spans=[Span.from_dict(s) for s in payload["spans"]],
        )


class TraceCollector:
    """Accumulates traces and run-level events; the ``TraceSink``.

    Attach one to :func:`~repro.service.simulation.scenarios.run_scenario`
    (``trace=collector``), a
    :class:`~repro.service.gateway.simulated.SimulatedBackend`, or
    :func:`~repro.service.regions.runner.run_multi_region` and it fills
    with one :class:`Trace` per request, in completion order, plus the
    run's fault and control events as run-level markers.

    The collector is deliberately dumb — ordered storage, a stable
    digest, JSONL round-trip, counters for the metrics exporter, and
    the trace→:class:`~repro.service.simulation.arrivals.TraceArrivals`
    replay bridge.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []
        #: Run-level markers: ``(time_s, kind, detail, region)`` tuples
        #: covering the fault log and control log of the recorded run.
        self.run_events: List[Tuple[float, str, str, Optional[str]]] = []
        self._by_id: Dict[str, Trace] = {}
        #: Spans currently open in an attached live recorder; zero for
        #: post-hoc reconstructed or loaded collectors.
        self.spans_open: int = 0

    # ------------------------------------------------------------------
    # sink protocol
    # ------------------------------------------------------------------
    def add_trace(self, trace: Trace) -> None:
        trace.seal()
        self.traces.append(trace)
        self._by_id[trace.request_id] = trace

    def add_run_event(
        self,
        time_s: float,
        kind: str,
        detail: str = "",
        region: Optional[str] = None,
    ) -> None:
        self.run_events.append((float(time_s), kind, detail, region))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.traces)

    def trace_for(self, request_id: str) -> Optional[Trace]:
        """The trace recorded for ``request_id``, or ``None``."""
        return self._by_id.get(request_id)

    # ------------------------------------------------------------------
    # digest
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable SHA-256 over every span and run-level event.

        Covers span names, timestamps (12 significant digits), statuses,
        attributes (minus the process-local ``node``) and events, in
        completion order — the trace-layer analogue of
        ``LoadTestReport.digest``.
        """
        h = hashlib.sha256()
        for trace in self.traces:
            for line in trace.digest_lines():
                h.update(line.encode())
        for time_s, kind, detail, region in self.run_events:
            region_part = region or ""
            h.update(
                f"event:{_fmt(time_s)}|{kind}|{detail}|{region_part}\n".encode()
            )
        return h.hexdigest()

    # ------------------------------------------------------------------
    # counters (metrics-exporter source)
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Trace-derived counters in ``MetricsExporter`` source shape."""
        outcomes: Dict[str, int] = {}
        n_spans = 0
        for trace in self.traces:
            n_spans += len(trace.spans)
            outcomes[trace.outcome] = outcomes.get(trace.outcome, 0) + 1
        counters = {
            "trace.spans_open": float(self.spans_open),
            "trace.spans_completed": float(n_spans),
            "trace.requests_total": float(len(self.traces)),
        }
        for outcome, count in sorted(outcomes.items()):
            counters[f"trace.outcome.{outcome}"] = float(count)
        return counters

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------
    def export_jsonl(self, path) -> None:
        """Write the run: one meta line, then one JSON line per trace."""
        with open(path, "w", encoding="utf-8") as handle:
            meta = {
                "kind": "trace-run",
                "n_traces": len(self.traces),
                "digest": self.digest(),
                "run_events": [
                    {
                        "time_s": t,
                        "kind": kind,
                        "detail": detail,
                        "region": region,
                    }
                    for t, kind, detail, region in self.run_events
                ],
            }
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for trace in self.traces:
                handle.write(json.dumps(trace.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "TraceCollector":
        """Load a collector back from :meth:`export_jsonl` output.

        The embedded digest is re-verified so a truncated or edited
        file cannot silently masquerade as the recorded run.
        """
        collector = cls()
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if header.get("kind") != "trace-run":
                raise ValueError("not a trace-run JSONL file (bad header)")
            for event in header.get("run_events", ()):
                collector.add_run_event(
                    event["time_s"],
                    event["kind"],
                    event.get("detail", ""),
                    event.get("region"),
                )
            for line in handle:
                if not line.strip():
                    continue
                collector.add_trace(Trace.from_dict(json.loads(line)))
        expected = header.get("digest")
        if expected is not None and collector.digest() != expected:
            raise ValueError(
                "trace file digest mismatch: the file was truncated or "
                "edited after export"
            )
        return collector

    # ------------------------------------------------------------------
    # replay bridge
    # ------------------------------------------------------------------
    def arrival_times(self) -> List[float]:
        """Recorded arrival timestamps, ascending."""
        return sorted(trace.arrival_s for trace in self.traces)

    def to_arrivals(self):
        """The recorded arrival stream as a replayable ``TraceArrivals``.

        Any recorded run — including one captured under chaos faults —
        becomes a workload: feed the result to ``ServingSimulator.run``
        or a scenario spec and the original arrival stream is
        reproduced exactly.
        """
        from repro.service.simulation.arrivals import TraceArrivals

        return TraceArrivals(self.arrival_times())
