"""Deterministic per-request observability for the serving stack.

``repro.obs`` adds the span layer the aggregate telemetry cannot
provide: one span tree per request — ``submit → queue-wait → leg →
escalate → retry/backoff → failover-hop → complete|failed|shed`` — on
the simulator's virtual clock, with trace and span ids derived from
request ids (zero RNG draws) so a recorded run is bit-reproducible.

The subsystem is strictly opt-in: with no collector attached the
engines take the exact code paths they took before (every golden,
chaos and region digest is bit-identical), and with one attached the
*report* digests are still unchanged — the trace gets its own stable
digest, pinned by its own goldens.

Modules:

- :mod:`repro.obs.trace` — span model, :class:`TraceCollector`
  (JSONL export/load, stable digest, ``TraceArrivals`` round-trip).
- :mod:`repro.obs.record` — :class:`SimTraceRecorder`, the live
  per-event instrumentation the legacy engine drives.
- :mod:`repro.obs.reconstruct` — vectorized post-hoc span
  reconstruction from the columnar engine's ``RecordColumns``.
- :mod:`repro.obs.critical_path` — per-request stage breakdown and
  aggregate "where did p95 go" attribution tables.
- :mod:`repro.obs.log` — rate-limited, seed-safe structured logging
  (silent by default).
- :mod:`repro.obs.summarize` — ``python -m repro.obs.summarize`` CLI.
"""

from repro.obs.critical_path import (
    aggregate_breakdown,
    breakdown,
    format_breakdown_table,
    request_class,
    tail_attribution,
)
from repro.obs.record import SimTraceRecorder
from repro.obs.reconstruct import trace_from_record, traces_from_report
from repro.obs.trace import Span, SpanEvent, Trace, TraceCollector

__all__ = [
    "SimTraceRecorder",
    "Span",
    "SpanEvent",
    "Trace",
    "TraceCollector",
    "aggregate_breakdown",
    "breakdown",
    "format_breakdown_table",
    "request_class",
    "tail_attribution",
    "trace_from_record",
    "traces_from_report",
]
