"""Rate-limited, seed-safe structured logging for the serving stack.

Every logger lives under the ``repro`` namespace and is **silent by
default**: the namespace root carries a :class:`logging.NullHandler`
(so stdlib's last-resort stderr handler never fires) and inherits the
root logger's WARNING threshold (so the ``info``/``debug`` calls
sprinkled through hot-ish paths are cheap no-ops).  Call
:func:`enable` to see output; tests can use pytest's ``caplog`` as
usual because records still propagate.

Seed-safety: rate limiting is **count-based** — the first ``first``
occurrences of a message template pass, then every ``every``-th — so
logging never reads the wall clock or any RNG and can never perturb a
simulation's determinism.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

__all__ = [
    "RateLimitedLogger",
    "disable",
    "enable",
    "get_logger",
    "get_rate_limited",
]

_NAMESPACE = "repro"

# Installed once at import: guarantees silence (and no lastResort
# stderr spill) when the host application never configures logging.
logging.getLogger(_NAMESPACE).addHandler(logging.NullHandler())

_enabled_handler: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """A stdlib logger under the ``repro`` namespace.

    ``get_logger("service.gateway")`` → ``repro.service.gateway``.
    """
    if name.startswith(_NAMESPACE + ".") or name == _NAMESPACE:
        return logging.getLogger(name)
    return logging.getLogger(f"{_NAMESPACE}.{name}")


class RateLimitedLogger:
    """A logger wrapper that count-limits per message template.

    The *template* (the unformatted format string) is the rate-limit
    key, so ``log.info("fallback: %s", reason)`` with a thousand
    different reasons still collapses to ``first`` + every
    ``every``-th line.  When a suppressed template passes again, the
    line is annotated with how many occurrences were dropped.
    """

    def __init__(
        self,
        logger: logging.Logger,
        *,
        first: int = 5,
        every: int = 100,
    ) -> None:
        self.logger = logger
        self.first = first
        self.every = every
        self._counts: Dict[str, int] = {}

    def _admit(self, template: str) -> Optional[int]:
        """Occurrence count if this line should be emitted, else None."""
        count = self._counts.get(template, 0) + 1
        self._counts[template] = count
        if count <= self.first:
            return count
        if self.every > 0 and count % self.every == 0:
            return count
        return None

    def _log(self, level: int, template: str, *args: object) -> None:
        if not self.logger.isEnabledFor(level):
            return
        count = self._admit(template)
        if count is None:
            return
        if count > self.first:
            template += " [%d occurrences, rate-limited]"
            args = args + (count,)
        self.logger.log(level, template, *args)

    def debug(self, template: str, *args: object) -> None:
        self._log(logging.DEBUG, template, *args)

    def info(self, template: str, *args: object) -> None:
        self._log(logging.INFO, template, *args)

    def warning(self, template: str, *args: object) -> None:
        self._log(logging.WARNING, template, *args)

    def error(self, template: str, *args: object) -> None:
        self._log(logging.ERROR, template, *args)

    def reset(self) -> None:
        """Forget all counts (a new run starts from a clean budget)."""
        self._counts.clear()


def get_rate_limited(
    name: str, *, first: int = 5, every: int = 100
) -> RateLimitedLogger:
    """A :class:`RateLimitedLogger` for ``repro.<name>``."""
    return RateLimitedLogger(get_logger(name), first=first, every=every)


def enable(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` namespace.

    Idempotent: calling again replaces the previous handler (and
    adopts the new level).  Returns the installed handler.
    """
    global _enabled_handler
    root = logging.getLogger(_NAMESPACE)
    if _enabled_handler is not None:
        root.removeHandler(_enabled_handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
    _enabled_handler = handler
    return handler


def disable() -> None:
    """Undo :func:`enable`: back to silent-by-default."""
    global _enabled_handler
    root = logging.getLogger(_NAMESPACE)
    if _enabled_handler is not None:
        root.removeHandler(_enabled_handler)
        _enabled_handler = None
    root.setLevel(logging.NOTSET)
