"""Live per-event trace recording for the legacy engine.

:class:`SimTraceRecorder` is the object the
:class:`~repro.service.simulation.engine.ServingSimulator` drives when a
trace collector is attached: the engine calls its narrow hook methods
(duck-typed, mirroring how the control plane is wired — the engine
imports nothing from this package) at arrival, enqueue, completion,
failure, retry, escalation and finalize time, and the recorder
assembles one :class:`~repro.obs.trace.Trace` per request as it
finalizes.

The recorder draws **nothing** from any RNG and never mutates engine
state — attaching one cannot change a report digest.  When the
columnar engine drains a run, the engine instead hands the finished
report to :meth:`on_columnar_report`, which delegates to the
vectorized post-hoc reconstruction in :mod:`repro.obs.reconstruct`
(the hot path stays hook-free).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.reconstruct import traces_from_report
from repro.obs.trace import Span, SpanEvent, Trace, TraceCollector

__all__ = ["SimTraceRecorder"]


class _Attempt:
    """Staging for one job attempt of one leg."""

    __slots__ = (
        "version",
        "leg",
        "attempt",
        "enqueued_at",
        "started_at",
        "finished_at",
        "status",
        "seconds",
        "batch_size",
        "node",
        "events",
    )

    def __init__(
        self, version: str, leg: str, attempt: int, enqueued_at: float
    ) -> None:
        self.version = version
        self.leg = leg
        self.attempt = attempt
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.status = "open"
        self.seconds: Optional[float] = None
        self.batch_size: Optional[int] = None
        self.node: Optional[str] = None
        self.events: List[SpanEvent] = []


class _Staging:
    """Everything recorded about one in-flight request."""

    __slots__ = ("arrival", "epoch", "events", "attempts", "retries")

    def __init__(self, arrival: float, epoch: int) -> None:
        self.arrival = arrival
        self.epoch = epoch
        #: Root-span events (admission actions, deflated answers, faults).
        self.events: List[SpanEvent] = []
        self.attempts: List[_Attempt] = []
        #: Retry backoffs: ``(version, attempt, scheduled_at, release_at)``.
        self.retries: List[Tuple[str, int, float, float]] = []


class SimTraceRecorder:
    """Assembles span trees from the legacy engine's event stream.

    Args:
        collector: The :class:`~repro.obs.trace.TraceCollector` finished
            traces are appended to, in completion order.
        fast_version_of: Unused hook point kept deliberately absent —
            the recorder learns leg roles from the engine's calls.
    """

    def __init__(self, collector: TraceCollector) -> None:
        self.collector = collector
        self._staging: Dict[str, _Staging] = {}
        #: Hot-swap epoch counter: bumped per applied configuration swap,
        #: stamped on requests that arrive afterwards.
        self._epoch = 0
        #: Failover annotations keyed by request id:
        #: ``(home_region, served_region, extra_latency_s)``.
        self._failover: Dict[str, Tuple[str, str, float]] = {}

    # ------------------------------------------------------------------
    # region-runner annotations
    # ------------------------------------------------------------------
    def annotate_failover(
        self,
        request_id: str,
        *,
        home: str,
        served: str,
        extra_latency_s: float,
    ) -> None:
        """Mark a request as failover traffic before the run starts."""
        self._failover[request_id] = (home, served, float(extra_latency_s))

    # ------------------------------------------------------------------
    # engine hooks (legacy event loop)
    # ------------------------------------------------------------------
    def on_arrival(self, request_id: str, now: float) -> None:
        self._staging[request_id] = _Staging(now, self._epoch)
        self.collector.spans_open += 1

    def on_admission(
        self, request_id: str, action: str, detail: str, now: float
    ) -> None:
        staging = self._staging.get(request_id)
        event = SpanEvent(now, f"admission-{action}", detail)
        if staging is not None:
            staging.events.append(event)

    def on_attempt(
        self,
        request_id: str,
        version: str,
        leg: str,
        attempt: int,
        now: float,
        *,
        parked: bool,
    ) -> None:
        staging = self._staging.get(request_id)
        if staging is None:
            return
        record = _Attempt(version, leg, attempt, now)
        if parked:
            record.events.append(
                SpanEvent(now, "parked", "no live node in pool")
            )
        staging.attempts.append(record)

    def _open_attempt(
        self, request_id: str, version: str
    ) -> Optional[_Attempt]:
        staging = self._staging.get(request_id)
        if staging is None:
            return None
        for record in reversed(staging.attempts):
            if record.version == version and record.status == "open":
                return record
        return None

    def on_attempt_done(
        self,
        request_id: str,
        version: str,
        completion,
        node_id: Optional[str],
    ) -> None:
        record = self._open_attempt(request_id, version)
        if record is None:
            return
        record.started_at = completion.started_at
        record.finished_at = completion.finished_at
        record.seconds = completion.amortized_seconds
        record.batch_size = completion.batch_size
        record.node = node_id
        record.status = "ok"

    def on_attempt_failed(
        self,
        request_id: str,
        version: str,
        now: float,
        reason: str,
    ) -> None:
        record = self._open_attempt(request_id, version)
        if record is None:
            return
        record.finished_at = now
        record.status = "failed"
        record.events.append(SpanEvent(now, "fault", reason))

    def on_retry_wait(
        self,
        request_id: str,
        version: str,
        attempt: int,
        now: float,
        delay: float,
    ) -> None:
        staging = self._staging.get(request_id)
        if staging is not None:
            staging.retries.append((version, attempt, now, now + delay))

    def on_retry_denied(
        self, request_id: str, version: str, now: float
    ) -> None:
        staging = self._staging.get(request_id)
        if staging is not None:
            staging.events.append(
                SpanEvent(now, "retry-denied", f"budget denied {version}")
            )

    def on_escalated(self, request_id: str, now: float) -> None:
        staging = self._staging.get(request_id)
        if staging is not None:
            staging.events.append(SpanEvent(now, "escalated", ""))

    def on_migrated(
        self, request_id: str, version: str, now: float, *, parked: bool
    ) -> None:
        record = self._open_attempt(request_id, version)
        if record is not None:
            record.events.append(
                SpanEvent(
                    now,
                    "crash-migrated",
                    "parked behind dead pool" if parked else "requeued",
                )
            )

    def on_deflated(
        self, request_id: str, node_id: Optional[str], factor: float, now: float
    ) -> None:
        staging = self._staging.get(request_id)
        if staging is not None:
            staging.events.append(
                SpanEvent(
                    now, "confidence-deflated", f"factor x{factor:g}"
                )
            )

    def on_epoch(self, now: float, config_id: str) -> None:
        self._epoch += 1
        self.collector.add_run_event(
            now, "control:hot-swap", f"epoch {self._epoch}: {config_id}"
        )

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def on_finalized(self, record, now: float) -> None:
        """Build and emit the request's trace from its final record."""
        staging = self._staging.pop(record.request_id, None)
        if staging is not None:
            self.collector.spans_open -= 1
        trace = self._build(record, staging)
        self.collector.add_trace(trace)

    def _build(self, record, staging: Optional[_Staging]) -> Trace:
        if record.shed:
            status = "shed"
        elif record.failed:
            status = "failed"
        else:
            status = "ok"
        arrival = record.arrival_s
        root = Span(
            name="request",
            start_s=arrival,
            end_s=record.finished_s,
            status=status,
            attrs={
                "tier": float(record.tier),
                "payload": str(record.payload),
                "escalated": bool(record.escalated),
                "retries": int(record.retries),
            },
        )
        if record.degraded:
            root.attrs["degraded"] = True
        if record.retry_denied:
            root.attrs["retry_denied"] = True
        if record.confidence is not None:
            root.attrs["confidence"] = float(record.confidence)
        if staging is not None and staging.epoch:
            root.attrs["epoch"] = staging.epoch
        spans: List[Span] = []
        if not record.shed:
            spans.append(
                Span(
                    name="queue-wait",
                    start_s=arrival,
                    end_s=arrival + record.queue_wait_s,
                )
            )
        failover = self._failover.get(record.request_id)
        if failover is not None:
            home, served, extra = failover
            root.attrs["home_region"] = home
            root.attrs["served_region"] = served
            spans.append(
                Span(
                    name="failover-hop",
                    start_s=arrival,
                    end_s=arrival,
                    attrs={
                        "home": home,
                        "target": served,
                        "extra_latency_s": extra,
                    },
                )
            )
        if staging is not None:
            root.events.extend(staging.events)
            end = record.finished_s
            for attempt in staging.attempts:
                leg_end = (
                    attempt.finished_at
                    if attempt.finished_at is not None
                    else end
                )
                leg_status = (
                    "cancelled" if attempt.status == "open" else attempt.status
                )
                leg_start = (
                    attempt.started_at
                    if attempt.started_at is not None
                    else attempt.enqueued_at
                )
                if (
                    attempt.leg == "accurate"
                    and attempt.started_at is not None
                    and attempt.started_at > attempt.enqueued_at
                ):
                    spans.append(
                        Span(
                            name="escalate-wait",
                            start_s=attempt.enqueued_at,
                            end_s=attempt.started_at,
                            attrs={"version": attempt.version},
                        )
                    )
                leg = Span(
                    name="leg",
                    start_s=leg_start,
                    end_s=leg_end,
                    status=leg_status,
                    attrs={
                        "version": attempt.version,
                        "leg": attempt.leg,
                        "attempt": attempt.attempt,
                    },
                    events=attempt.events,
                )
                if attempt.seconds is not None:
                    leg.attrs["seconds"] = float(attempt.seconds)
                if attempt.batch_size is not None:
                    leg.attrs["batch_size"] = int(attempt.batch_size)
                if attempt.node is not None:
                    leg.attrs["node"] = attempt.node
                spans.append(leg)
            for version, attempt_no, scheduled, release in staging.retries:
                spans.append(
                    Span(
                        name="retry-backoff",
                        start_s=scheduled,
                        end_s=release,
                        attrs={"version": version, "attempt": attempt_no},
                    )
                )
        # Chronological, stable: creation order breaks start-time ties.
        spans.sort(key=lambda span: span.start_s)
        return Trace(request_id=record.request_id, spans=[root] + spans)

    # ------------------------------------------------------------------
    # run-level wiring
    # ------------------------------------------------------------------
    def on_columnar_report(self, report) -> None:
        """Post-hoc reconstruction for a columnar-drained run."""
        for trace in traces_from_report(report):
            if trace.request_id in self._failover:
                home, served, extra = self._failover[trace.request_id]
                trace.root.attrs["home_region"] = home
                trace.root.attrs["served_region"] = served
                trace.spans.append(
                    Span(
                        name="failover-hop",
                        start_s=trace.root.start_s,
                        end_s=trace.root.start_s,
                        attrs={
                            "home": home,
                            "target": served,
                            "extra_latency_s": extra,
                        },
                    )
                )
            self.collector.add_trace(trace)

    def on_run_complete(self, fault_log, control_log) -> None:
        """Fold the run's fault and control logs into run-level events.

        ``node_id`` is deliberately dropped from fault entries (it is
        process-local, the same exclusion the report digest applies);
        control entries keep their region tag when the shard runner set
        one.
        """
        for entry in fault_log:
            self.collector.add_run_event(
                entry.time_s,
                f"fault:{entry.kind}",
                f"{entry.version}: {entry.detail}",
            )
        for entry in control_log:
            self.collector.add_run_event(
                entry.time_s,
                f"control:{entry.kind}",
                entry.detail,
                getattr(entry, "region", None),
            )
