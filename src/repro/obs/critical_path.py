"""Critical-path analysis over recorded traces.

Answers the question the paper's tier-escalation design raises for
every slow request: *where did the time go* — queueing, the fast leg,
the escalation wait, the accurate leg, a retry backoff, or a
cross-region failover hop?

:func:`breakdown` attributes one request's stage seconds;
:func:`aggregate_breakdown` groups requests into classes (fast,
escalated, retried, failed, shed, failover) and averages the stages per
class; :func:`tail_attribution` restricts to the latency tail and names
the dominant stage — the "where did p95 go" table.

Stage seconds are *billed/occupied* time per stage, not a partition of
wall clock: concurrent-ensemble legs overlap, so a request's stage
seconds can legitimately sum past its duration.  The dominant stage is
still the right lever — it is where serving capacity or waiting was
actually spent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span, Trace

__all__ = [
    "aggregate_breakdown",
    "breakdown",
    "format_breakdown_table",
    "request_class",
    "tail_attribution",
]

#: Display order for stage columns; unknown stages sort after these.
_STAGE_ORDER = (
    "queue-wait",
    "leg-fast",
    "escalate-wait",
    "leg-accurate",
    "retry-backoff",
    "failover-hop",
)


def _stage_of(span: Span) -> Optional[Tuple[str, float]]:
    """Map a span to ``(stage name, attributed seconds)``; None for roots."""
    if span.name == "queue-wait":
        return ("queue-wait", span.duration_s)
    if span.name == "leg":
        return (f"leg-{span.attrs.get('leg', 'fast')}", span.duration_s)
    if span.name == "escalate":
        return ("leg-accurate", span.duration_s)
    if span.name == "escalate-wait":
        return ("escalate-wait", span.duration_s)
    if span.name == "retry-backoff":
        return ("retry-backoff", span.duration_s)
    if span.name == "failover-hop":
        return (
            "failover-hop",
            float(span.attrs.get("extra_latency_s", 0.0)),
        )
    return None


def breakdown(trace: Trace) -> Dict[str, float]:
    """Stage seconds for one request, keyed by stage name."""
    stages: Dict[str, float] = {}
    for span in trace.spans[1:]:
        attributed = _stage_of(span)
        if attributed is None:
            continue
        name, seconds = attributed
        stages[name] = stages.get(name, 0.0) + seconds
    return stages


def request_class(trace: Trace) -> str:
    """Deterministic request class for grouping.

    ``shed`` and ``failed`` trump shape; answered requests split into
    ``escalated`` vs ``fast``; a served failover hop prefixes
    ``failover:`` and re-driven attempts append ``+retry``.
    """
    root = trace.root
    if root.status == "shed":
        return "shed"
    if root.status == "failed":
        base = "failed"
    elif root.attrs.get("escalated"):
        base = "escalated"
    else:
        base = "fast"
    if int(root.attrs.get("retries", 0) or 0) > 0:
        base += "+retry"
    if "home_region" in root.attrs:
        base = f"failover:{base}"
    return base


def _sorted_stages(stages: Iterable[str]) -> List[str]:
    order = {name: i for i, name in enumerate(_STAGE_ORDER)}
    return sorted(stages, key=lambda s: (order.get(s, len(order)), s))


def _dominant(stages: Dict[str, float]) -> Optional[str]:
    if not stages:
        return None
    # Ties break on canonical stage order, so the result is stable.
    return max(_sorted_stages(stages), key=lambda name: stages[name])


def aggregate_breakdown(traces) -> Dict[str, dict]:
    """Per-class mean stage seconds over a run.

    Accepts a :class:`~repro.obs.trace.TraceCollector` or any iterable
    of traces.  Returns ``{class: {count, mean_duration_s,
    stages: {stage: mean seconds}, dominant}}`` with classes sorted by
    descending count.
    """
    items = getattr(traces, "traces", traces)
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    durations: Dict[str, float] = {}
    for trace in items:
        cls = request_class(trace)
        counts[cls] = counts.get(cls, 0) + 1
        durations[cls] = durations.get(cls, 0.0) + trace.duration_s
        bucket = sums.setdefault(cls, {})
        for stage, seconds in breakdown(trace).items():
            bucket[stage] = bucket.get(stage, 0.0) + seconds
    result: Dict[str, dict] = {}
    for cls in sorted(counts, key=lambda c: (-counts[c], c)):
        n = counts[cls]
        stages = {
            stage: total / n for stage, total in sorted(sums[cls].items())
        }
        result[cls] = {
            "count": n,
            "mean_duration_s": durations[cls] / n,
            "stages": stages,
            "dominant": _dominant(stages),
        }
    return result


def tail_attribution(traces, percentile: float = 95.0) -> dict:
    """Where the latency tail went: mean stage seconds above the
    ``percentile``-th duration, with the dominant stage named.

    Shed requests never entered service and are excluded.  Returns
    ``{percentile, threshold_s, n_tail, n_total, stages, dominant,
    dominant_share}``.
    """
    items = [
        t
        for t in getattr(traces, "traces", traces)
        if t.root.status != "shed"
    ]
    if not items:
        return {
            "percentile": percentile,
            "threshold_s": 0.0,
            "n_tail": 0,
            "n_total": 0,
            "stages": {},
            "dominant": None,
            "dominant_share": 0.0,
        }
    durations = sorted(t.duration_s for t in items)
    rank = min(
        len(durations) - 1,
        max(0, int(round(percentile / 100.0 * (len(durations) - 1)))),
    )
    threshold = durations[rank]
    tail = [t for t in items if t.duration_s >= threshold]
    sums: Dict[str, float] = {}
    for trace in tail:
        for stage, seconds in breakdown(trace).items():
            sums[stage] = sums.get(stage, 0.0) + seconds
    stages = {stage: total / len(tail) for stage, total in sorted(sums.items())}
    dominant = _dominant(stages)
    total = sum(stages.values())
    return {
        "percentile": percentile,
        "threshold_s": threshold,
        "n_tail": len(tail),
        "n_total": len(items),
        "stages": stages,
        "dominant": dominant,
        "dominant_share": (stages[dominant] / total) if dominant and total else 0.0,
    }


def format_breakdown_table(aggregate: Dict[str, dict]) -> str:
    """Render :func:`aggregate_breakdown` output as an aligned table."""
    stage_names = _sorted_stages(
        {stage for info in aggregate.values() for stage in info["stages"]}
    )
    header = ["class", "count", "mean_s"] + stage_names + ["dominant"]
    rows: List[List[str]] = [header]
    for cls, info in aggregate.items():
        row = [cls, str(info["count"]), f"{info['mean_duration_s']:.4f}"]
        for stage in stage_names:
            seconds = info["stages"].get(stage)
            row.append("-" if seconds is None else f"{seconds:.4f}")
        row.append(info["dominant"] or "-")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
