"""Miniature model zoo.

The paper serves five ImageNet-scale CNNs (SqueezeNet, AlexNet, GoogLeNet,
ResNet-50, VGG-16).  Training those from scratch is out of scope offline, so
the zoo provides *miniature architectural analogues* sized for the synthetic
image dataset: each keeps the defining structural idea of its namesake
(squeeze/expand bottlenecks, a plain stack of large dense layers, parallel
branches approximated by wider convolutions, residual connections, deep
homogeneous 3x3 stacks) at a scale that trains in seconds with the NumPy
trainer.  Capacity — and therefore both accuracy and FLOPs — increases from
``mini_squeezenet`` to ``mini_vgg``, reproducing the accuracy-latency
ordering of the real networks.

For paper-scale experiments the calibrated profiles in
:mod:`repro.vision.profiles` are used instead; the zoo exists so the actual
inference/training code path is exercised end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.vision.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Residual,
)
from repro.vision.network import NeuralNetwork

__all__ = ["MINI_MODEL_BUILDERS", "build_mini_model"]

_Builder = Callable[[Tuple[int, int, int], int, np.random.Generator], NeuralNetwork]


def _mini_squeezenet(
    input_shape: Tuple[int, int, int], n_classes: int, rng: np.random.Generator
) -> NeuralNetwork:
    """Tiny squeeze/expand network — the fastest, least accurate version."""
    channels = input_shape[0]
    return NeuralNetwork(
        "mini_squeezenet",
        [
            Conv2D(channels, 8, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 4, 1, rng=rng),   # squeeze
            ReLU(),
            Conv2D(4, 12, 3, rng=rng),  # expand
            ReLU(),
            GlobalAveragePool(),
            Dense(12, n_classes, rng=rng),
        ],
        input_shape,
    )


def _mini_alexnet(
    input_shape: Tuple[int, int, int], n_classes: int, rng: np.random.Generator
) -> NeuralNetwork:
    """Small conv stack followed by wide dense layers."""
    channels, height, width = input_shape
    flat = 16 * (height // 4) * (width // 4)
    return NeuralNetwork(
        "mini_alexnet",
        [
            Conv2D(channels, 12, 5, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(12, 16, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(flat, 48, rng=rng),
            ReLU(),
            Dense(48, n_classes, rng=rng),
        ],
        input_shape,
    )


def _mini_googlenet(
    input_shape: Tuple[int, int, int], n_classes: int, rng: np.random.Generator
) -> NeuralNetwork:
    """Wider multi-stage network standing in for the Inception family."""
    channels = input_shape[0]
    return NeuralNetwork(
        "mini_googlenet",
        [
            Conv2D(channels, 16, 3, rng=rng),
            ReLU(),
            Conv2D(16, 24, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(24, 32, 3, rng=rng),
            ReLU(),
            Conv2D(32, 32, 1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            GlobalAveragePool(),
            Dense(32, n_classes, rng=rng),
        ],
        input_shape,
    )


def _mini_resnet(
    input_shape: Tuple[int, int, int], n_classes: int, rng: np.random.Generator
) -> NeuralNetwork:
    """Residual network with two identity blocks."""
    channels = input_shape[0]
    return NeuralNetwork(
        "mini_resnet",
        [
            Conv2D(channels, 24, 3, rng=rng),
            ReLU(),
            Residual([Conv2D(24, 24, 3, rng=rng), ReLU(), Conv2D(24, 24, 3, rng=rng)]),
            MaxPool2D(2),
            Residual([Conv2D(24, 24, 3, rng=rng), ReLU(), Conv2D(24, 24, 3, rng=rng)]),
            MaxPool2D(2),
            GlobalAveragePool(),
            Dense(24, n_classes, rng=rng),
        ],
        input_shape,
    )


def _mini_vgg(
    input_shape: Tuple[int, int, int], n_classes: int, rng: np.random.Generator
) -> NeuralNetwork:
    """Deep homogeneous 3x3 stack — the slowest, most accurate version."""
    channels, height, width = input_shape
    flat = 48 * (height // 4) * (width // 4)
    return NeuralNetwork(
        "mini_vgg",
        [
            Conv2D(channels, 24, 3, rng=rng),
            ReLU(),
            Conv2D(24, 24, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(24, 48, 3, rng=rng),
            ReLU(),
            Conv2D(48, 48, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(flat, 64, rng=rng),
            ReLU(),
            Dense(64, n_classes, rng=rng),
        ],
        input_shape,
    )


#: Builders for the miniature analogues of the paper's five networks,
#: ordered fastest (least accurate) to slowest (most accurate).
MINI_MODEL_BUILDERS: Dict[str, _Builder] = {
    "mini_squeezenet": _mini_squeezenet,
    "mini_alexnet": _mini_alexnet,
    "mini_googlenet": _mini_googlenet,
    "mini_resnet": _mini_resnet,
    "mini_vgg": _mini_vgg,
}


def build_mini_model(
    name: str,
    input_shape: Tuple[int, int, int],
    n_classes: int,
    *,
    seed: int = 0,
) -> NeuralNetwork:
    """Build a miniature model by name.

    Args:
        name: One of :data:`MINI_MODEL_BUILDERS`.
        input_shape: Channels-first input shape, e.g. ``(1, 16, 16)``.
        n_classes: Number of output classes.
        seed: Weight-initialisation seed.

    Raises:
        KeyError: If the name is unknown.
    """
    try:
        builder = MINI_MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; expected one of {sorted(MINI_MODEL_BUILDERS)}"
        ) from None
    return builder(tuple(input_shape), n_classes, np.random.default_rng(seed))
