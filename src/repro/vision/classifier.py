"""Service-facing image classifier.

:class:`ImageClassifier` wraps a :class:`~repro.vision.network.NeuralNetwork`
behind the same shape of interface the ASR engine exposes: classify one
request, report the prediction, a confidence, the correctness against the
label, and a deterministic modelled latency derived from the network's FLOP
count and the host device's throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.vision.network import NeuralNetwork

__all__ = ["ClassificationResult", "ImageClassifier"]


@dataclass(frozen=True)
class ClassificationResult:
    """Everything a service version reports for one classification request.

    Attributes:
        request_id: Identifier of the classified image.
        model_name: Name of the network that produced the prediction.
        predicted_class: Arg-max class id.
        true_class: Ground-truth class id.
        confidence: Arg-max softmax probability in ``[0, 1]``.
        top1_error: 0.0 if the prediction is correct, 1.0 otherwise (the
            paper's per-request accuracy metric).
        latency_s: Modelled single-node processing latency in seconds.
    """

    request_id: str
    model_name: str
    predicted_class: int
    true_class: int
    confidence: float
    top1_error: float
    latency_s: float

    @property
    def is_correct(self) -> bool:
        """Whether the arg-max class matches the label."""
        return self.top1_error == 0.0


class ImageClassifier:
    """Wraps a NumPy network as an image-classification service version.

    Args:
        network: The trained (or untrained) network to serve.
        device_gflops: Sustained throughput of the host device in GFLOP/s;
            converts the network's analytical FLOP count into latency.
        fixed_overhead_s: Fixed per-request overhead (pre/post-processing).
    """

    def __init__(
        self,
        network: NeuralNetwork,
        *,
        device_gflops: float = 2.0,
        fixed_overhead_s: float = 2e-3,
    ) -> None:
        if device_gflops <= 0.0:
            raise ValueError("device_gflops must be positive")
        if fixed_overhead_s < 0.0:
            raise ValueError("fixed_overhead_s must be non-negative")
        self.network = network
        self.device_gflops = device_gflops
        self.fixed_overhead_s = fixed_overhead_s

    @property
    def latency_per_request(self) -> float:
        """Deterministic modelled latency of one classification."""
        return self.network.flops() / (self.device_gflops * 1e9) + self.fixed_overhead_s

    def classify(
        self, image: np.ndarray, label: int, *, request_id: str = "img"
    ) -> ClassificationResult:
        """Classify one image and report the outcome.

        Args:
            image: A single image of the network's input shape.
            label: Ground-truth class id (used only to report correctness).
            request_id: Identifier recorded in the result.
        """
        proba = self.network.predict_proba(image[None])[0]
        predicted = int(np.argmax(proba))
        return ClassificationResult(
            request_id=request_id,
            model_name=self.network.name,
            predicted_class=predicted,
            true_class=int(label),
            confidence=float(proba[predicted]),
            top1_error=0.0 if predicted == int(label) else 1.0,
            latency_s=self.latency_per_request,
        )

    def classify_batch(
        self,
        images: np.ndarray,
        labels: Sequence[int],
        *,
        request_ids: Sequence[str] | None = None,
    ) -> Tuple[ClassificationResult, ...]:
        """Classify a batch of images, one result per image."""
        labels = list(labels)
        if images.shape[0] != len(labels):
            raise ValueError("images and labels disagree on the sample count")
        if request_ids is None:
            request_ids = [f"img_{i:06d}" for i in range(len(labels))]
        proba = self.network.predict_proba(images)
        results = []
        for i, (label, request_id) in enumerate(zip(labels, request_ids)):
            predicted = int(np.argmax(proba[i]))
            results.append(
                ClassificationResult(
                    request_id=request_id,
                    model_name=self.network.name,
                    predicted_class=predicted,
                    true_class=int(label),
                    confidence=float(proba[i, predicted]),
                    top1_error=0.0 if predicted == int(label) else 1.0,
                    latency_s=self.latency_per_request,
                )
            )
        return tuple(results)
