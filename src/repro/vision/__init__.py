"""Image-classification substrate.

Two complementary pieces live here, mirroring how the paper's IC service is
reproduced (see DESIGN.md section 2):

* a **from-scratch NumPy CNN inference/training engine**
  (:mod:`repro.vision.layers`, :mod:`repro.vision.network`,
  :mod:`repro.vision.model_zoo`, :mod:`repro.vision.training`) that provides
  real convolutional networks of different capacities over the synthetic
  image dataset — the genuine compute path with a FLOP-proportional latency
  model; and

* **calibrated service-version profiles** (:mod:`repro.vision.profiles`)
  of the five ImageNet networks the paper serves (SqueezeNet, AlexNet,
  GoogLeNet, ResNet-50, VGG-16) on CPU and GPU nodes, which reproduce the
  published accuracy/latency characteristics at evaluation scale without
  requiring trained ImageNet weights.

:mod:`repro.vision.classifier` wraps either source behind the single
interface a service node needs.
"""

from repro.vision.classifier import ClassificationResult, ImageClassifier
from repro.vision.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Residual,
    Softmax,
)
from repro.vision.metrics import top1_error, top_k_error
from repro.vision.model_zoo import MINI_MODEL_BUILDERS, build_mini_model
from repro.vision.network import NeuralNetwork
from repro.vision.profiles import (
    IC_CPU_VERSIONS,
    IC_GPU_VERSIONS,
    NetworkProfile,
    ic_version_names,
    simulate_ic_measurements,
)
from repro.vision.training import SGDTrainer, TrainingConfig

__all__ = [
    "ClassificationResult",
    "Conv2D",
    "Dense",
    "Flatten",
    "GlobalAveragePool",
    "IC_CPU_VERSIONS",
    "IC_GPU_VERSIONS",
    "ImageClassifier",
    "MINI_MODEL_BUILDERS",
    "MaxPool2D",
    "NetworkProfile",
    "NeuralNetwork",
    "ReLU",
    "Residual",
    "SGDTrainer",
    "Softmax",
    "TrainingConfig",
    "build_mini_model",
    "ic_version_names",
    "simulate_ic_measurements",
    "top1_error",
    "top_k_error",
]
