"""Classification accuracy metrics.

The paper evaluates its image-classification service with the top-1 error:
a per-request binary outcome (the arg-max class either matches the label or
it does not), unlike the ASR service's continuous WER.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["top1_error", "top_k_error"]


def top1_error(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """Fraction of predictions whose arg-max class is wrong.

    Args:
        predictions: Predicted class ids.
        labels: Ground-truth class ids (same length).

    Raises:
        ValueError: If the sequences are empty or lengths differ.
    """
    pred = np.asarray(predictions, dtype=int)
    true = np.asarray(labels, dtype=int)
    if pred.size == 0:
        raise ValueError("cannot compute top-1 error of an empty sample")
    if pred.shape != true.shape:
        raise ValueError("predictions and labels disagree on length")
    return float((pred != true).mean())


def top_k_error(proba: np.ndarray, labels: Sequence[int], k: int = 5) -> float:
    """Fraction of samples whose label is not among the top-``k`` classes.

    Args:
        proba: Class probabilities or scores of shape ``(n, classes)``.
        labels: Ground-truth class ids of length ``n``.
        k: Number of top classes considered a hit.

    Raises:
        ValueError: If shapes disagree or ``k`` is out of range.
    """
    proba = np.asarray(proba, dtype=float)
    true = np.asarray(labels, dtype=int)
    if proba.ndim != 2 or proba.shape[0] != true.shape[0]:
        raise ValueError("proba must be (n, classes) aligned with labels")
    if not 1 <= k <= proba.shape[1]:
        raise ValueError(f"k must be in [1, {proba.shape[1]}], got {k}")
    top_k = np.argsort(-proba, axis=1)[:, :k]
    hits = (top_k == true[:, None]).any(axis=1)
    return float(1.0 - hits.mean())
