"""Neural-network layers implemented with NumPy.

Each layer implements three methods:

* ``forward(x)`` — compute the output for a batch of inputs,
* ``backward(grad)`` — back-propagate a gradient (used only by the miniature
  trainer; inference-only consumers never call it), and
* ``flops(input_shape)`` — an analytical floating-point-operation count,
  which the classifier converts into a deterministic latency.

Shapes follow the channels-first convention: images are
``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Conv2D",
    "Dense",
    "Flatten",
    "GlobalAveragePool",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "Residual",
    "Softmax",
]


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward`, :meth:`output_shape` and
    :meth:`flops`; layers with parameters also implement :meth:`backward`
    and expose ``params`` / ``grads`` dictionaries.
    """

    #: Parameter arrays by name (empty for parameter-free layers).
    params: Dict[str, np.ndarray]
    #: Gradient arrays by name, filled by :meth:`backward`.
    grads: Dict[str, np.ndarray]

    def __init__(self) -> None:
        self.params = {}
        self.grads = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output (excluding the batch dimension)."""
        raise NotImplementedError

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        """Analytical FLOP count for one input of ``input_shape``."""
        raise NotImplementedError

    @property
    def n_parameters(self) -> int:
        """Total number of trainable parameters."""
        return int(sum(p.size for p in self.params.values()))


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Softmax(Layer):
    """Row-wise softmax over the last dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        # Jacobian-vector product of the softmax.
        dot = (grad * self._output).sum(axis=-1, keepdims=True)
        return self._output * (grad - dot)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return 3 * int(np.prod(input_shape))


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return 0


class Dense(Layer):
    """Fully connected layer ``y = x W + b``.

    Args:
        in_features: Input dimensionality.
        out_features: Output dimensionality.
        rng: Seeded generator for weight initialisation (He-style scaling).
    """

    def __init__(
        self, in_features: int, out_features: int, *, rng: np.random.Generator
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        scale = np.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "weight": rng.normal(0.0, scale, size=(in_features, out_features)),
            "bias": np.zeros(out_features),
        }
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {x.shape[-1]}"
            )
        self._input = x
        return x @ self.params["weight"] + self.params["bias"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grads = {
            "weight": self._input.T @ grad,
            "bias": grad.sum(axis=0),
        }
        return grad @ self.params["weight"].T

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if tuple(input_shape) != (self.in_features,):
            raise ValueError(
                f"Dense({self.in_features} -> {self.out_features}) cannot consume "
                f"input shape {tuple(input_shape)}"
            )
        return (self.out_features,)

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return 2 * self.in_features * self.out_features


class Conv2D(Layer):
    """2-D convolution with 'same' or 'valid' padding (stride 1 or 2).

    Implemented with im2col so the inner loop is a single matrix multiply.

    Args:
        in_channels: Number of input channels.
        out_channels: Number of output channels (filters).
        kernel_size: Square kernel side length.
        stride: Spatial stride (1 or 2).
        padding: ``"same"`` or ``"valid"``.
        rng: Seeded generator for weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: str = "same",
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.params = {
            "weight": rng.normal(
                0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
            ),
            "bias": np.zeros(out_channels),
        }
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    # -- geometry ------------------------------------------------------
    def _pad_amount(self) -> int:
        if self.padding == "valid":
            return 0
        return (self.kernel_size - 1) // 2

    def _spatial_out(self, size: int) -> int:
        pad = self._pad_amount()
        return (size + 2 * pad - self.kernel_size) // self.stride + 1

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"Conv2D expects {self.in_channels} input channels, got {channels}"
            )
        return (self.out_channels, self._spatial_out(height), self._spatial_out(width))

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        _, height, width = input_shape
        out_h, out_w = self._spatial_out(height), self._spatial_out(width)
        per_position = 2 * self.in_channels * self.kernel_size * self.kernel_size
        return per_position * out_h * out_w * self.out_channels

    # -- im2col --------------------------------------------------------
    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, int, int]:
        batch, channels, height, width = x.shape
        pad = self._pad_amount()
        if pad:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out_h = self._spatial_out(height)
        out_w = self._spatial_out(width)
        k = self.kernel_size
        cols = np.empty((batch, channels, k, k, out_h, out_w), dtype=x.dtype)
        for i in range(k):
            i_end = i + self.stride * out_h
            for j in range(k):
                j_end = j + self.stride * out_w
                cols[:, :, i, j, :, :] = x[
                    :, :, i:i_end:self.stride, j:j_end:self.stride
                ]
        cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
            batch * out_h * out_w, channels * k * k
        )
        return cols, out_h, out_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input of shape (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        self._input_shape = x.shape
        cols, out_h, out_w = self._im2col(x)
        self._cols = cols
        weight = self.params["weight"].reshape(self.out_channels, -1)
        out = cols @ weight.T + self.params["bias"]
        return out.reshape(x.shape[0], out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, _, height, width = self._input_shape
        out_h, out_w = grad.shape[2], grad.shape[3]
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)

        weight = self.params["weight"].reshape(self.out_channels, -1)
        self.grads = {
            "weight": (grad_flat.T @ self._cols).reshape(self.params["weight"].shape),
            "bias": grad_flat.sum(axis=0),
        }

        cols_grad = grad_flat @ weight  # (batch*out_h*out_w, C*k*k)
        k = self.kernel_size
        cols_grad = cols_grad.reshape(batch, out_h, out_w, self.in_channels, k, k)
        cols_grad = cols_grad.transpose(0, 3, 4, 5, 1, 2)

        pad = self._pad_amount()
        padded = np.zeros(
            (batch, self.in_channels, height + 2 * pad, width + 2 * pad),
            dtype=grad.dtype,
        )
        for i in range(k):
            i_end = i + self.stride * out_h
            for j in range(k):
                j_end = j + self.stride * out_w
                padded[:, :, i:i_end:self.stride, j:j_end:self.stride] += cols_grad[
                    :, :, i, j, :, :
                ]
        if pad:
            return padded[:, :, pad:-pad, pad:-pad]
        return padded


class MaxPool2D(Layer):
    """Non-overlapping 2-D max pooling.

    Args:
        pool_size: Side length of the square pooling window (also the
            stride); input spatial dimensions must be divisible by it.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 1:
            raise ValueError("pool_size must be at least 2")
        self.pool_size = pool_size
        self._input_shape: Optional[Tuple[int, ...]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ValueError(
                f"spatial dimensions ({height}x{width}) must be divisible by {p}"
            )
        self._input_shape = x.shape
        reshaped = x.reshape(batch, channels, height // p, p, width // p, p)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // p, width // p, p * p
        )
        self._argmax = windows.argmax(axis=-1)
        return windows.max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._argmax is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        p = self.pool_size
        out = np.zeros(
            (batch, channels, height // p, width // p, p * p), dtype=grad.dtype
        )
        idx = np.indices(self._argmax.shape)
        out[idx[0], idx[1], idx[2], idx[3], self._argmax] = grad
        out = out.reshape(batch, channels, height // p, width // p, p, p)
        return out.transpose(0, 1, 2, 4, 3, 5).reshape(batch, channels, height, width)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        return (channels, height // self.pool_size, width // self.pool_size)

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class GlobalAveragePool(Layer):
    """Average over the spatial dimensions, producing one value per channel."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        expanded = grad[:, :, None, None] / (height * width)
        return np.broadcast_to(expanded, self._input_shape).copy()

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (input_shape[0],)

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Residual(Layer):
    """Residual block: ``y = relu(inner(x) + x)``.

    Args:
        inner_layers: Layers forming the residual branch; their composition
            must preserve the input shape.
    """

    def __init__(self, inner_layers: Sequence[Layer]) -> None:
        super().__init__()
        if not inner_layers:
            raise ValueError("a residual block needs at least one inner layer")
        self.inner_layers: List[Layer] = list(inner_layers)
        self._relu = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.inner_layers:
            out = layer.forward(out)
        if out.shape != x.shape:
            raise ValueError(
                "residual branch changed the tensor shape: "
                f"{x.shape} -> {out.shape}"
            )
        return self._relu.forward(out + x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self._relu.backward(grad)
        branch_grad = grad
        for layer in reversed(self.inner_layers):
            branch_grad = layer.backward(branch_grad)
        return branch_grad + grad

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        shape = input_shape
        for layer in self.inner_layers:
            shape = layer.output_shape(shape)
        return shape

    def flops(self, input_shape: Tuple[int, ...]) -> int:
        total = 0
        shape = input_shape
        for layer in self.inner_layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total + int(np.prod(input_shape))

    @property
    def n_parameters(self) -> int:
        return int(sum(layer.n_parameters for layer in self.inner_layers))
