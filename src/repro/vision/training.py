"""Miniature SGD trainer for the NumPy model zoo.

The trainer exists so the repository contains the full training → inference
→ serving path for the image-classification substrate.  It trains the
miniature networks on the synthetic image dataset in seconds, which is what
the examples and tests use; paper-scale experiments instead rely on the
calibrated profiles in :mod:`repro.vision.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.vision.network import NeuralNetwork

__all__ = ["SGDTrainer", "TrainingConfig", "softmax_cross_entropy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its gradient w.r.t. the logits.

    Combining the softmax and the cross-entropy yields the numerically
    stable gradient ``(softmax(logits) - onehot) / batch``, which is what
    the trainer back-propagates through the network.

    Args:
        logits: Unnormalised class scores of shape ``(batch, classes)``.
        labels: Integer labels of shape ``(batch,)``.

    Returns:
        ``(loss, grad)`` where ``grad`` has the same shape as ``logits``.
    """
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    batch = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_proba = shifted - log_norm
    loss = float(-log_proba[np.arange(batch), labels].mean())
    grad = np.exp(log_proba)
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the miniature trainer.

    Attributes:
        epochs: Number of passes over the training set.
        batch_size: Mini-batch size.
        learning_rate: SGD step size.
        momentum: Classical momentum coefficient.
        weight_decay: L2 regularisation strength.
        seed: Shuffling seed.
    """

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")


class SGDTrainer:
    """Plain SGD-with-momentum trainer for :class:`NeuralNetwork`.

    Args:
        network: The network to train.  The network must produce *logits*
            (no trailing softmax layer); the trainer combines softmax and
            cross-entropy itself for numerical stability.
        config: Training hyper-parameters.
    """

    def __init__(self, network: NeuralNetwork, config: TrainingConfig | None = None) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def _step(self, grad_scale: float = 1.0) -> None:
        """Apply one SGD update using the gradients stored in each layer."""
        cfg = self.config
        for layer in self.network.layers:
            layer_vel = self._velocity.setdefault(id(layer), {})
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                grad = grad * grad_scale + cfg.weight_decay * param
                vel = layer_vel.get(name)
                if vel is None:
                    vel = np.zeros_like(param)
                vel = cfg.momentum * vel - cfg.learning_rate * grad
                layer_vel[name] = vel
                param += vel

    def train(
        self, images: np.ndarray, labels: np.ndarray
    ) -> List[Dict[str, float]]:
        """Train the network and return per-epoch metrics.

        Args:
            images: Array of shape ``(n, *input_shape)``.
            labels: Integer labels of shape ``(n,)``.

        Returns:
            One dictionary per epoch with ``loss`` and ``accuracy`` keys.
        """
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels disagree on the sample count")
        rng = np.random.default_rng(self.config.seed)
        history: List[Dict[str, float]] = []
        n = images.shape[0]
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            losses: List[float] = []
            correct = 0
            for start in range(0, n, self.config.batch_size):
                idx = order[start : start + self.config.batch_size]
                batch_x = images[idx]
                batch_y = labels[idx]
                logits = self.network.forward(batch_x)
                loss, grad = softmax_cross_entropy(logits, batch_y)
                losses.append(loss)
                correct += int((np.argmax(logits, axis=-1) == batch_y).sum())
                self.network.backward(grad)
                self._step()
            history.append(
                {"loss": float(np.mean(losses)), "accuracy": correct / n}
            )
        return history

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the network on a held-out set."""
        predictions = self.network.predict(images)
        return float((predictions == labels).mean())
