"""Calibrated profiles of the paper's image-classification service versions.

The paper's IC service serves five ImageNet CNNs from the Caffe model zoo —
SqueezeNet, AlexNet, GoogLeNet, ResNet-50 and VGG-16 — on both CPU and GPU
nodes, and evaluates them on 45 000 ILSVRC-2012 validation images.  Training
those networks offline is not feasible, so paper-scale experiments use the
*calibrated profiles* in this module instead: each profile records the
published top-1 error and a representative single-image latency for the
network on a given device, and per-request outcomes are sampled from the
shared latent-difficulty model of :mod:`repro.datasets.difficulty` so that
correctness is realistically correlated across versions (which is what the
paper's request-category analysis measures).

The miniature NumPy networks in :mod:`repro.vision.model_zoo` exercise the
actual inference code path; the profiles reproduce the published
accuracy/latency *shape* at evaluation scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np
from scipy.stats import norm

from repro.datasets.difficulty import DifficultyModel, DifficultyProfile

__all__ = [
    "IC_CPU_VERSIONS",
    "IC_GPU_VERSIONS",
    "NetworkProfile",
    "PerRequestOutcomes",
    "ic_version_names",
    "simulate_ic_measurements",
]


@dataclass(frozen=True)
class NetworkProfile:
    """Published characteristics of one served network on one device.

    Attributes:
        name: Service-version name, e.g. ``"ic_cpu_resnet50"``.
        architecture: Underlying network architecture.
        device: ``"cpu"`` or ``"gpu"``.
        top1_error: Published ILSVRC-2012 validation top-1 error rate.
        latency_mean_s: Representative single-image inference latency on the
            device, in seconds.
        latency_cv: Coefficient of variation of the per-request latency
            (captures input-size and system jitter).
    """

    name: str
    architecture: str
    device: str
    top1_error: float
    latency_mean_s: float
    latency_cv: float = 0.12

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "gpu"):
            raise ValueError("device must be 'cpu' or 'gpu'")
        if not 0.0 < self.top1_error < 1.0:
            raise ValueError("top1_error must be in (0, 1)")
        if self.latency_mean_s <= 0.0:
            raise ValueError("latency_mean_s must be positive")
        if self.latency_cv < 0.0:
            raise ValueError("latency_cv must be non-negative")


def _profiles(device: str, latencies: Mapping[str, float]) -> Dict[str, NetworkProfile]:
    """Build the per-device profile table from published top-1 errors."""
    published_top1_error = {
        "squeezenet": 0.425,
        "alexnet": 0.429,
        "googlenet": 0.313,
        "vgg16": 0.285,
        "resnet50": 0.247,
    }
    table: Dict[str, NetworkProfile] = {}
    for arch, latency in latencies.items():
        name = f"ic_{device}_{arch}"
        table[name] = NetworkProfile(
            name=name,
            architecture=arch,
            device=device,
            top1_error=published_top1_error[arch],
            latency_mean_s=latency,
        )
    return table


#: CPU service versions, ordered fastest to slowest (single-image latency).
IC_CPU_VERSIONS: Dict[str, NetworkProfile] = _profiles(
    "cpu",
    {
        "squeezenet": 0.030,
        "alexnet": 0.042,
        "googlenet": 0.085,
        "resnet50": 0.125,
        "vgg16": 0.230,
    },
)

#: GPU service versions, ordered fastest to slowest.
IC_GPU_VERSIONS: Dict[str, NetworkProfile] = _profiles(
    "gpu",
    {
        "squeezenet": 0.0040,
        "alexnet": 0.0050,
        "googlenet": 0.0090,
        "resnet50": 0.0125,
        "vgg16": 0.0210,
    },
)


def ic_version_names(device: str = "cpu") -> List[str]:
    """Service-version names for a device, fastest first.

    Args:
        device: ``"cpu"`` or ``"gpu"``.
    """
    table = IC_CPU_VERSIONS if device == "cpu" else IC_GPU_VERSIONS
    if device not in ("cpu", "gpu"):
        raise ValueError("device must be 'cpu' or 'gpu'")
    return list(table.keys())


@dataclass(frozen=True)
class PerRequestOutcomes:
    """Sampled per-request outcomes of one service version.

    Attributes:
        version: Service-version name.
        error: Per-request top-1 error (0.0 or 1.0), length ``n_requests``.
        latency_s: Per-request latency in seconds.
        confidence: Per-request model confidence in ``[0, 1]``.
    """

    version: str
    error: np.ndarray
    latency_s: np.ndarray
    confidence: np.ndarray


def simulate_ic_measurements(
    n_requests: int,
    *,
    versions: Mapping[str, NetworkProfile] | None = None,
    seed: int = 2012,
    difficulty_profile: DifficultyProfile | None = None,
    confidence_sharpness: float = 1.4,
    confidence_noise: float = 0.08,
) -> Tuple[np.ndarray, Dict[str, PerRequestOutcomes]]:
    """Sample calibrated per-request outcomes for every service version.

    Per-request correctness follows the latent-difficulty probit model: a
    request of difficulty ``d`` is classified correctly by a version of
    skill ``s`` when ``s >= d + eps``.  Skills are calibrated so each
    version's marginal error matches its published top-1 error.  Confidence
    is a noisy squash of the same margin, so it correlates with correctness
    the way a softmax max-probability does in practice.

    Args:
        n_requests: Number of requests (images) to simulate.
        versions: Profile table; defaults to :data:`IC_CPU_VERSIONS`.
        seed: Seed for all sampling.
        difficulty_profile: Optional override of the latent difficulty
            distribution.
        confidence_sharpness: Scale of the margin → confidence squash.
        confidence_noise: Standard deviation of the additive confidence
            noise (before clipping to ``[0.01, 0.999]``).

    Returns:
        ``(difficulties, outcomes)`` where ``difficulties`` has length
        ``n_requests`` and ``outcomes`` maps version name to
        :class:`PerRequestOutcomes`.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if versions is None:
        versions = IC_CPU_VERSIONS
    rng = np.random.default_rng(seed)
    model = DifficultyModel(n_requests, profile=difficulty_profile, rng=rng)

    outcomes: Dict[str, PerRequestOutcomes] = {}
    for name, profile in versions.items():
        skill = model.skill_for_error_rate(profile.top1_error)
        eps = rng.normal(0.0, model.profile.idiosyncratic_std, size=n_requests)
        margin = skill - (model.difficulties + eps)
        correct = margin >= 0.0

        confidence = norm.cdf(margin / confidence_sharpness)
        confidence = confidence + rng.normal(0.0, confidence_noise, size=n_requests)
        confidence = np.clip(confidence, 0.01, 0.999)

        sigma = np.sqrt(np.log(1.0 + profile.latency_cv**2))
        mu = np.log(profile.latency_mean_s) - 0.5 * sigma**2
        latency = rng.lognormal(mean=mu, sigma=sigma, size=n_requests)

        outcomes[name] = PerRequestOutcomes(
            version=name,
            error=(~correct).astype(float),
            latency_s=latency,
            confidence=confidence,
        )
    return model.difficulties, outcomes
