"""Sequential neural-network container.

:class:`NeuralNetwork` strings layers together, tracks the shapes flowing
through them, exposes the total FLOP count (the classifier's latency model)
and provides the forward/backward plumbing the miniature trainer needs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.vision.layers import Layer, Softmax

__all__ = ["NeuralNetwork"]


class NeuralNetwork:
    """A sequential stack of layers.

    Args:
        name: Model name (shows up in measurements and reports).
        layers: Layers applied in order.
        input_shape: Shape of one input sample, channels-first, e.g.
            ``(1, 16, 16)``.

    Raises:
        ValueError: If a layer cannot consume its predecessor's output shape.
    """

    def __init__(
        self, name: str, layers: Sequence[Layer], input_shape: Tuple[int, ...]
    ) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(int(d) for d in input_shape)
        # Validate shape propagation eagerly so configuration errors surface
        # at construction time rather than mid-experiment.
        self._layer_input_shapes: List[Tuple[int, ...]] = []
        shape = self.input_shape
        for layer in self.layers:
            self._layer_input_shapes.append(shape)
            shape = layer.output_shape(shape)
        self.output_shape = shape

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a batch through the network.

        Args:
            x: Batch of inputs with shape ``(batch, *input_shape)`` or a
                single sample with shape ``input_shape``.
        """
        single = x.shape == self.input_shape
        if single:
            x = x[None]
        expected = (x.shape[0],) + self.input_shape
        if x.shape != expected:
            raise ValueError(f"expected input shape {expected}, got {x.shape}")
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out[0] if single else out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities; appends a softmax if the net lacks one."""
        out = self.forward(x)
        if isinstance(self.layers[-1], Softmax):
            return out
        return Softmax().forward(out)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Arg-max class prediction for a batch (or scalar for one sample)."""
        proba = self.predict_proba(x)
        return np.argmax(proba, axis=-1)

    # ------------------------------------------------------------------
    # training support
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through every layer (reverse order)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[Layer, str, np.ndarray]]:
        """Flat list of ``(layer, parameter_name, array)`` triples."""
        out = []
        for layer in self.layers:
            for name, value in layer.params.items():
                out.append((layer, name, value))
        return out

    # ------------------------------------------------------------------
    # model statistics
    # ------------------------------------------------------------------
    @property
    def n_parameters(self) -> int:
        """Total number of trainable parameters."""
        return int(sum(layer.n_parameters for layer in self.layers))

    def flops(self) -> int:
        """Analytical FLOPs for classifying one input sample."""
        total = 0
        for layer, shape in zip(self.layers, self._layer_input_shapes):
            total += layer.flops(shape)
        return int(total)

    def describe(self) -> str:
        """Human-readable one-line-per-layer description."""
        lines = [f"{self.name}: input {self.input_shape}"]
        shape = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            lines.append(
                f"  {type(layer).__name__:<18} {shape} -> {out_shape}"
                f"  params={layer.n_parameters}"
            )
            shape = out_shape
        lines.append(
            f"  total params={self.n_parameters}, flops/sample={self.flops():,}"
        )
        return "\n".join(lines)
