"""Tolerance Tiers: accuracy-latency trade-off tiers for ML cloud services.

A from-scratch reproduction of "One Size Does Not Fit All: Quantifying and
Exposing the Accuracy-Latency Trade-off in Machine Learning Cloud Service
APIs via Tolerance Tiers" (Halpern et al., ISPASS 2019).

Package layout
--------------

* :mod:`repro.core` -- the Tolerance Tiers contribution: tiers, ensembling
  policies, the bootstrapping routing-rule generator, the tier router, the
  guarantee audit, and the annotated-request API endpoint.
* :mod:`repro.asr` -- a beam-search speech-recognition engine whose pruning
  heuristics create the accuracy-latency trade-off (the paper's ASR
  service).
* :mod:`repro.vision` -- a NumPy CNN engine plus calibrated profiles of the
  paper's five ImageNet networks (the paper's IC service).
* :mod:`repro.service` -- the MLaaS substrate: requests, nodes, instance
  catalogue, pricing, load balancing, cluster deployments and the
  measurement tables every experiment runs on.
* :mod:`repro.datasets` -- synthetic stand-ins for VoxForge and ILSVRC-2012.
* :mod:`repro.analysis` -- the Section III "one size fits all" limitation
  analysis (Pareto frontier, request categories, headline summaries).
* :mod:`repro.stats` -- bootstrap/confidence/summary statistics helpers.

See ``examples/quickstart.py`` for a complete end-to-end walk-through.
"""

from repro.core import (
    RoutingRuleGenerator,
    TierRouter,
    ToleranceTier,
    ToleranceTiersService,
    audit_guarantees,
    enumerate_configurations,
    evaluate_policy,
)
from repro.core.tiers import default_tolerance_grid
from repro.service import (
    MeasurementSet,
    Objective,
    ServiceRequest,
    ServiceResponse,
    measure_asr_service,
    measure_ic_service,
)

__version__ = "1.0.0"

__all__ = [
    "MeasurementSet",
    "Objective",
    "RoutingRuleGenerator",
    "ServiceRequest",
    "ServiceResponse",
    "TierRouter",
    "ToleranceTier",
    "ToleranceTiersService",
    "__version__",
    "audit_guarantees",
    "default_tolerance_grid",
    "enumerate_configurations",
    "evaluate_policy",
    "measure_asr_service",
    "measure_ic_service",
]
