"""Dataset split helpers shared by the evaluation harnesses.

The routing-rule generator is trained on one portion of the measured
requests and audited on the remainder (the paper uses 10-fold cross
validation).  These helpers express that split at the index level so they
work uniformly for speech corpora, image datasets and measurement sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.stats.resampling import kfold_indices

__all__ = ["DatasetSplit", "train_test_split"]


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split expressed as index arrays.

    Attributes:
        train_indices: Indices of the training portion.
        test_indices: Indices of the held-out portion.
    """

    train_indices: Tuple[int, ...]
    test_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.train_indices) & set(self.test_indices)
        if overlap:
            raise ValueError(f"train/test overlap on indices {sorted(overlap)[:5]}")

    @property
    def n_train(self) -> int:
        """Number of training indices."""
        return len(self.train_indices)

    @property
    def n_test(self) -> int:
        """Number of held-out indices."""
        return len(self.test_indices)


def train_test_split(
    n: int,
    *,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> DatasetSplit:
    """Split ``range(n)`` into a shuffled train/test partition.

    Args:
        n: Population size.
        test_fraction: Fraction held out, strictly inside ``(0, 1)``.
        rng: Optional seeded generator; defaults to an unshuffled split.
    """
    if n < 2:
        raise ValueError("need at least two items to split")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = np.arange(n) if rng is None else rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    test = np.sort(order[:n_test])
    train = np.sort(order[n_test:])
    return DatasetSplit(
        train_indices=tuple(int(i) for i in train),
        test_indices=tuple(int(i) for i in test),
    )


def cross_validation_splits(
    n: int, folds: int = 10, *, rng: np.random.Generator | None = None
) -> List[DatasetSplit]:
    """Return ``folds`` cross-validation splits of ``range(n)``.

    Thin wrapper over :func:`repro.stats.resampling.kfold_indices` that
    returns :class:`DatasetSplit` records, mirroring the paper's 10-fold
    cross-validation protocol.
    """
    pairs = kfold_indices(n, folds, rng=rng)
    return [
        DatasetSplit(
            train_indices=tuple(int(i) for i in train),
            test_indices=tuple(int(i) for i in test),
        )
        for train, test in pairs
    ]
