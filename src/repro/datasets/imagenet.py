"""Synthetic image dataset standing in for the ILSVRC-2012 validation set.

The paper evaluates its image-classification service on 45 000 held-out
ImageNet validation images across 1 000 classes.  This module provides a
seeded synthetic substitute with two consumers in mind:

* the NumPy CNN engine in :mod:`repro.vision` needs actual pixel tensors it
  can train miniature networks on and run inference over, and
* the calibrated service-version profiles need a per-image latent difficulty
  that is shared across model versions (provided by
  :class:`repro.datasets.difficulty.DifficultyModel`).

Images are generated as class prototypes (smooth random patterns) scaled by
a per-image signal strength plus Gaussian pixel noise.  The per-image signal
strength doubles as an interpretable difficulty: low-signal images are hard
for every model, high-signal images are easy for every model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

__all__ = [
    "SyntheticImageDataset",
    "SyntheticImageNetConfig",
    "make_imagenet_surrogate",
]


@dataclass(frozen=True)
class SyntheticImageNetConfig:
    """Configuration of the synthetic image dataset.

    Attributes:
        n_images: Number of evaluation images.
        n_classes: Number of classes (the paper uses 1 000; the default here
            is smaller so miniature CNNs can separate them).
        image_size: Height/width of the square images.
        channels: Number of channels.
        signal_range: Range of per-image signal strengths; images at the low
            end are dominated by noise and hard for every model.
        noise_std: Standard deviation of the additive pixel noise.
        seed: Seed for all dataset randomness.
    """

    n_images: int = 2000
    n_classes: int = 10
    image_size: int = 16
    channels: int = 1
    signal_range: Tuple[float, float] = (0.4, 2.0)
    noise_std: float = 1.0
    seed: int = 20120914

    def __post_init__(self) -> None:
        if self.n_images <= 0:
            raise ValueError("n_images must be positive")
        if self.n_classes < 2:
            raise ValueError("need at least two classes")
        if self.image_size < 4:
            raise ValueError("image_size must be at least 4")
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.signal_range[0] > self.signal_range[1]:
            raise ValueError("signal_range must be (low, high)")
        if self.noise_std < 0.0:
            raise ValueError("noise_std must be non-negative")


def _smooth_random_pattern(
    rng: np.random.Generator, channels: int, size: int
) -> np.ndarray:
    """Generate a smooth random pattern by blurring white noise."""
    raw = rng.normal(0.0, 1.0, size=(channels, size, size))
    kernel = np.array([0.25, 0.5, 0.25])
    for axis in (1, 2):
        raw = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), axis, raw
        )
    raw -= raw.mean()
    norm = np.linalg.norm(raw)
    if norm > 0:
        raw /= norm
    return raw * np.sqrt(raw.size)


class SyntheticImageDataset:
    """Seeded synthetic replacement for the ImageNet validation set.

    Args:
        config: Dataset configuration.

    Attributes:
        images: Array of shape ``(n_images, channels, size, size)``.
        labels: Integer class labels of shape ``(n_images,)``.
        signal: Per-image signal strength (higher is easier).
        prototypes: Class prototype patterns of shape
            ``(n_classes, channels, size, size)``.
    """

    def __init__(self, config: SyntheticImageNetConfig | None = None) -> None:
        self.config = config or SyntheticImageNetConfig()
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config
        self.prototypes = np.stack(
            [
                _smooth_random_pattern(rng, cfg.channels, cfg.image_size)
                for _ in range(cfg.n_classes)
            ]
        )
        self.labels = rng.integers(0, cfg.n_classes, size=cfg.n_images)
        low, high = cfg.signal_range
        self.signal = rng.uniform(low, high, size=cfg.n_images)
        noise = rng.normal(
            0.0,
            cfg.noise_std,
            size=(cfg.n_images, cfg.channels, cfg.image_size, cfg.image_size),
        )
        self.images = (
            self.prototypes[self.labels] * self.signal[:, None, None, None]
            + noise
        ).astype(np.float32)

    def __len__(self) -> int:
        return int(self.config.n_images)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for i in range(len(self)):
            yield self.images[i], int(self.labels[i])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_ids(self) -> Tuple[str, ...]:
        """Stable per-image identifiers, e.g. ``"img_000042"``."""
        return tuple(f"img_{i:06d}" for i in range(len(self)))

    def batches(
        self, batch_size: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, labels)`` batches in dataset order."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, len(self), batch_size):
            stop = start + batch_size
            yield self.images[start:stop], self.labels[start:stop]

    def subset(self, indices: Sequence[int]) -> "SyntheticImageDataset":
        """Return a shallow view of the dataset restricted to ``indices``."""
        view = object.__new__(SyntheticImageDataset)
        view.config = self.config
        view.prototypes = self.prototypes
        idx = np.asarray(indices, dtype=int)
        view.images = self.images[idx]
        view.labels = self.labels[idx]
        view.signal = self.signal[idx]
        return view

    def difficulty_proxy(self) -> np.ndarray:
        """Return a per-image difficulty proxy (higher is harder).

        Defined as the negated, standardised signal strength; useful when a
        consumer wants difficulty aligned with the actual pixel content
        rather than an independent latent draw.
        """
        signal = self.signal
        return (signal.mean() - signal) / (signal.std() + 1e-12)


def make_imagenet_surrogate(
    n_images: int = 2000, *, seed: int = 20120914, **overrides
) -> SyntheticImageDataset:
    """Convenience constructor for the ImageNet surrogate dataset."""
    config = SyntheticImageNetConfig(n_images=n_images, seed=seed, **overrides)
    return SyntheticImageDataset(config)
