"""Latent per-request difficulty model.

The "one size fits all" analysis in the paper hinges on how per-request
correctness is *correlated across model versions*: most requests get the
same result from every version ("unchanged"), a meaningful minority only
succeed under more capable versions ("improves"), and a small set flips in
either direction ("varies"/"degrades").

This module provides the latent-difficulty probit model used by the
calibrated image-classification profiles (and available to any other
substrate).  Each request draws a latent difficulty ``d ~ N(0, 1)``.  A
model version with *skill* ``s`` answers the request correctly when

    s >= d + eps

where ``eps ~ N(0, sigma_idiosyncratic)`` is a small per-(request, version)
disturbance.  Marginalising over requests, the version's error rate is

    P(wrong) = 1 - Phi(s / sqrt(1 + sigma^2))

so a version can be calibrated to any target error rate in closed form via
:meth:`DifficultyModel.skill_for_error_rate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy.stats import norm

__all__ = ["DifficultyModel", "DifficultyProfile"]


@dataclass(frozen=True)
class DifficultyProfile:
    """Parameters of the latent difficulty distribution.

    Attributes:
        idiosyncratic_std: Standard deviation of the per-(request, version)
            disturbance ``eps``.  Zero makes correctness a deterministic
            threshold on difficulty (versions become perfectly nested);
            larger values produce more "varies"/"degrades" requests.
        difficulty_std: Standard deviation of the latent difficulty.
    """

    idiosyncratic_std: float = 0.35
    difficulty_std: float = 1.0

    def __post_init__(self) -> None:
        if self.idiosyncratic_std < 0.0:
            raise ValueError("idiosyncratic_std must be non-negative")
        if self.difficulty_std <= 0.0:
            raise ValueError("difficulty_std must be positive")


class DifficultyModel:
    """Samples per-request difficulties and per-version correctness.

    Args:
        n_requests: Number of requests in the synthetic workload.
        profile: Distributional parameters.
        rng: Seeded generator; the difficulty draw is made eagerly so that
            every version sees the *same* latent difficulties.
    """

    def __init__(
        self,
        n_requests: int,
        *,
        profile: DifficultyProfile | None = None,
        rng: np.random.Generator,
    ) -> None:
        if n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        self.profile = profile or DifficultyProfile()
        self._rng = rng
        self._difficulty = rng.normal(
            0.0, self.profile.difficulty_std, size=n_requests
        )

    @property
    def n_requests(self) -> int:
        """Number of requests covered by this model."""
        return int(self._difficulty.size)

    @property
    def difficulties(self) -> np.ndarray:
        """The latent difficulty of every request (copy)."""
        return self._difficulty.copy()

    def skill_for_error_rate(self, error_rate: float) -> float:
        """Return the version skill that yields a target marginal error rate.

        Args:
            error_rate: Desired fraction of requests answered incorrectly,
                strictly inside ``(0, 1)``.
        """
        if not 0.0 < error_rate < 1.0:
            raise ValueError(
                f"error_rate must be in (0, 1), got {error_rate}"
            )
        total_std = float(
            np.hypot(self.profile.difficulty_std, self.profile.idiosyncratic_std)
        )
        return float(norm.ppf(1.0 - error_rate) * total_std)

    def correctness_for_skill(self, skill: float) -> np.ndarray:
        """Sample a boolean correctness vector for a version of given skill.

        Each call draws fresh idiosyncratic noise (one disturbance per
        request) from the model's generator, but reuses the shared latent
        difficulties, preserving cross-version correlation.
        """
        eps = self._rng.normal(
            0.0, self.profile.idiosyncratic_std, size=self.n_requests
        )
        return skill >= self._difficulty + eps

    def correctness_table(
        self, skills: Dict[str, float]
    ) -> Dict[str, np.ndarray]:
        """Sample correctness vectors for a named set of versions.

        Args:
            skills: Mapping from version name to skill value.

        Returns:
            Mapping from version name to a boolean correctness array of
            length :attr:`n_requests`.
        """
        return {
            name: self.correctness_for_skill(skill)
            for name, skill in skills.items()
        }

    def calibrated_correctness_table(
        self, error_rates: Dict[str, float]
    ) -> Dict[str, np.ndarray]:
        """Sample correctness vectors calibrated to target error rates."""
        skills = {
            name: self.skill_for_error_rate(rate)
            for name, rate in error_rates.items()
        }
        return self.correctness_table(skills)

    def expected_error_rate(self, skill: float) -> float:
        """Closed-form marginal error rate for a version of given skill."""
        total_std = float(
            np.hypot(self.profile.difficulty_std, self.profile.idiosyncratic_std)
        )
        return float(1.0 - norm.cdf(skill / total_std))

    @staticmethod
    def empirical_error_rate(correctness: Sequence[bool]) -> float:
        """Fraction of incorrect answers in a correctness vector."""
        arr = np.asarray(correctness, dtype=bool)
        if arr.size == 0:
            raise ValueError("correctness vector is empty")
        return float(1.0 - arr.mean())
