"""Synthetic datasets standing in for the paper's evaluation corpora.

The paper evaluates on ~35 k VoxForge utterances (ASR) and 45 k ILSVRC-2012
validation images (image classification).  Neither corpus is available
offline, so this package provides seeded synthetic substitutes that preserve
the properties the evaluation actually depends on:

* a spread of per-request difficulty (speakers / recording conditions for
  speech, visual ambiguity for images), and
* per-request correctness that is *correlated* across model versions, so the
  paper's request categories (unchanged / improves / degrades / varies)
  emerge naturally.

See DESIGN.md section 2 for the substitution rationale.
"""

from repro.datasets.difficulty import DifficultyModel, DifficultyProfile
from repro.datasets.imagenet import (
    SyntheticImageDataset,
    SyntheticImageNetConfig,
    make_imagenet_surrogate,
)
from repro.datasets.splits import (
    DatasetSplit,
    cross_validation_splits,
    train_test_split,
)
from repro.datasets.voxforge import (
    SpeakerProfile,
    SyntheticSpeechCorpus,
    SyntheticVoxForgeConfig,
    Utterance,
    make_voxforge_surrogate,
)

__all__ = [
    "DatasetSplit",
    "DifficultyModel",
    "DifficultyProfile",
    "SpeakerProfile",
    "SyntheticImageDataset",
    "SyntheticImageNetConfig",
    "SyntheticSpeechCorpus",
    "SyntheticVoxForgeConfig",
    "Utterance",
    "cross_validation_splits",
    "make_imagenet_surrogate",
    "make_voxforge_surrogate",
    "train_test_split",
]
