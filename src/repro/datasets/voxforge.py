"""Synthetic speech corpus standing in for VoxForge.

The paper benchmarks its ASR service with ~35 000 transcribed VoxForge
utterances spanning ~3 500 speakers and many recording environments.  What
the evaluation needs from that corpus is (a) reference transcripts drawn
from a natural-ish language distribution and (b) per-utterance acoustic
difficulty that varies with speaker and recording conditions.

:class:`SyntheticSpeechCorpus` provides both.  It builds a pseudo-word
vocabulary, a topic-structured bigram text generator, a pool of speaker
profiles with different signal-to-noise ratios and speaking rates, and a set
of utterances (speaker + transcript).  The acoustic observations themselves
are synthesised downstream by :mod:`repro.asr.acoustic`, which keeps the
dataset layer free of any decoder details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "SpeakerProfile",
    "SyntheticSpeechCorpus",
    "SyntheticVoxForgeConfig",
    "Utterance",
    "make_voxforge_surrogate",
]

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ou"]
_CODAS = ["", "n", "s", "t", "k", "l", "r"]


@dataclass(frozen=True)
class SpeakerProfile:
    """A synthetic speaker / recording environment.

    Attributes:
        speaker_id: Stable identifier, e.g. ``"spk_0042"``.
        snr_db: Signal-to-noise ratio of the recording environment in dB.
            Lower values make the synthesised acoustic observations noisier
            and therefore harder to decode accurately.
        speaking_rate: Multiplier on phone durations (1.0 is nominal;
            faster speakers produce fewer frames per phone).
        accent_shift: Systematic bias added to the speaker's acoustic
            emissions, modelling accent / microphone colouration.
    """

    speaker_id: str
    snr_db: float
    speaking_rate: float
    accent_shift: float


@dataclass(frozen=True)
class Utterance:
    """A transcribed utterance: the unit of one ASR service request.

    Attributes:
        utterance_id: Stable identifier, unique within a corpus.
        speaker: The speaker who produced the utterance.
        words: Reference transcript as a tuple of vocabulary words.
    """

    utterance_id: str
    speaker: SpeakerProfile
    words: Tuple[str, ...]

    @property
    def n_words(self) -> int:
        """Number of words in the reference transcript."""
        return len(self.words)

    @property
    def text(self) -> str:
        """The reference transcript as a single space-joined string."""
        return " ".join(self.words)


@dataclass(frozen=True)
class SyntheticVoxForgeConfig:
    """Configuration of the synthetic speech corpus.

    The defaults produce a corpus that is small enough to decode with the
    pure-Python beam-search engine in seconds yet large enough to exhibit the
    paper's request-category structure.  Scale ``n_utterances`` up for
    higher-fidelity experiments.

    Attributes:
        n_utterances: Number of evaluation utterances to generate.
        n_speakers: Number of distinct speaker profiles.
        vocabulary_size: Number of pseudo-words in the vocabulary.
        min_words: Minimum transcript length.
        max_words: Maximum transcript length (inclusive).
        n_topics: Number of latent topics in the text generator; each topic
            prefers a different slice of the vocabulary, which gives the
            bigram language model something real to exploit.
        n_training_sentences: Number of sentences generated for language
            model training (disjoint from the evaluation utterances).
        snr_db_range: Range of speaker signal-to-noise ratios.
        seed: Seed for all corpus randomness.
    """

    n_utterances: int = 400
    n_speakers: int = 40
    vocabulary_size: int = 80
    min_words: int = 3
    max_words: int = 7
    n_topics: int = 4
    n_training_sentences: int = 600
    snr_db_range: Tuple[float, float] = (5.0, 17.0)
    seed: int = 20190324

    def __post_init__(self) -> None:
        if self.n_utterances <= 0:
            raise ValueError("n_utterances must be positive")
        if self.n_speakers <= 0:
            raise ValueError("n_speakers must be positive")
        if self.vocabulary_size < 10:
            raise ValueError("vocabulary_size must be at least 10")
        if not 1 <= self.min_words <= self.max_words:
            raise ValueError("need 1 <= min_words <= max_words")
        if self.n_topics <= 0:
            raise ValueError("n_topics must be positive")
        if self.snr_db_range[0] > self.snr_db_range[1]:
            raise ValueError("snr_db_range must be (low, high)")


class SyntheticSpeechCorpus:
    """Seeded synthetic replacement for the VoxForge evaluation corpus.

    Args:
        config: Corpus configuration; see :class:`SyntheticVoxForgeConfig`.

    The corpus exposes:

    * :attr:`vocabulary` -- the pseudo-word list (used to build the ASR
      lexicon),
    * :attr:`training_sentences` -- sentences for language-model training,
    * :attr:`utterances` -- the evaluation utterances,
    * :attr:`speakers` -- the speaker pool.
    """

    def __init__(self, config: SyntheticVoxForgeConfig | None = None) -> None:
        self.config = config or SyntheticVoxForgeConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.vocabulary: List[str] = self._build_vocabulary()
        self._topic_weights = self._build_topic_weights()
        self._transition = self._build_transition_matrix()
        self.speakers: List[SpeakerProfile] = self._build_speakers()
        self.training_sentences: List[Tuple[str, ...]] = [
            self._sample_sentence()
            for _ in range(self.config.n_training_sentences)
        ]
        self.utterances: List[Utterance] = self._build_utterances()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_vocabulary(self) -> List[str]:
        words: List[str] = []
        seen = set()
        while len(words) < self.config.vocabulary_size:
            n_syllables = int(self._rng.integers(1, 4))
            syllables = []
            for _ in range(n_syllables):
                onset = _ONSETS[self._rng.integers(0, len(_ONSETS))]
                nucleus = _NUCLEI[self._rng.integers(0, len(_NUCLEI))]
                coda = _CODAS[self._rng.integers(0, len(_CODAS))]
                syllables.append(onset + nucleus + coda)
            word = "".join(syllables)
            if word not in seen:
                seen.add(word)
                words.append(word)
        return words

    def _build_topic_weights(self) -> np.ndarray:
        """Per-topic word preference matrix of shape (topics, vocab)."""
        vocab = len(self.vocabulary)
        weights = self._rng.gamma(
            0.3, 1.0, size=(self.config.n_topics, vocab)
        )
        weights /= weights.sum(axis=1, keepdims=True)
        return weights

    def _build_transition_matrix(self) -> np.ndarray:
        """Word bigram transition matrix mixing topical and uniform mass."""
        vocab = len(self.vocabulary)
        topic_of_word = self._rng.integers(
            0, self.config.n_topics, size=vocab
        )
        transition = np.empty((vocab, vocab))
        for w in range(vocab):
            topical = self._topic_weights[topic_of_word[w]]
            transition[w] = 0.85 * topical + 0.15 / vocab
            transition[w] /= transition[w].sum()
        return transition

    def _build_speakers(self) -> List[SpeakerProfile]:
        low, high = self.config.snr_db_range
        speakers = []
        for i in range(self.config.n_speakers):
            speakers.append(
                SpeakerProfile(
                    speaker_id=f"spk_{i:04d}",
                    snr_db=float(self._rng.uniform(low, high)),
                    speaking_rate=float(self._rng.uniform(0.85, 1.2)),
                    accent_shift=float(self._rng.normal(0.0, 0.15)),
                )
            )
        return speakers

    def _sample_sentence(self) -> Tuple[str, ...]:
        length = int(
            self._rng.integers(self.config.min_words, self.config.max_words + 1)
        )
        vocab = len(self.vocabulary)
        words = [int(self._rng.integers(0, vocab))]
        for _ in range(length - 1):
            probs = self._transition[words[-1]]
            words.append(int(self._rng.choice(vocab, p=probs)))
        return tuple(self.vocabulary[w] for w in words)

    def _build_utterances(self) -> List[Utterance]:
        utterances = []
        for i in range(self.config.n_utterances):
            speaker = self.speakers[int(self._rng.integers(0, len(self.speakers)))]
            utterances.append(
                Utterance(
                    utterance_id=f"utt_{i:06d}",
                    speaker=speaker,
                    words=self._sample_sentence(),
                )
            )
        return utterances

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.utterances)

    def __iter__(self):
        return iter(self.utterances)

    def __getitem__(self, index: int) -> Utterance:
        return self.utterances[index]

    def total_words(self) -> int:
        """Total number of reference words across all utterances."""
        return sum(u.n_words for u in self.utterances)

    def speakers_by_id(self) -> Dict[str, SpeakerProfile]:
        """Mapping from speaker id to profile."""
        return {s.speaker_id: s for s in self.speakers}

    def subset(self, indices: Sequence[int]) -> List[Utterance]:
        """Return the utterances at the given indices (order preserved)."""
        return [self.utterances[i] for i in indices]


def make_voxforge_surrogate(
    n_utterances: int = 400, *, seed: int = 20190324, **overrides
) -> SyntheticSpeechCorpus:
    """Convenience constructor for the VoxForge surrogate corpus.

    Args:
        n_utterances: Number of evaluation utterances.
        seed: Corpus seed.
        **overrides: Any other :class:`SyntheticVoxForgeConfig` field.
    """
    config = SyntheticVoxForgeConfig(
        n_utterances=n_utterances, seed=seed, **overrides
    )
    return SyntheticSpeechCorpus(config)
