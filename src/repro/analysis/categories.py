"""Per-request accuracy-latency behaviour categories (paper Fig. 2e-f, Fig. 3).

The paper classifies every service request by how its result quality
changes as progressively slower/more accurate service versions are used:

* **unchanged** — every version produces the same error (the large
  majority: >74 % for ASR, >65 % for IC in the paper);
* **improves** — error only ever goes down (weakly) as versions get more
  accurate, with at least one strict improvement;
* **degrades** — error only ever goes up (weakly), with at least one strict
  regression (slower versions can be *worse* for some inputs — a key
  argument against "one size fits all");
* **varies** — error moves in both directions across the version sweep.

Versions are ordered by increasing mean latency for this analysis, matching
the paper's presentation of the version sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.service.measurement import MeasurementSet

__all__ = [
    "CATEGORY_NAMES",
    "CategoryBreakdown",
    "categorize_requests",
    "error_by_category",
]

#: Canonical category names in presentation order.
CATEGORY_NAMES: Tuple[str, ...] = ("unchanged", "improves", "degrades", "varies")


@dataclass(frozen=True)
class CategoryBreakdown:
    """Category assignment for every request of a measurement set.

    Attributes:
        service: Service name the breakdown belongs to.
        versions_by_latency: Version names ordered by increasing mean
            latency (the order used to judge improvement/degradation).
        assignments: Category name per request (aligned with
            ``request_ids``).
        request_ids: The request identifiers.
    """

    service: str
    versions_by_latency: Tuple[str, ...]
    assignments: Tuple[str, ...]
    request_ids: Tuple[str, ...]

    def shares(self) -> Dict[str, float]:
        """Fraction of requests in each category (sums to 1.0)."""
        total = len(self.assignments)
        return {
            name: sum(1 for a in self.assignments if a == name) / total
            for name in CATEGORY_NAMES
        }

    def counts(self) -> Dict[str, int]:
        """Number of requests in each category."""
        return {
            name: sum(1 for a in self.assignments if a == name)
            for name in CATEGORY_NAMES
        }

    def indices_of(self, category: str) -> List[int]:
        """Row indices of the requests assigned to ``category``."""
        if category not in CATEGORY_NAMES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {CATEGORY_NAMES}"
            )
        return [i for i, a in enumerate(self.assignments) if a == category]


def _classify_row(errors: np.ndarray, tolerance: float) -> str:
    """Classify one request's error trajectory across the version sweep."""
    deltas = np.diff(errors)
    meaningful = np.abs(deltas) > tolerance
    if not meaningful.any():
        return "unchanged"
    decreases = bool(((deltas < -tolerance)).any())
    increases = bool(((deltas > tolerance)).any())
    if decreases and not increases:
        return "improves"
    if increases and not decreases:
        return "degrades"
    return "varies"


def categorize_requests(
    measurements: MeasurementSet, *, tolerance: float = 1e-9
) -> CategoryBreakdown:
    """Assign every request to an accuracy-latency behaviour category.

    Args:
        measurements: The service's measurement set.
        tolerance: Error changes smaller than this are treated as "no
            change" (useful for continuous metrics such as WER).
    """
    order = np.argsort(
        [measurements.mean_latency(v) for v in measurements.versions]
    )
    ordered_versions = tuple(measurements.versions[i] for i in order)
    error = measurements.error[:, order]
    assignments = tuple(
        _classify_row(error[i], tolerance) for i in range(measurements.n_requests)
    )
    return CategoryBreakdown(
        service=measurements.service,
        versions_by_latency=ordered_versions,
        assignments=assignments,
        request_ids=measurements.request_ids,
    )


def error_by_category(
    measurements: MeasurementSet,
    breakdown: CategoryBreakdown | None = None,
    *,
    include_all: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Mean error per category for every service version (paper Fig. 3).

    Args:
        measurements: The service's measurement set.
        breakdown: Optional precomputed category breakdown.
        include_all: Also include the ``"all"`` group covering every request
            (the paper's "all" bars).

    Returns:
        ``{group: {version: mean_error}}`` where groups are the category
        names (excluding ``unchanged``, which the paper omits because it is
        unaffected by the configuration) plus optionally ``"all"``.
    """
    if breakdown is None:
        breakdown = categorize_requests(measurements)
    groups: Dict[str, Sequence[int]] = {}
    for name in CATEGORY_NAMES:
        if name == "unchanged":
            continue
        indices = breakdown.indices_of(name)
        if indices:
            groups[name] = indices
    if include_all:
        groups["all"] = list(range(measurements.n_requests))

    result: Dict[str, Dict[str, float]] = {}
    for group, indices in groups.items():
        rows = measurements.error[np.asarray(indices, dtype=int)]
        result[group] = {
            version: float(rows[:, j].mean())
            for j, version in enumerate(measurements.versions)
        }
    return result
