"""Plain-text table rendering for the benchmark harnesses.

Every benchmark prints the rows/series its paper figure or table reports;
this helper keeps that output aligned and consistent without pulling in a
plotting or table dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = ".4f",
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Args:
        headers: Column headers.
        rows: Row values; each row must have ``len(headers)`` entries.
        float_format: ``format()`` spec applied to float cells.
        title: Optional title printed above the table.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append([_render_cell(cell, float_format) for cell in row])

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line([str(h) for h in headers]))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)
