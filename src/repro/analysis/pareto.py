"""Accuracy-latency Pareto analysis of service versions (paper Fig. 1).

A service version is Pareto-optimal when no other version is both faster
and at least as accurate.  The paper's seven ASR configurations were chosen
to lie on this frontier; for image classification some published networks
(e.g. VGG-16 vs ResNet-50) are dominated, and the frontier extraction makes
that visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.service.measurement import MeasurementSet

__all__ = ["ParetoPoint", "pareto_frontier", "version_pareto"]


@dataclass(frozen=True)
class ParetoPoint:
    """One service version's operating point.

    Attributes:
        version: Service-version name.
        mean_latency_s: Mean processing latency.
        mean_error: Mean per-request error.
        on_frontier: Whether the point is Pareto-optimal.
    """

    version: str
    mean_latency_s: float
    mean_error: float
    on_frontier: bool


def pareto_frontier(
    latencies: Sequence[float], errors: Sequence[float]
) -> List[bool]:
    """Mark which (latency, error) points are Pareto-optimal.

    Both objectives are minimised.  A point is dominated when another point
    has latency <= and error <= with at least one strict inequality.

    Args:
        latencies: Mean latency per version.
        errors: Mean error per version (aligned).

    Returns:
        A list of booleans aligned with the inputs; True means the point is
        on the frontier.
    """
    lat = np.asarray(latencies, dtype=float)
    err = np.asarray(errors, dtype=float)
    if lat.shape != err.shape:
        raise ValueError("latencies and errors must have the same length")
    if lat.size == 0:
        return []
    flags: List[bool] = []
    for i in range(lat.size):
        dominated = np.any(
            (lat <= lat[i])
            & (err <= err[i])
            & ((lat < lat[i]) | (err < err[i]))
        )
        flags.append(not bool(dominated))
    return flags


def version_pareto(measurements: MeasurementSet) -> Tuple[ParetoPoint, ...]:
    """Per-version operating points with Pareto flags, fastest first.

    Args:
        measurements: The service's measurement set.
    """
    versions = measurements.versions
    latencies = [measurements.mean_latency(v) for v in versions]
    errors = [measurements.mean_error(v) for v in versions]
    flags = pareto_frontier(latencies, errors)
    points = [
        ParetoPoint(
            version=v,
            mean_latency_s=latencies[i],
            mean_error=errors[i],
            on_frontier=flags[i],
        )
        for i, v in enumerate(versions)
    ]
    points.sort(key=lambda p: p.mean_latency_s)
    return tuple(points)
