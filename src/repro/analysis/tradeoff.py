"""Per-version trade-off summaries and latency distributions (Fig. 2a-d).

These helpers aggregate a measurement set into the per-version statistics
the paper plots when motivating the limitation study: mean/percentile
latencies, mean errors, and normalised views (speed-up versus the slowest
version, error relative to the most accurate version).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.service.measurement import MeasurementSet

__all__ = ["VersionSummary", "latency_percentiles", "version_summaries"]


@dataclass(frozen=True)
class VersionSummary:
    """Aggregate statistics of one service version.

    Attributes:
        version: Service-version name.
        mean_error: Mean per-request error.
        mean_latency_s: Mean processing latency.
        p99_latency_s: 99th-percentile latency.
        latency_vs_fastest: Mean latency normalised to the fastest version.
        error_vs_best: Relative error degradation versus the most accurate
            version (``(err - err_best) / err_best``).
        mean_confidence: Mean model confidence.
    """

    version: str
    mean_error: float
    mean_latency_s: float
    p99_latency_s: float
    latency_vs_fastest: float
    error_vs_best: float
    mean_confidence: float


def version_summaries(measurements: MeasurementSet) -> Tuple[VersionSummary, ...]:
    """Summarise every version of a measurement set, fastest first."""
    mean_latencies = {
        v: measurements.mean_latency(v) for v in measurements.versions
    }
    mean_errors = {v: measurements.mean_error(v) for v in measurements.versions}
    fastest_latency = min(mean_latencies.values())
    best_error = min(mean_errors.values())

    summaries = []
    for version in measurements.versions:
        latency_column = measurements.column(version, "latency_s")
        confidence_column = measurements.column(version, "confidence")
        error = mean_errors[version]
        summaries.append(
            VersionSummary(
                version=version,
                mean_error=error,
                mean_latency_s=mean_latencies[version],
                p99_latency_s=float(np.percentile(latency_column, 99)),
                latency_vs_fastest=mean_latencies[version] / fastest_latency,
                error_vs_best=(error - best_error) / best_error
                if best_error > 0
                else 0.0,
                mean_confidence=float(confidence_column.mean()),
            )
        )
    summaries.sort(key=lambda s: s.mean_latency_s)
    return tuple(summaries)


def latency_percentiles(
    measurements: MeasurementSet,
    *,
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 95, 99),
) -> Dict[str, Dict[str, float]]:
    """Latency percentiles per version (the Fig. 2a-d distribution view).

    Args:
        measurements: The service's measurement set.
        percentiles: Which percentiles to report.

    Returns:
        ``{version: {"p50": ..., "p90": ..., ...}}``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for version in measurements.versions:
        column = measurements.column(version, "latency_s")
        out[version] = {
            f"p{int(q)}": float(np.percentile(column, q)) for q in percentiles
        }
    return out
