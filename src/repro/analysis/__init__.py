"""Analysis of the "one size fits all" limitation (paper Section III).

These modules consume a :class:`~repro.service.measurement.MeasurementSet`
and produce the quantities behind the paper's Figures 1-3 and the Section
III-E summary:

* :mod:`repro.analysis.pareto` -- accuracy/latency Pareto frontier over
  service versions (Fig. 1).
* :mod:`repro.analysis.categories` -- per-request accuracy-latency behaviour
  categories: unchanged / improves / degrades / varies (Fig. 2e-f) and the
  per-category error across versions (Fig. 3).
* :mod:`repro.analysis.tradeoff` -- per-version summaries and latency
  distributions (Fig. 2a-d).
* :mod:`repro.analysis.summary` -- the Section III-E headline numbers.
* :mod:`repro.analysis.tables` -- plain-text table rendering for the
  benchmark harnesses.
"""

from repro.analysis.categories import (
    CATEGORY_NAMES,
    CategoryBreakdown,
    categorize_requests,
    error_by_category,
)
from repro.analysis.pareto import ParetoPoint, pareto_frontier, version_pareto
from repro.analysis.summary import OsfaLimitSummary, osfa_limit_summary
from repro.analysis.tables import format_table
from repro.analysis.tradeoff import VersionSummary, latency_percentiles, version_summaries

__all__ = [
    "CATEGORY_NAMES",
    "CategoryBreakdown",
    "OsfaLimitSummary",
    "ParetoPoint",
    "VersionSummary",
    "categorize_requests",
    "error_by_category",
    "format_table",
    "latency_percentiles",
    "osfa_limit_summary",
    "pareto_frontier",
    "version_pareto",
    "version_summaries",
]
