"""Section III-E headline numbers for the "one size fits all" limitation.

The paper closes its limitation study with two quantitative claims:

* for ASR, a 2.6x increase in response time buys an error reduction of
  over 9 %;
* for image classification, a 5x response-time increase buys an error
  reduction of over 65 %.

:func:`osfa_limit_summary` computes the analogous quantities for any
measurement set: the latency ratio between the most accurate and the
fastest version, and the relative error reduction that latency buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.measurement import MeasurementSet

__all__ = ["OsfaLimitSummary", "osfa_limit_summary"]


@dataclass(frozen=True)
class OsfaLimitSummary:
    """Headline trade-off numbers for one service.

    Attributes:
        service: Service name.
        fastest_version: Version with the lowest mean latency.
        most_accurate_version: Version with the lowest mean error.
        latency_ratio: Mean latency of the most accurate version divided by
            the fastest version's.
        error_reduction: Relative error reduction the slow version provides
            over the fast one (``1 - err_accurate / err_fast``).
        fastest_error: Mean error of the fastest version.
        most_accurate_error: Mean error of the most accurate version.
    """

    service: str
    fastest_version: str
    most_accurate_version: str
    latency_ratio: float
    error_reduction: float
    fastest_error: float
    most_accurate_error: float


def osfa_limit_summary(measurements: MeasurementSet) -> OsfaLimitSummary:
    """Compute the Section III-E headline numbers for a measurement set."""
    fastest = measurements.fastest_version()
    most_accurate = measurements.most_accurate_version()
    fast_latency = measurements.mean_latency(fastest)
    accurate_latency = measurements.mean_latency(most_accurate)
    fast_error = measurements.mean_error(fastest)
    accurate_error = measurements.mean_error(most_accurate)
    error_reduction = 0.0
    if fast_error > 0.0:
        error_reduction = 1.0 - accurate_error / fast_error
    return OsfaLimitSummary(
        service=measurements.service,
        fastest_version=fastest,
        most_accurate_version=most_accurate,
        latency_ratio=accurate_latency / fast_latency if fast_latency > 0 else 0.0,
        error_reduction=error_reduction,
        fastest_error=fast_error,
        most_accurate_error=accurate_error,
    )
