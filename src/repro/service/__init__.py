"""MLaaS cloud-service substrate.

Everything in this package is machine-learning-agnostic: it models the
cloud side of an MLaaS deployment the way the paper describes it —
scale-out pools of *service nodes*, each running one *service version* on
one *instance type*, fronted by a load balancer, and billed per invocation
and per node-hour.

* :mod:`repro.service.request` -- service requests/responses, including the
  ``Tolerance`` / ``Objective`` annotation headers of the paper's API.
* :mod:`repro.service.instances` -- the instance-type catalogue (CPU/GPU
  hourly prices), standing in for the IBM Bluemix / AWS price lists the
  paper cites.
* :mod:`repro.service.pricing` -- invocation-cost and IaaS-cost models.
* :mod:`repro.service.node` -- service nodes and the service-version
  protocol they host.
* :mod:`repro.service.load_balancer` -- request dispatch across node pools.
* :mod:`repro.service.cluster` -- scale-out deployments ("one size fits
  all" or multi-version).
* :mod:`repro.service.measurement` -- per-request, per-version measurement
  records: the substrate the Tolerance Tiers rule generator and the
  limitation analysis both operate on.
* :mod:`repro.service.simulation` -- the discrete-event serving simulator:
  offered-load arrival processes, per-node FIFO queues, request batching
  and pool autoscaling over the same deployments.
* :mod:`repro.service.gateway` -- the unified Tolerance Tiers serving
  gateway: one session-based client API (:class:`TierGateway`) over
  pluggable execution backends (live dispatch, measurement replay, or the
  discrete-event simulator).  Imported lazily — ``import
  repro.service.gateway`` — because it builds on both this package and
  :mod:`repro.core`.
* :mod:`repro.service.regions` -- multi-region sharded serving: per-region
  engine shards under spawned RNG streams, locality-first routing with
  cross-region failover, a deterministic boundary-event merge, and
  optional worker-process parallelism with bit-identical digests.
  Imported lazily — ``import repro.service.regions`` — it layers over
  simulation, control and the load balancer.
"""

from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.instances import (
    INSTANCE_CATALOG,
    InstanceType,
    get_instance_type,
)
from repro.service.load_balancer import (
    JoinShortestQueuePolicy,
    LeastBusyPolicy,
    LoadBalancer,
    RoundRobinPolicy,
)
from repro.service.measurement import (
    MeasurementSet,
    VersionMeasurement,
    measure_asr_service,
    measure_ic_service,
    measure_mini_ic_service,
)
from repro.service.node import (
    NodeCompletion,
    QueuedRequest,
    ServiceNode,
    ServiceVersion,
    VersionResult,
)
from repro.service.pricing import CostBreakdown, PricingModel
from repro.service.request import Objective, ServiceRequest, ServiceResponse

__all__ = [
    "ClusterDeployment",
    "CostBreakdown",
    "INSTANCE_CATALOG",
    "InstanceType",
    "JoinShortestQueuePolicy",
    "LeastBusyPolicy",
    "LoadBalancer",
    "MeasurementSet",
    "NodeCompletion",
    "NodePool",
    "Objective",
    "PricingModel",
    "QueuedRequest",
    "RoundRobinPolicy",
    "ServiceNode",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceVersion",
    "VersionMeasurement",
    "VersionResult",
    "get_instance_type",
    "measure_asr_service",
    "measure_ic_service",
    "measure_mini_ic_service",
]
