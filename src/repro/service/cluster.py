"""Scale-out cluster deployments.

A deployment is a set of node pools — one pool per service version — plus
the pricing model that bills work done on them.  The conventional
"one size fits all" deployment is the special case of a single pool running
the provider's chosen version; a Tolerance Tiers deployment keeps pools for
several versions so the routing policies have somewhere to send requests.

Deployments serve through two interfaces that share one execution path:

* the synchronous replay calls (:meth:`ClusterDeployment.serve_with_version`
  / :meth:`ClusterDeployment.raw_dispatch`) kept for the measurement-replay
  benchmarks, and
* the async-style :meth:`ClusterDeployment.submit` /
  :meth:`ClusterDeployment.drain` pair, which enqueues onto per-node FIFO
  queues and is what the discrete-event engine in
  :mod:`repro.service.simulation` paces under a virtual clock.

Pools can also grow and shrink at runtime
(:meth:`ClusterDeployment.add_nodes` / :meth:`ClusterDeployment.remove_node`)
so the simulation autoscaler has something to actuate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.service.instances import InstanceType
from repro.service.load_balancer import LoadBalancer
from repro.service.node import ServiceNode, ServiceVersion, VersionResult
from repro.service.pricing import CostBreakdown, PricingModel
from repro.service.request import ServiceRequest, ServiceResponse

__all__ = ["ClusterDeployment", "NodePool"]


@dataclass(frozen=True)
class NodePool:
    """Specification of one version's pool.

    Attributes:
        version: The service version hosted by the pool.
        instance_type: Machine type of every node in the pool.
        n_nodes: Number of identical nodes.
    """

    version: ServiceVersion
    instance_type: InstanceType
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    def build_node(self) -> ServiceNode:
        """Instantiate one node to the pool's specification."""
        return ServiceNode(self.version, self.instance_type)

    def build_nodes(self) -> List[ServiceNode]:
        """Instantiate the pool's nodes."""
        return [self.build_node() for _ in range(self.n_nodes)]


class ClusterDeployment:
    """A running deployment: node pools, a load balancer and pricing.

    Args:
        pools: Pool specification per service-version name.
        per_request_fee: Platform fee billed per invocation.
        markup: Consumer-billing markup over raw IaaS cost.
        selection_policy: Within-pool node selection policy, forwarded to
            the :class:`~repro.service.load_balancer.LoadBalancer`
            (round-robin when omitted).
    """

    def __init__(
        self,
        pools: Mapping[str, NodePool],
        *,
        per_request_fee: float = 0.0,
        markup: float = 3.0,
        selection_policy=None,
    ) -> None:
        if not pools:
            raise ValueError("a deployment needs at least one pool")
        self._pool_specs = dict(pools)
        # The load balancer is the single source of truth for pool
        # membership; the deployment never keeps its own node lists.
        self.load_balancer = LoadBalancer(
            {name: spec.build_nodes() for name, spec in self._pool_specs.items()},
            selection_policy=selection_policy,
        )
        # IaaS cost of nodes evicted by scale-down, so iaas_spend() keeps
        # counting money already spent on machines no longer in the pool.
        self._retired_iaas: Dict[str, float] = {
            name: 0.0 for name in self._pool_specs
        }
        # Busy node-seconds of retired (scaled-down or crashed) nodes, so
        # billed work can be reconciled against total machine time even
        # after the machines that did it left the pool.
        self._retired_busy: Dict[str, float] = {
            name: 0.0 for name in self._pool_specs
        }
        self.pricing = PricingModel(
            {name: spec.instance_type for name, spec in self._pool_specs.items()},
            per_request_fee=per_request_fee,
            markup=markup,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def one_size_fits_all(
        cls,
        version: ServiceVersion,
        instance_type: InstanceType,
        *,
        n_nodes: int = 1,
        **pricing_kwargs,
    ) -> "ClusterDeployment":
        """The conventional deployment: one version scaled out everywhere."""
        pool = NodePool(version=version, instance_type=instance_type, n_nodes=n_nodes)
        return cls({version.name: pool}, **pricing_kwargs)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @property
    def versions(self) -> Tuple[str, ...]:
        """Versions the deployment can serve."""
        return self.load_balancer.versions

    def serve_with_version(
        self, version: str, request: ServiceRequest
    ) -> ServiceResponse:
        """Serve one request with one specific version (no ensembling).

        Delegates to the :meth:`submit` / :meth:`drain` queueing path, so a
        replayed request and a simulated one execute identically — the only
        difference is who advances the clock.

        Billing note: the invocation cost is computed from the *wall*
        node-seconds the request consumed (compute divided by the node's
        speed factor), matching the live endpoint in :mod:`repro.core.api`.
        Earlier revisions billed baseline compute-seconds, which overstated
        cost on faster-than-baseline instances.

        Raises:
            RuntimeError: If requests are already queued anywhere on the
                deployment — draining them here would execute and discard
                their responses; call :meth:`drain` first.
        """
        pending = {v: d for v, d in self.queue_depths().items() if d}
        if pending:
            raise RuntimeError(
                f"deployment has queued work {pending}; drain() it before "
                "calling serve_with_version()"
            )
        self.submit(version, request)
        responses = self.drain()
        for response in responses:
            if response.request_id == request.request_id:
                return response
        raise RuntimeError(
            f"request {request.request_id!r} was submitted but never drained"
        )

    # ------------------------------------------------------------------
    # async-style queueing interface
    # ------------------------------------------------------------------
    def submit(
        self, version: str, request: ServiceRequest, *, now: float = 0.0
    ) -> ServiceNode:
        """Enqueue a request on a node of ``version``'s pool.

        Returns the node the load balancer chose.  Nothing executes until
        :meth:`drain` (replay path) or the simulation engine's event loop
        (load-test path) runs the queues.
        """
        return self.load_balancer.submit(
            version, request.request_id, request.payload, now=now
        )

    def drain(self, *, now: float = 0.0, batching=None) -> List[ServiceResponse]:
        """Execute all queued work and bill each completion.

        Args:
            now: Virtual time draining starts.
            batching: Optional
                :class:`~repro.service.simulation.batching.BatchingConfig`;
                batched requests are billed their amortized share of the
                batch's node-seconds.

        Returns:
            One :class:`ServiceResponse` per completed request, in
            execution order across pools.
        """
        responses: List[ServiceResponse] = []
        for version, completions in self.load_balancer.drain(
            now=now, batching=batching
        ).items():
            for completion in completions:
                cost = self.pricing.request_cost(
                    {version: completion.amortized_seconds}
                )
                responses.append(
                    ServiceResponse(
                        request_id=completion.result.request_id,
                        result=completion.result.output,
                        versions_used=(version,),
                        response_time_s=completion.service_time_s,
                        invocation_cost=cost.invocation_cost,
                        tier=None,
                        confidence=completion.result.confidence,
                    )
                )
        return responses

    def queue_depths(self) -> Dict[str, int]:
        """Requests queued (not yet started) per version."""
        return self.load_balancer.queue_depths()

    # ------------------------------------------------------------------
    # pool scaling (autoscaler actuation)
    # ------------------------------------------------------------------
    def pool_sizes(self) -> Dict[str, int]:
        """Current node count per version."""
        return {
            version: self.load_balancer.pool_size(version)
            for version in self.load_balancer.versions
        }

    def add_nodes(self, version: str, n: int = 1) -> List[ServiceNode]:
        """Grow a version's pool by ``n`` freshly built nodes."""
        if n < 1:
            raise ValueError("must add at least one node")
        try:
            spec = self._pool_specs[version]
        except KeyError:
            raise KeyError(
                f"unknown service version {version!r}; registered versions "
                f"are {sorted(self._pool_specs)}"
            ) from None
        added = []
        for _ in range(n):
            node = spec.build_node()
            self.load_balancer.add_node(version, node)
            added.append(node)
        return added

    def remove_node(
        self,
        version: str,
        *,
        now: Optional[float] = None,
        only_idle: bool = True,
    ) -> Optional[ServiceNode]:
        """Shrink a version's pool by one idle node (see
        :meth:`~repro.service.load_balancer.LoadBalancer.remove_node`).

        The removed node's accumulated IaaS cost stays on the deployment's
        books — :meth:`iaas_spend` reports money spent, and eviction does
        not refund it.
        """
        node = self.load_balancer.remove_node(
            version, now=now, only_idle=only_idle
        )
        if node is not None:
            self._retired_iaas[version] += node.accumulated_cost
            self._retired_busy[version] += node.busy_seconds
        return node

    def kill_node(self, version: str, node: ServiceNode, *, now: float):
        """Crash a specific node: the fault-injection actuation path.

        The node is marked dead with its in-progress work truncated at
        ``now`` (see :meth:`~repro.service.node.ServiceNode.kill` — the
        caller aborts the running batch itself, since it owns the
        completion events), evicted from the pool, and its spend and busy
        time are moved to the retired books.

        Returns:
            The queued (not yet started) requests the dead node was
            holding; the caller must requeue them onto survivors.
        """
        items = self.load_balancer.evict_node(version, node)
        if node.alive:
            node.kill(now=now)
        self._retired_iaas[version] += node.accumulated_cost
        self._retired_busy[version] += node.busy_seconds
        return items

    def raw_dispatch(
        self, version: str, request: ServiceRequest
    ) -> Tuple[VersionResult, float]:
        """Low-level dispatch used by the Tolerance Tiers policy executor."""
        return self.load_balancer.dispatch(
            version, request.request_id, request.payload
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def cost_of(self, node_seconds_by_version: Mapping[str, float]) -> CostBreakdown:
        """Price an arbitrary bundle of node-seconds on this deployment."""
        return self.pricing.request_cost(node_seconds_by_version)

    def total_busy_seconds(self) -> Dict[str, float]:
        """Busy node-seconds per version, including retired nodes.

        This is the reconciliation-side of the books: every node-second a
        request was ever billed for must have been worked *somewhere*, and
        scale-down or a crash must not make that work disappear.
        """
        live = self.load_balancer.total_busy_seconds()
        return {
            name: self._retired_busy[name] + seconds
            for name, seconds in live.items()
        }

    def iaas_spend(self) -> Dict[str, float]:
        """Accumulated IaaS cost per version since deployment (or reset).

        Includes the spend of nodes that have since been removed by
        scale-down.
        """
        return {
            name: self._retired_iaas[name]
            + sum(
                node.accumulated_cost
                for node in self.load_balancer.nodes_of(name)
            )
            for name in self.load_balancer.versions
        }

    def reset_accounting(self) -> None:
        """Zero all per-node accounting counters and retired-node spend."""
        for name in self.load_balancer.versions:
            self._retired_iaas[name] = 0.0
            self._retired_busy[name] = 0.0
            for node in self.load_balancer.nodes_of(name):
                node.reset_accounting()
