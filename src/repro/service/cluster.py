"""Scale-out cluster deployments.

A deployment is a set of node pools — one pool per service version — plus
the pricing model that bills work done on them.  The conventional
"one size fits all" deployment is the special case of a single pool running
the provider's chosen version; a Tolerance Tiers deployment keeps pools for
several versions so the routing policies have somewhere to send requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.service.instances import InstanceType
from repro.service.load_balancer import LoadBalancer
from repro.service.node import ServiceNode, ServiceVersion, VersionResult
from repro.service.pricing import CostBreakdown, PricingModel
from repro.service.request import ServiceRequest, ServiceResponse

__all__ = ["ClusterDeployment", "NodePool"]


@dataclass(frozen=True)
class NodePool:
    """Specification of one version's pool.

    Attributes:
        version: The service version hosted by the pool.
        instance_type: Machine type of every node in the pool.
        n_nodes: Number of identical nodes.
    """

    version: ServiceVersion
    instance_type: InstanceType
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    def build_nodes(self) -> List[ServiceNode]:
        """Instantiate the pool's nodes."""
        return [
            ServiceNode(self.version, self.instance_type)
            for _ in range(self.n_nodes)
        ]


class ClusterDeployment:
    """A running deployment: node pools, a load balancer and pricing.

    Args:
        pools: Pool specification per service-version name.
        per_request_fee: Platform fee billed per invocation.
        markup: Consumer-billing markup over raw IaaS cost.
    """

    def __init__(
        self,
        pools: Mapping[str, NodePool],
        *,
        per_request_fee: float = 0.0,
        markup: float = 3.0,
    ) -> None:
        if not pools:
            raise ValueError("a deployment needs at least one pool")
        self._pool_specs = dict(pools)
        self._nodes: Dict[str, List[ServiceNode]] = {
            name: spec.build_nodes() for name, spec in self._pool_specs.items()
        }
        self.load_balancer = LoadBalancer(self._nodes)
        self.pricing = PricingModel(
            {name: spec.instance_type for name, spec in self._pool_specs.items()},
            per_request_fee=per_request_fee,
            markup=markup,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def one_size_fits_all(
        cls,
        version: ServiceVersion,
        instance_type: InstanceType,
        *,
        n_nodes: int = 1,
        **pricing_kwargs,
    ) -> "ClusterDeployment":
        """The conventional deployment: one version scaled out everywhere."""
        pool = NodePool(version=version, instance_type=instance_type, n_nodes=n_nodes)
        return cls({version.name: pool}, **pricing_kwargs)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @property
    def versions(self) -> Tuple[str, ...]:
        """Versions the deployment can serve."""
        return self.load_balancer.versions

    def serve_with_version(
        self, version: str, request: ServiceRequest
    ) -> ServiceResponse:
        """Serve one request with one specific version (no ensembling)."""
        result, latency = self.load_balancer.dispatch(
            version, request.request_id, request.payload
        )
        cost = self.pricing.request_cost({version: result.compute_seconds})
        return ServiceResponse(
            request_id=request.request_id,
            result=result.output,
            versions_used=(version,),
            response_time_s=latency,
            invocation_cost=cost.invocation_cost,
            tier=None,
            confidence=result.confidence,
        )

    def raw_dispatch(
        self, version: str, request: ServiceRequest
    ) -> Tuple[VersionResult, float]:
        """Low-level dispatch used by the Tolerance Tiers policy executor."""
        return self.load_balancer.dispatch(
            version, request.request_id, request.payload
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def cost_of(self, node_seconds_by_version: Mapping[str, float]) -> CostBreakdown:
        """Price an arbitrary bundle of node-seconds on this deployment."""
        return self.pricing.request_cost(node_seconds_by_version)

    def iaas_spend(self) -> Dict[str, float]:
        """Accumulated IaaS cost per version since deployment (or reset)."""
        spend: Dict[str, float] = {}
        for name, nodes in self._nodes.items():
            spend[name] = sum(node.accumulated_cost for node in nodes)
        return spend

    def reset_accounting(self) -> None:
        """Zero all per-node accounting counters."""
        for nodes in self._nodes.values():
            for node in nodes:
                node.reset_accounting()
