"""One region shard: an independent engine run plus its local analysis.

:func:`run_shard` is the unit of work a multi-region run fans out — the
same function executes serially in-process and on
``ProcessPoolExecutor`` workers, which is what makes the parallel run
digest-identical to the serial one: there is exactly one code path.

A shard builds its region's replay cluster, autoscaler and (optional)
control plane exactly as :func:`run_scenario` would, submits the
planned workload explicitly (kept local arrivals in draw order, then
incoming failover traffic), drains, and then does every per-region
analysis *inside the worker* so it parallelises with the simulation:
the shard report digest, the summary, the user-perceived latency array
(failover traffic pays its round trip), and the region SLO replay —
debounced :class:`SLOMonitor` evaluation over the region's own
telemetry window, emitting region-named control entries
(``region-slo`` transitions and ``region-decision`` advisories saying
*which region* to shed or adapt).

The returned :class:`ShardResult` is deliberately lean — digest,
summary, merge arrays and logs, not ~10^5 record objects — so pickling
results back from workers cannot eat the parallel speedup.  Pass
``keep_report=True`` (serial convenience) to retain the full
:class:`LoadTestReport`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.control.plane import ControlLogEntry, ControlPlane
from repro.service.control.slo import SLOMonitor, SLOState
from repro.service.control.telemetry import TelemetryHub
from repro.service.measurement import MeasurementSet
from repro.service.regions.router import PlannedSubmission
from repro.service.regions.spec import RegionSpec
from repro.service.request import ServiceRequest
from repro.service.simulation.autoscaler import Autoscaler
from repro.service.simulation.engine import ServingSimulator
from repro.service.simulation.replay import build_replay_cluster
from repro.service.simulation.report import LoadTestReport
from repro.service.simulation.scenarios import ScenarioSpec

__all__ = ["ShardResult", "ShardTask", "run_shard"]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs — picklable, fully self-contained.

    ``scenario`` already carries the spawned shard seed (the plan phase
    substituted it), and ``engine`` is resolved by the parent before
    fan-out so a worker's environment cannot change engine selection.
    """

    region: RegionSpec
    index: int
    scenario: ScenarioSpec
    measurements: MeasurementSet
    submissions: Tuple[PlannedSubmission, ...]
    offered_rate: Optional[float]
    n_assigned: int
    n_kept: int
    n_outgoing: int
    n_denied: int
    engine: Optional[str] = None
    check_invariants: bool = False
    keep_report: bool = False
    #: Record one span tree per request (see :mod:`repro.obs`).  The
    #: shard builds its own collector inside the worker and ships the
    #: traces back as plain dicts, so tracing stays picklable and the
    #: parallel run merges to the same trace stream as the serial one.
    trace: bool = False


@dataclass
class ShardResult:
    """One region's contribution to the merged multi-region report.

    Attributes:
        region: Region name.
        index: Declaration index in the multi-region spec.
        shard_seed: The spawned root seed the shard ran under.
        digest: The shard report's digest (or the canonical empty-shard
            digest when every arrival failed over and none arrived).
        summary: The shard report's flat summary dict (zeros when empty).
        engine_used: Execution engine that actually ran the shard.
        fallback_reason: Why a columnar-requested shard fell back.
        n_submitted / n_local / n_incoming: Workload accounting.
        n_assigned / n_outgoing / n_denied: Routing accounting (from
            the plan; conservation checks tie the two together).
        n_completed / n_failed / n_shed: Outcome accounting.
        user_latencies_ok: User-perceived response time of every
            answered request (in-region response plus the inter-region
            round trip for failover traffic), for global percentiles.
        last_finished_s: Latest request finish time (0.0 when empty).
        total_cost: Summed invocation cost.
        fault_log / control_log: The shard engine's logs.
        slo_log: Region SLO replay entries (region-named).
        final_pool_sizes: Pool sizes at drain.
        report: The full shard report when ``keep_report`` was set.
        trace_dicts: One dict per recorded trace (completion order)
            when the task asked for tracing — picklable form of
            :class:`~repro.obs.trace.Trace`.
        trace_run_events: Recorded run-level events as
            ``(time_s, kind, detail, region)`` tuples.
    """

    region: str
    index: int
    shard_seed: int
    digest: str
    summary: Dict[str, float]
    engine_used: Optional[str]
    fallback_reason: Optional[str]
    n_submitted: int
    n_local: int
    n_incoming: int
    n_assigned: int
    n_outgoing: int
    n_denied: int
    n_completed: int
    n_failed: int
    n_shed: int
    user_latencies_ok: np.ndarray
    last_finished_s: float
    total_cost: float
    fault_log: List[object] = field(default_factory=list)
    control_log: List[object] = field(default_factory=list)
    slo_log: List[ControlLogEntry] = field(default_factory=list)
    final_pool_sizes: Dict[str, int] = field(default_factory=dict)
    report: Optional[LoadTestReport] = None
    trace_dicts: Optional[List[dict]] = None
    trace_run_events: Optional[List[Tuple[float, str, str, Optional[str]]]] = (
        None
    )


def _empty_result(task: ShardTask) -> ShardResult:
    """A shard whose workload fully failed over ran nothing at all."""
    digest = hashlib.sha256(
        f"empty-shard:{task.region.name}".encode()
    ).hexdigest()
    return ShardResult(
        region=task.region.name,
        index=task.index,
        shard_seed=task.scenario.seed,
        digest=digest,
        summary={},
        engine_used=None,
        fallback_reason=None,
        n_submitted=0,
        n_local=0,
        n_incoming=0,
        n_assigned=task.n_assigned,
        n_outgoing=task.n_outgoing,
        n_denied=task.n_denied,
        n_completed=0,
        n_failed=0,
        n_shed=0,
        user_latencies_ok=np.empty(0, dtype=float),
        last_finished_s=0.0,
        total_cost=0.0,
        trace_dicts=[] if task.trace else None,
        trace_run_events=[] if task.trace else None,
    )


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one region shard end to end (simulate + analyse)."""
    if not task.submissions:
        return _empty_result(task)
    scenario = task.scenario
    cluster = build_replay_cluster(task.measurements, dict(scenario.pools))
    autoscaler = (
        Autoscaler(scenario.autoscaler_config)
        if scenario.autoscaler_config is not None
        else None
    )
    control = (
        ControlPlane.from_spec(
            scenario.control,
            measurements=task.measurements,
            configuration=scenario.configuration,
            router=scenario.router,
            seed=scenario.seed,
            deployed_versions=tuple(scenario.pools),
        )
        if scenario.control is not None
        else None
    )
    recorder = None
    collector = None
    if task.trace:
        from repro.obs.record import SimTraceRecorder
        from repro.obs.trace import TraceCollector

        collector = TraceCollector()
        recorder = SimTraceRecorder(collector)
        for submission in task.submissions:
            if submission.origin != task.region.name:
                recorder.annotate_failover(
                    submission.request_id,
                    home=submission.origin,
                    served=task.region.name,
                    extra_latency_s=submission.extra_latency_s,
                )
    simulator = ServingSimulator(
        cluster,
        router=scenario.router,
        configuration=scenario.configuration,
        batching=scenario.batching,
        autoscaler=autoscaler,
        faults=scenario.faults,
        retry=scenario.retry,
        check_invariants=task.check_invariants,
        control=control,
        trace=recorder,
        seed=scenario.seed,
        engine=task.engine,
    )
    for submission in task.submissions:
        simulator.submit(
            ServiceRequest(
                request_id=submission.request_id,
                payload=submission.payload,
                tolerance=submission.tolerance,
                objective=submission.objective,
            ),
            at_time=submission.at_time,
        )
    report = simulator.drain()
    report.offered_rate = task.offered_rate

    extra = {
        s.request_id: s.extra_latency_s
        for s in task.submissions
        if s.extra_latency_s
    }
    n_incoming = sum(1 for s in task.submissions if s.origin != task.region.name)

    user_latencies: List[float] = []
    last_finished = 0.0
    total_cost = 0.0
    n_completed = n_failed = n_shed = 0
    slo_log = _RegionSLOReplay(task.region)
    for record in report.records:
        last_finished = max(last_finished, record.finished_s)
        slo_log.publish(record)
        if record.shed:
            n_shed += 1
            continue
        if record.failed:
            n_failed += 1
            continue
        n_completed += 1
        total_cost += record.invocation_cost
        user_latencies.append(
            record.response_time_s + extra.get(record.request_id, 0.0)
        )
    slo_log.finish(last_finished)

    return ShardResult(
        region=task.region.name,
        index=task.index,
        shard_seed=scenario.seed,
        digest=report.digest(),
        summary=report.summary(),
        engine_used=report.engine_used,
        fallback_reason=report.fallback_reason,
        n_submitted=len(task.submissions),
        n_local=len(task.submissions) - n_incoming,
        n_incoming=n_incoming,
        n_assigned=task.n_assigned,
        n_outgoing=task.n_outgoing,
        n_denied=task.n_denied,
        n_completed=n_completed,
        n_failed=n_failed,
        n_shed=n_shed,
        user_latencies_ok=np.asarray(user_latencies, dtype=float),
        last_finished_s=last_finished,
        total_cost=total_cost,
        fault_log=list(report.fault_log),
        control_log=list(report.control_log),
        slo_log=slo_log.entries,
        final_pool_sizes=dict(report.final_pool_sizes),
        report=report if task.keep_report else None,
        trace_dicts=(
            [trace.to_dict() for trace in collector.traces]
            if collector is not None
            else None
        ),
        trace_run_events=(
            list(collector.run_events) if collector is not None else None
        ),
    )


class _RegionSLOReplay:
    """Region SLO monitors over the shard's record stream.

    Records publish into the region's own :class:`TelemetryHub` window
    in completion order; monitors evaluate on the region's tick cadence
    interleaved with publication, exactly as a live control plane
    would.  State transitions log as ``region-slo`` entries and a
    breach additionally logs the ``region-decision`` advisory the
    global control loop acts on: *shed* this region when latency or
    availability breaks, *adapt* it when cost does.
    """

    def __init__(self, region: RegionSpec) -> None:
        self._region = region.name
        self._tick_s = region.slo_tick_s
        self._hub = TelemetryHub(region.slo_window_s)
        self._monitors = [SLOMonitor(slo) for slo in region.slos]
        self._next_tick = region.slo_tick_s
        self._clock = 0.0
        self.entries: List[ControlLogEntry] = []

    def publish(self, record) -> None:
        if not self._monitors:
            return
        # finalization can stamp a finish fractionally before the event
        # that delivered it; the hub needs a non-decreasing clock.
        self._clock = max(self._clock, record.finished_s)
        while self._next_tick <= self._clock:
            self._evaluate(self._next_tick)
            self._next_tick += self._tick_s
        self._hub.publish(record, now=self._clock)

    def finish(self, last_finished_s: float) -> None:
        """One final evaluation after the last record lands."""
        if not self._monitors or self._hub.total_published == 0:
            return
        self._evaluate(max(self._next_tick, last_finished_s))

    def _evaluate(self, now: float) -> None:
        snapshot = self._hub.snapshot(now)
        for monitor in self._monitors:
            status = monitor.evaluate(snapshot)
            if not status.transitioned:
                continue
            pressures = ",".join(
                f"{metric}={ratio:.3f}"
                for metric, ratio in sorted(status.pressures.items())
            )
            self.entries.append(
                ControlLogEntry(
                    time_s=now,
                    kind="region-slo",
                    detail=(
                        f"[{self._region}] {status.name}: "
                        f"{status.state.name.lower()}"
                        + (f" ({pressures})" if pressures else "")
                    ),
                    region=self._region,
                )
            )
            if status.state is SLOState.BREACH:
                action = (
                    "adapt"
                    if max(
                        status.pressures,
                        key=lambda m: status.pressures[m],
                        default="",
                    )
                    == "cost_per_request"
                    else "shed"
                )
                self.entries.append(
                    ControlLogEntry(
                        time_s=now,
                        kind="region-decision",
                        detail=(
                            f"[{self._region}] {action} {self._region}: "
                            f"{status.name} breached"
                        ),
                        region=self._region,
                    )
                )
