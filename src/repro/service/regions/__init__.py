"""Multi-region sharded serving over the engine/gateway/control stack.

The subsystem shards a load test across regions — each with its own
pools, arrival stream, faults and (optionally) closed-loop control —
and runs every region as an independent
:class:`~repro.service.simulation.engine.ServingSimulator` shard under
a spawned RNG stream, optionally on worker processes.  Cross-region
behaviour (locality-first routing, failover when a region is dead,
saturated or partitioned) is planned deterministically up front and
travels as a ``(time, region, seq)``-ordered boundary-event stream, so
the merged :class:`MultiRegionReport` digest is bit-stable across
serial and parallel execution.

* :mod:`repro.service.regions.spec` — :class:`RegionSpec` /
  :class:`MultiRegionSpec` and the spawned-seed discipline.
* :mod:`repro.service.regions.router` — :class:`RegionRouter`, the
  locality-first failover plan and :class:`BoundaryEvent` stream.
* :mod:`repro.service.regions.shard` — one shard's execution and
  per-region analysis (report digest, user-perceived latency, region
  SLO replay), the unit of parallel fan-out.
* :mod:`repro.service.regions.runner` — :func:`run_multi_region`
  (plan -> shard -> merge) and the RNG spawn-key audit.
* :mod:`repro.service.regions.report` — :class:`MultiRegionReport`,
  conservation invariants and the multi-region digest.
* :mod:`repro.service.regions.scenarios` — canonical golden-pinned
  multi-region scenarios.
"""

from repro.service.regions.report import MultiRegionReport, merge_shards
from repro.service.regions.router import (
    BoundaryEvent,
    PlannedSubmission,
    RegionRouter,
    RouterPlan,
    ShardPlan,
)
from repro.service.regions.runner import (
    build_shard_tasks,
    multi_region_streams,
    run_multi_region,
)
from repro.service.regions.scenarios import region_scenarios
from repro.service.regions.shard import ShardResult, ShardTask, run_shard
from repro.service.regions.spec import (
    MultiRegionSpec,
    RegionSpec,
    derive_capacity_rps,
)

__all__ = [
    "BoundaryEvent",
    "MultiRegionReport",
    "MultiRegionSpec",
    "PlannedSubmission",
    "RegionRouter",
    "RegionSpec",
    "RouterPlan",
    "ShardPlan",
    "ShardResult",
    "ShardTask",
    "build_shard_tasks",
    "derive_capacity_rps",
    "merge_shards",
    "multi_region_streams",
    "region_scenarios",
    "run_multi_region",
    "run_shard",
]
