"""The merged view of a multi-region run.

:func:`merge_shards` folds per-shard results and the router's boundary
stream into one :class:`MultiRegionReport`.  The merge is a pure,
order-insensitive function of its inputs — shards are re-sorted into
declaration order, boundary events already carry the ``(time, region,
seq)`` total order — so serial and parallel executions produce the
same object and the same :meth:`MultiRegionReport.digest`.

What the digest covers, and deliberately not: per region (in
declaration order) the shard report digest and the workload/outcome
counts; the boundary-event stream; the region SLO log.  Engine
bookkeeping (``engine_used``, ``fallback_reason``) stays out — which
engine executed a shard is bit-irrelevant to what the shard produced,
and the dual-engine equivalence is pinned by its own tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.regions.router import BoundaryEvent, RouterPlan
from repro.service.regions.shard import ShardResult
from repro.service.regions.spec import MultiRegionSpec

__all__ = ["MultiRegionReport", "merge_shards"]


class ConservationError(AssertionError):
    """A multi-region conservation invariant failed."""


@dataclass
class MultiRegionReport:
    """Bit-stable aggregate of an N-shard multi-region run.

    Attributes:
        spec: The spec that produced the run.
        shards: Per-region results in declaration order.
        boundary_events: The merged cross-shard event stream, totally
            ordered by ``(time, region declaration index, seq)``.
    """

    spec: MultiRegionSpec
    shards: Tuple[ShardResult, ...]
    boundary_events: Tuple[BoundaryEvent, ...]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def shard(self, region: str) -> ShardResult:
        """The named region's shard result."""
        for result in self.shards:
            if result.region == region:
                return result
        raise KeyError(f"unknown region {region!r}")

    @property
    def n_regions(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Requests generated across every region's arrival stream."""
        return sum(s.n_assigned for s in self.shards)

    @property
    def n_failovers(self) -> int:
        return sum(s.n_outgoing for s in self.shards)

    @property
    def n_denied(self) -> int:
        return sum(s.n_denied for s in self.shards)

    @property
    def n_completed(self) -> int:
        return sum(s.n_completed for s in self.shards)

    @property
    def n_failed(self) -> int:
        return sum(s.n_failed for s in self.shards)

    @property
    def n_shed(self) -> int:
        return sum(s.n_shed for s in self.shards)

    @property
    def makespan_s(self) -> float:
        """Latest finish time across every shard's virtual clock."""
        return max((s.last_finished_s for s in self.shards), default=0.0)

    @property
    def goodput_rps(self) -> float:
        span = self.makespan_s
        return self.n_completed / span if span > 0.0 else 0.0

    @property
    def availability(self) -> float:
        total = self.n_completed + self.n_failed + self.n_shed
        return self.n_completed / total if total else float("nan")

    def user_latency_percentile(self, q: float) -> float:
        """Global user-perceived latency percentile (failover pays RTT)."""
        arrays = [
            s.user_latencies_ok
            for s in self.shards
            if s.user_latencies_ok.size
        ]
        if not arrays:
            return float("nan")
        return float(np.percentile(np.concatenate(arrays), q))

    def engine_fallbacks(self) -> Dict[str, str]:
        """Region -> fallback reason, for shards that left columnar."""
        return {
            s.region: s.fallback_reason
            for s in self.shards
            if s.fallback_reason is not None
        }

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a flat dict (for tables/JSON/benches)."""
        return {
            "n_regions": float(self.n_regions),
            "n_requests": float(self.n_requests),
            "n_completed": float(self.n_completed),
            "n_failed": float(self.n_failed),
            "n_shed": float(self.n_shed),
            "n_failovers": float(self.n_failovers),
            "n_failover_denied": float(self.n_denied),
            "n_boundary_events": float(len(self.boundary_events)),
            "availability": self.availability,
            "goodput_rps": self.goodput_rps,
            "makespan_s": self.makespan_s,
            "total_cost": sum(s.total_cost for s in self.shards),
            "p50_user_latency_s": self.user_latency_percentile(50.0),
            "p95_user_latency_s": self.user_latency_percentile(95.0),
            "p99_user_latency_s": self.user_latency_percentile(99.0),
            "n_engine_fallbacks": float(len(self.engine_fallbacks())),
            "n_region_slo_events": float(
                sum(len(s.slo_log) for s in self.shards)
            ),
        }

    def per_region_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-region routing/outcome counters (spec order)."""
        return {
            s.region: {
                "n_assigned": float(s.n_assigned),
                "n_kept": float(s.n_local),
                "n_incoming": float(s.n_incoming),
                "n_outgoing": float(s.n_outgoing),
                "n_denied": float(s.n_denied),
                "n_completed": float(s.n_completed),
                "n_failed": float(s.n_failed),
                "n_shed": float(s.n_shed),
                "total_cost": s.total_cost,
            }
            for s in self.shards
        }

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def verify_conservation(self) -> None:
        """Check request conservation per region and globally.

        Per region: every submitted request resolved exactly once
        (``submitted = completed + failed + shed``) and the submission
        mix reconciles with the routing plan (``submitted = kept +
        incoming``).  Globally: every generated arrival was either kept
        home or failed over (``sum(kept) + sum(outgoing) =
        sum(assigned)``), and incoming matches outgoing.

        Raises:
            ConservationError: Naming the first violated identity.
        """
        for s in self.shards:
            resolved = s.n_completed + s.n_failed + s.n_shed
            if resolved != s.n_submitted:
                raise ConservationError(
                    f"region {s.region!r}: submitted {s.n_submitted} != "
                    f"completed {s.n_completed} + failed {s.n_failed} + "
                    f"shed {s.n_shed}"
                )
            if s.n_local + s.n_incoming != s.n_submitted:
                raise ConservationError(
                    f"region {s.region!r}: local {s.n_local} + incoming "
                    f"{s.n_incoming} != submitted {s.n_submitted}"
                )
            if s.n_local + s.n_outgoing != s.n_assigned:
                raise ConservationError(
                    f"region {s.region!r}: kept {s.n_local} + outgoing "
                    f"{s.n_outgoing} != assigned {s.n_assigned}"
                )
        total_out = sum(s.n_outgoing for s in self.shards)
        total_in = sum(s.n_incoming for s in self.shards)
        if total_out != total_in:
            raise ConservationError(
                f"global: outgoing {total_out} != incoming {total_in}"
            )
        resolved = self.n_completed + self.n_failed + self.n_shed
        if resolved != self.n_requests:
            raise ConservationError(
                f"global: resolved {resolved} != generated {self.n_requests}"
            )

    # ------------------------------------------------------------------
    # determinism
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 digest of the run's observable multi-region behaviour.

        Bit-stable across serial and ``parallel=N`` execution and across
        engines (each shard digest is itself engine-invariant, pinned by
        the dual-engine differential tests).
        """
        h = hashlib.sha256()
        for s in self.shards:
            h.update(
                (
                    f"region:{s.region}|{s.digest}|{s.n_assigned}|"
                    f"{s.n_local}|{s.n_incoming}|{s.n_outgoing}|"
                    f"{s.n_denied}|{s.n_completed}|{s.n_failed}|"
                    f"{s.n_shed}\n"
                ).encode()
            )
        for e in self.boundary_events:
            h.update(
                (
                    f"boundary:{e.time_s:.12e}|{e.region}|{e.seq}|"
                    f"{e.kind}|{e.target or '-'}|{e.detail}\n"
                ).encode()
            )
        for s in self.shards:
            for entry in s.slo_log:
                h.update(
                    (
                        f"slo:{s.region}|{entry.time_s:.12e}|{entry.kind}|"
                        f"{entry.detail}\n"
                    ).encode()
                )
        return h.hexdigest()


def merge_shards(
    plan: RouterPlan, results: Sequence[ShardResult]
) -> MultiRegionReport:
    """Deterministically merge shard results against their routing plan.

    Accepts results in any completion order (workers race); they are
    keyed back to declaration order.  Conservation is verified before
    the report is returned — a merge that loses or double-counts a
    request never reaches the caller.
    """
    expected = plan.spec.region_names
    by_region: Dict[str, ShardResult] = {r.region: r for r in results}
    missing = [name for name in expected if name not in by_region]
    if missing:
        raise ValueError(f"missing shard result(s) for {missing}")
    if len(results) != len(expected):
        extra = sorted(set(by_region) - set(expected))
        raise ValueError(f"unexpected shard result(s) for {extra}")
    report = MultiRegionReport(
        spec=plan.spec,
        shards=tuple(by_region[name] for name in expected),
        boundary_events=plan.boundary_events,
    )
    report.verify_conservation()
    return report
