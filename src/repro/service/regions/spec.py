"""Declarative multi-region serving specs.

A :class:`RegionSpec` wraps one region's :class:`ScenarioSpec` — its
pools, arrival stream, faults, autoscaling and (optionally) closed-loop
control — and adds the region-level vocabulary: SLOs evaluated over the
region's own telemetry window, an advertised capacity for
saturation-driven failover, and a failover preference order.  A
:class:`MultiRegionSpec` composes regions with the inter-region
topology: link latencies, :class:`RegionPartition` windows, and one
root seed from which every shard's RNG streams spawn.

Seeding.  A region's embedded scenario seed is *ignored*: shard ``i``
runs under ``spawn_region_seed(multi_spec.seed, i)`` (a
``SeedSequence``-derived 64-bit root), so regions never share a stream
and a shard is bit-identical to a plain single-region scenario carrying
the same spawned seed — :meth:`MultiRegionSpec.equivalent_scenario`
builds exactly that scenario, and the determinism tests pin the
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.service.control.slo import SLOSpec
from repro.service.measurement import MeasurementSet
from repro.service.simulation.faults import RegionPartition, ThunderingHerd
from repro.service.simulation.replay import build_replay_cluster
from repro.service.simulation.scenarios import ScenarioSpec
from repro.service.simulation.seeds import spawn_region_seed

__all__ = [
    "MultiRegionSpec",
    "RegionSpec",
    "derive_capacity_rps",
]


@dataclass(frozen=True)
class RegionSpec:
    """One region of a multi-region serving deployment.

    Attributes:
        name: Region identifier (``"us-east"``); used in boundary
            events, qualified request ids and the merged report.
        scenario: The region's own load test — pools, arrivals, faults,
            autoscaling, control.  Its ``seed`` field is overridden by
            the spawned shard seed; its ``name`` is kept for the shard
            report.  ``ThunderingHerd`` faults are rejected: the herd
            transform acts on ``run()``-generated workloads, and region
            shards receive their workload by explicit submission.
        slos: Region-level SLOs, evaluated over the region's own
            telemetry window after the shard drains (advisory — they
            name the region in the merged control log; put an SLO in
            ``scenario.control`` to make it *actuate* admission).
        failover: Peer preference order for spillover.  ``None`` tries
            peers in the multi-region spec's declaration order.
        capacity_rps: Advertised request-rate capacity for
            saturation-driven failover; ``None`` disables the saturation
            trigger (dead pools and partitions still apply).  See
            :func:`derive_capacity_rps` for a measurement-derived value.
        saturation_window_s: Trailing window over which kept arrivals
            are counted against ``capacity_rps``.
        saturation_factor: Multiplier on ``capacity_rps`` before an
            arrival spills (``1.25`` tolerates 25 % over-rate bursts).
        slo_window_s: Telemetry window for the region SLO monitors.
        slo_tick_s: Evaluation cadence for the region SLO monitors.
    """

    name: str
    scenario: ScenarioSpec
    slos: Tuple[SLOSpec, ...] = ()
    failover: Optional[Tuple[str, ...]] = None
    capacity_rps: Optional[float] = None
    saturation_window_s: float = 1.0
    saturation_factor: float = 1.0
    slo_window_s: float = 10.0
    slo_tick_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a region needs a name")
        for fault in self.scenario.faults:
            if isinstance(fault, ThunderingHerd):
                raise ValueError(
                    f"region {self.name!r}: ThunderingHerd transforms "
                    "run()-generated arrivals and cannot apply to a "
                    "region shard's explicit submissions"
                )
            if isinstance(fault, RegionPartition):
                raise ValueError(
                    f"region {self.name!r}: RegionPartition belongs in "
                    "MultiRegionSpec.partitions, not a region's fault "
                    "schedule"
                )
        if self.capacity_rps is not None and self.capacity_rps <= 0.0:
            raise ValueError("capacity_rps must be positive")
        if self.saturation_window_s <= 0.0:
            raise ValueError("saturation_window_s must be positive")
        if self.saturation_factor <= 0.0:
            raise ValueError("saturation_factor must be positive")
        if self.slo_window_s <= 0.0 or self.slo_tick_s <= 0.0:
            raise ValueError("slo_window_s / slo_tick_s must be positive")


@dataclass(frozen=True)
class MultiRegionSpec:
    """A sharded multi-region load test.

    Attributes:
        name: Identifier for reports and golden files.
        regions: The member regions, in declaration order (which fixes
            shard indices, spawned seeds and merge tie-breaks).
        partitions: Severed failover links
            (:class:`~repro.service.simulation.faults.RegionPartition`).
        link_latency_s: Default one-way inter-region latency; a failed-
            over request arrives at its target this much later, and its
            user-perceived latency pays the round trip.
        link_latencies: Per-directed-pair overrides, keyed
            ``(src, dst)``.
        seed: Root seed; shard ``i`` spawns
            ``spawn_region_seed(seed, i)``.
    """

    name: str
    regions: Tuple[RegionSpec, ...]
    partitions: Tuple[RegionPartition, ...] = ()
    link_latency_s: float = 0.05
    link_latencies: Mapping[Tuple[str, str], float] = field(
        default_factory=dict
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a multi-region spec needs a name")
        if not self.regions:
            raise ValueError("a multi-region spec needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {sorted(names)}")
        known = set(names)
        for region in self.regions:
            for peer in region.failover or ():
                if peer == region.name:
                    raise ValueError(
                        f"region {region.name!r} lists itself as a "
                        "failover target"
                    )
                if peer not in known:
                    raise ValueError(
                        f"region {region.name!r} lists unknown failover "
                        f"target {peer!r}"
                    )
        for partition in self.partitions:
            if partition.region not in known:
                raise ValueError(
                    f"partition names unknown region {partition.region!r}"
                )
            if partition.peer is not None and partition.peer not in known:
                raise ValueError(
                    f"partition names unknown peer {partition.peer!r}"
                )
        if self.link_latency_s < 0.0:
            raise ValueError("link_latency_s must be non-negative")
        for (src, dst), latency in self.link_latencies.items():
            if src not in known or dst not in known:
                raise ValueError(
                    f"link latency names unknown pair ({src!r}, {dst!r})"
                )
            if latency < 0.0:
                raise ValueError("link latencies must be non-negative")

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def region_names(self) -> Tuple[str, ...]:
        """Region names in declaration (= shard-index) order."""
        return tuple(region.name for region in self.regions)

    def region(self, name: str) -> RegionSpec:
        """The member region called ``name``."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def shard_seed(self, index: int) -> int:
        """Spawned root seed for shard ``index``."""
        if not 0 <= index < len(self.regions):
            raise IndexError(f"no region at index {index}")
        return spawn_region_seed(self.seed, index)

    def failover_order(self, name: str) -> Tuple[str, ...]:
        """Peer preference order for ``name`` (declared or spec order)."""
        region = self.region(name)
        if region.failover is not None:
            return region.failover
        return tuple(n for n in self.region_names if n != name)

    def link_latency(self, src: str, dst: str) -> float:
        """One-way latency of the directed ``src -> dst`` link."""
        return float(self.link_latencies.get((src, dst), self.link_latency_s))

    def link_severed(self, src: str, dst: str, at_s: float) -> bool:
        """Whether any partition severs ``src -> dst`` at ``at_s``."""
        return any(p.severs(src, dst, at_s) for p in self.partitions)

    # ------------------------------------------------------------------
    # single-region equivalence
    # ------------------------------------------------------------------
    def equivalent_scenario(self, index: int = 0) -> ScenarioSpec:
        """The plain :class:`ScenarioSpec` shard ``index`` executes.

        For a 1-region spec with no failover traffic this scenario's
        :func:`~repro.service.simulation.scenarios.run_scenario` report
        is digest-identical to the region's shard report — the anchor
        the determinism suite pins.
        """
        region = self.regions[index]
        return replace(region.scenario, seed=self.shard_seed(index))


def derive_capacity_rps(
    region: RegionSpec, measurements: MeasurementSet
) -> float:
    """Measurement-derived advertised capacity for one region.

    Builds the region's replay pools and asks the load balancer for its
    :meth:`~repro.service.load_balancer.LoadBalancer.advertised_capacity_rps`
    under each version's mean measured latency — the number a production
    region would export from a health endpoint.
    """
    cluster = build_replay_cluster(
        measurements, dict(region.scenario.pools)
    )
    service_times: Dict[str, float] = {
        version: measurements.mean_latency(version)
        for version in region.scenario.pools
    }
    return cluster.load_balancer.advertised_capacity_rps(service_times)
