"""Execute a multi-region run: plan serially, shard anywhere, merge.

:func:`run_multi_region` is the subsystem's entry point.  The three
phases make parallel determinism structural rather than lucky:

1. **Plan** (serial): :class:`~repro.service.regions.router.RegionRouter`
   draws every region's arrivals from its spawned seed stream and fixes
   every failover decision and boundary event up front.
2. **Shard** (serial or ``parallel=N`` worker processes): each region
   executes :func:`~repro.service.regions.shard.run_shard` on a fully
   self-contained task.  Workers share no state and the engine choice
   is resolved *before* fan-out, so a worker's environment cannot
   change behaviour.
3. **Merge** (serial): results key back to declaration order and fold
   with the planned boundary stream into a
   :class:`~repro.service.regions.report.MultiRegionReport`, whose
   digest is therefore identical however phase 2 executed.

The RNG spawn-key discipline is audited on every run:
:func:`multi_region_streams` enumerates each shard's derived streams
(engine, faults, storm buckets, admission) and
:func:`~repro.service.simulation.seeds.audit_seed_streams` raises if
any two consumers would share a key.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.service.measurement import MeasurementSet
from repro.service.regions.report import MultiRegionReport, merge_shards
from repro.service.regions.router import RegionRouter, RouterPlan, ShardPlan
from repro.service.regions.shard import ShardResult, ShardTask, run_shard
from repro.service.regions.spec import MultiRegionSpec
from repro.service.simulation.seeds import (
    audit_seed_streams,
    streams_for_spec,
)

__all__ = [
    "build_shard_tasks",
    "multi_region_streams",
    "run_multi_region",
]

_ENGINE_ENV = "REPRO_SIM_ENGINE"


def multi_region_streams(spec: MultiRegionSpec) -> Dict[str, Tuple[int, ...]]:
    """Every RNG stream a multi-region run derives, as ``name -> key``.

    The root seed itself is reserved (spawning only), and each shard's
    family re-derives engine/fault/storm/admission streams from its
    spawned 64-bit seed — all enumerated here so the audit can prove
    pairwise disjointness.
    """
    streams: Dict[str, Tuple[int, ...]] = {"root": (spec.seed,)}
    for i, region in enumerate(spec.regions):
        shard_scenario = replace(region.scenario, seed=spec.shard_seed(i))
        streams.update(
            streams_for_spec(shard_scenario, prefix=f"{region.name}/")
        )
    return streams


def build_shard_tasks(
    plan: RouterPlan,
    measurements: MeasurementSet,
    *,
    engine: Optional[str] = None,
    check_invariants: bool = False,
    keep_reports: bool = False,
    trace: bool = False,
) -> List[ShardTask]:
    """Self-contained worker tasks for every shard of a plan.

    The engine is resolved here — explicit argument, else the
    ``REPRO_SIM_ENGINE`` environment of the *parent*, else the
    simulator default — and pinned into each task.
    """
    resolved = engine if engine is not None else os.environ.get(_ENGINE_ENV)
    tasks: List[ShardTask] = []
    for shard in plan.shards:
        tasks.append(
            ShardTask(
                region=shard.region,
                index=shard.index,
                scenario=replace(
                    shard.region.scenario, seed=shard.shard_seed
                ),
                measurements=measurements,
                submissions=tuple(shard.submissions),
                offered_rate=shard.offered_rate,
                n_assigned=shard.n_assigned,
                n_kept=shard.n_kept,
                n_outgoing=shard.n_outgoing,
                n_denied=shard.n_denied,
                engine=resolved,
                check_invariants=check_invariants,
                keep_report=keep_reports,
                trace=trace,
            )
        )
    return tasks


def _merge_traces(results: List[ShardResult], sink) -> None:
    """Fold per-shard traces into ``sink`` in a parallel-stable order.

    Shards finish their requests on independent virtual clocks, so the
    merged stream sorts by ``(finish time, region index, shard seq)`` —
    fully determined by the plan, never by worker scheduling.  Every
    trace root and run event is stamped with its region so a merged
    collector can still be cut back per region.
    """
    from repro.obs.trace import Trace

    keyed = []
    for result in results:
        for seq, payload in enumerate(result.trace_dicts or ()):
            trace = Trace.from_dict(payload)
            trace.root.attrs.setdefault("region", result.region)
            keyed.append(((trace.root.end_s, result.index, seq), trace))
    keyed.sort(key=lambda item: item[0])
    for _, trace in keyed:
        sink.add_trace(trace)
    events = []
    for result in results:
        for seq, (time_s, kind, detail, region) in enumerate(
            result.trace_run_events or ()
        ):
            events.append(
                (
                    (time_s, result.index, seq),
                    (time_s, kind, detail, region or result.region),
                )
            )
    events.sort(key=lambda item: item[0])
    for _, (time_s, kind, detail, region) in events:
        sink.add_run_event(time_s, kind, detail, region)


def run_multi_region(
    spec: MultiRegionSpec,
    measurements: MeasurementSet,
    *,
    parallel: Optional[int] = None,
    engine: Optional[str] = None,
    check_invariants: bool = False,
    keep_reports: bool = False,
    trace=None,
) -> MultiRegionReport:
    """Run a multi-region spec end to end.

    Args:
        spec: The multi-region load test.
        measurements: Shared measurement table every region's replay
            pools draw service times from.
        parallel: Worker-process count for the shard phase; ``None`` or
            ``1`` runs shards serially in-process.  The merged report
            (and its digest) is identical either way.
        engine: Per-shard engine override, forwarded to every
            :class:`~repro.service.simulation.engine.ServingSimulator`.
        check_invariants: Enable each shard engine's conservation
            checker (the multi-region conservation identities are
            always verified at merge time).
        keep_reports: Retain each shard's full
            :class:`~repro.service.simulation.report.LoadTestReport`
            on its result (serial-friendly; costs pickling when
            combined with ``parallel``).
        trace: Optional :class:`~repro.obs.trace.TraceCollector` that
            receives one span tree per request across every region,
            merged in ``(finish time, region index, shard seq)`` order.
            Failover traffic carries a ``failover-hop`` span linking
            its home and serving regions.  Opt-in and digest-neutral:
            the merged report digest is identical with or without it.
    """
    audit_seed_streams(multi_region_streams(spec))
    plan = RegionRouter(spec, measurements).plan()
    tasks = build_shard_tasks(
        plan,
        measurements,
        engine=engine,
        check_invariants=check_invariants,
        keep_reports=keep_reports,
        trace=trace is not None,
    )
    results: List[ShardResult]
    if parallel is not None and parallel > 1 and len(tasks) > 1:
        workers = min(parallel, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = list(executor.map(run_shard, tasks))
    else:
        results = [run_shard(task) for task in tasks]
    if trace is not None:
        _merge_traces(results, trace)
    return merge_shards(plan, results)
