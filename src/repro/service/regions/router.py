"""The region router: locality-first routing with planned failover.

The router is the *plan phase* of a multi-region run.  It extends the
load-balancer's within-pool selection with a between-region decision:
every arrival is locality-first (served by its home region), and spills
to a failover peer only when the home region is **dead** (a pool's
advertised live-node count is zero), **saturated** (kept arrivals in the
trailing window exceed the advertised capacity), or the request would
stay home because every candidate link is **partitioned** — in which
case the denial is recorded and the request takes its chances locally.

Everything the router consults is *static*: per-region arrival times and
payload picks drawn from the spawned shard streams, pool-health
timelines swept from the declared ``NodeCrash`` schedule, declared
capacities, and declared partitions.  That makes the plan a pure
function of the spec — shards can then execute in any order, on any
number of worker processes, and the merged result cannot depend on
execution interleaving.  The price is fidelity at the margins: the
router sees health-check-level signals (it does not model autoscaler
replacements or the queue depth a spillover wave creates at its
target), exactly like a production global load balancer routing on
advertised health rather than ground truth.

Cross-shard interactions surface as :class:`BoundaryEvent` records —
failovers, denials, partition opens/heals — each stamped with its home
region and a per-region sequence number assigned in time order, so the
merged stream has the deterministic ``(time, region, seq)`` total order
the multi-region digest pins.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.measurement import MeasurementSet
from repro.service.simulation.faults import NodeCrash
from repro.service.regions.spec import MultiRegionSpec, RegionSpec

__all__ = [
    "BoundaryEvent",
    "PlannedSubmission",
    "RegionRouter",
    "RouterPlan",
    "ShardPlan",
]


@dataclass(frozen=True)
class BoundaryEvent:
    """One cross-shard interaction, in the home region's event stream.

    Attributes:
        time_s: Virtual time of the decision (the arrival's home time,
            or a partition window edge).
        region: Home region owning the event (and its ``seq`` counter).
        seq: Position in the home region's boundary stream, assigned in
            time order — the merge tie-break after ``time_s`` and the
            region's declaration index.
        kind: ``"failover"``, ``"failover-denied"``, ``"partition"`` or
            ``"partition-heal"``.
        detail: Deterministic context (request id, trigger, peer).
        target: Destination region for ``"failover"`` events.
    """

    time_s: float
    region: str
    seq: int
    kind: str
    detail: str
    target: Optional[str] = None


@dataclass(frozen=True)
class PlannedSubmission:
    """One request as a shard will submit it.

    ``extra_latency_s`` is the inter-region round trip a failed-over
    request pays on top of its in-region response time (forward leg +
    response leg); zero for local traffic.
    """

    request_id: str
    payload: object
    at_time: float
    tolerance: float
    objective: object
    origin: str
    extra_latency_s: float = 0.0


@dataclass
class ShardPlan:
    """Everything one region shard needs to execute independently.

    Attributes:
        region: The region spec.
        index: Declaration index (fixes the spawned seed and merge
            tie-breaks).
        shard_seed: Spawned root seed for the shard's RNG streams.
        submissions: The shard's workload in submission order — kept
            local arrivals first (draw order), then incoming failover
            traffic ordered by ``(arrival time, home index, home draw)``.
        offered_rate: Mean rate of the region's *assigned* arrival
            stream (pre-failover), mirroring ``ServingSimulator.run``.
        n_assigned: Arrivals the region's own stream generated.
        n_kept: Assigned arrivals served locally (includes denials).
        n_outgoing: Assigned arrivals that failed over to a peer.
        n_denied: Arrivals that needed failover but found no open link.
        n_incoming: Failover arrivals received from peers.
    """

    region: RegionSpec
    index: int
    shard_seed: int
    submissions: List[PlannedSubmission]
    offered_rate: Optional[float]
    n_assigned: int
    n_kept: int
    n_outgoing: int
    n_denied: int
    n_incoming: int


@dataclass
class RouterPlan:
    """The full routing plan: per-shard workloads + the boundary stream."""

    spec: MultiRegionSpec
    shards: List[ShardPlan]
    boundary_events: Tuple[BoundaryEvent, ...]


class _HealthTimeline:
    """Advertised pool health of one region, swept from its crash schedule.

    The region is *down* while any declared pool's live-node count is
    zero: crashes subtract at ``at_s``, replacements add back at
    ``recover_at_s``.  This is the health-check view — autoscaler
    replacements and mid-window evictions are invisible to it by
    design (see the module docstring).
    """

    def __init__(self, region: RegionSpec) -> None:
        intervals: List[Tuple[float, float]] = []
        pools = dict(region.scenario.pools)
        deltas: Dict[str, List[Tuple[float, int]]] = {}
        for fault in region.scenario.faults:
            if not isinstance(fault, NodeCrash):
                continue
            deltas.setdefault(fault.version, []).append((fault.at_s, -1))
            if fault.recover_at_s is not None:
                deltas[fault.version].append((fault.recover_at_s, +1))
        for version, events in deltas.items():
            live = pools[version]
            down_since: Optional[float] = None
            for at_s, delta in sorted(events):
                live += delta
                if live <= 0 and down_since is None:
                    down_since = at_s
                elif live > 0 and down_since is not None:
                    intervals.append((down_since, at_s))
                    down_since = None
            if down_since is not None:
                intervals.append((down_since, float("inf")))
        merged: List[List[float]] = []
        for start, end in sorted(intervals):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self._starts = [start for start, _ in merged]
        self._ends = [end for _, end in merged]

    def down_at(self, at_s: float) -> bool:
        """Whether any pool advertises zero live nodes at ``at_s``."""
        i = bisect.bisect_right(self._starts, at_s) - 1
        return i >= 0 and at_s < self._ends[i]


class _SaturationWindow:
    """Trailing-window arrival counter against an advertised capacity."""

    def __init__(self, region: RegionSpec) -> None:
        self._window_s = region.saturation_window_s
        self._limit: Optional[float] = None
        if region.capacity_rps is not None:
            self._limit = (
                region.capacity_rps
                * region.saturation_factor
                * region.saturation_window_s
            )
        self._kept: deque = deque()

    def saturated(self, at_s: float) -> bool:
        if self._limit is None:
            return False
        horizon = at_s - self._window_s
        kept = self._kept
        while kept and kept[0] <= horizon:
            kept.popleft()
        return len(kept) >= self._limit

    def keep(self, at_s: float) -> None:
        if self._limit is not None:
            self._kept.append(at_s)


class RegionRouter:
    """Plans locality-first routing with failover for one multi-region run."""

    def __init__(
        self, spec: MultiRegionSpec, measurements: MeasurementSet
    ) -> None:
        self.spec = spec
        self.measurements = measurements

    # ------------------------------------------------------------------
    def plan(self) -> RouterPlan:
        """Compute the full routing plan (pure; no engine state touched)."""
        spec = self.spec
        payload_pool: Sequence[object] = list(self.measurements.request_ids)
        if not payload_pool:
            raise ValueError("measurements provide no payload ids")
        index_of = {name: i for i, name in enumerate(spec.region_names)}
        health = {r.name: _HealthTimeline(r) for r in spec.regions}

        drawn: List[Tuple[np.ndarray, np.ndarray]] = []
        for i, region in enumerate(spec.regions):
            # Exactly run()'s draw order under the spawned seed: arrival
            # times first, then payload picks — so a shard with no
            # failover in or out digests identically to the plain
            # scenario run under the same seed.
            rng = np.random.default_rng(spec.shard_seed(i))
            times = np.asarray(
                region.scenario.arrivals.times(
                    region.scenario.n_requests, rng
                ),
                dtype=float,
            )
            picks = rng.integers(
                0, len(payload_pool), size=region.scenario.n_requests
            )
            drawn.append((times, picks))

        events: List[BoundaryEvent] = []
        locals_of: Dict[str, List[PlannedSubmission]] = {
            name: [] for name in spec.region_names
        }
        incoming_of: Dict[
            str, List[Tuple[float, int, int, PlannedSubmission]]
        ] = {name: [] for name in spec.region_names}
        counters: Dict[str, Dict[str, int]] = {}

        for i, region in enumerate(spec.regions):
            times, picks = drawn[i]
            counters[region.name] = self._route_region(
                region,
                i,
                times,
                picks,
                payload_pool,
                health,
                index_of,
                events,
                locals_of[region.name],
                incoming_of,
            )

        shards: List[ShardPlan] = []
        for i, region in enumerate(spec.regions):
            times, _ = drawn[i]
            incoming = sorted(
                incoming_of[region.name], key=lambda item: item[:3]
            )
            submissions = locals_of[region.name] + [
                item[3] for item in incoming
            ]
            span = float(times[-1] - times[0]) if len(times) > 1 else 0.0
            stats = counters[region.name]
            shards.append(
                ShardPlan(
                    region=region,
                    index=i,
                    shard_seed=spec.shard_seed(i),
                    submissions=submissions,
                    offered_rate=(
                        region.scenario.n_requests / span
                        if span > 0.0
                        else None
                    ),
                    n_assigned=region.scenario.n_requests,
                    n_kept=stats["kept"],
                    n_outgoing=stats["out"],
                    n_denied=stats["denied"],
                    n_incoming=len(incoming),
                )
            )

        merged = tuple(
            sorted(events, key=lambda e: (e.time_s, index_of[e.region], e.seq))
        )
        return RouterPlan(spec=spec, shards=shards, boundary_events=merged)

    # ------------------------------------------------------------------
    def _route_region(
        self,
        region: RegionSpec,
        index: int,
        times: np.ndarray,
        picks: np.ndarray,
        payload_pool: Sequence[object],
        health: Dict[str, _HealthTimeline],
        index_of: Dict[str, int],
        events: List[BoundaryEvent],
        local_out: List[PlannedSubmission],
        incoming_of: Dict[
            str, List[Tuple[float, int, int, PlannedSubmission]]
        ],
    ) -> Dict[str, int]:
        """Route one region's arrival stream; returns its counters."""
        spec = self.spec
        scenario = region.scenario
        saturation = _SaturationWindow(region)
        preferences = spec.failover_order(region.name)
        home_health = health[region.name]

        # The region's moment stream: partition edges it owns interleave
        # with its arrivals in time order, partition edges first on ties
        # (a link is down from exactly start_s, healed from exactly
        # end_s), so per-region seq numbers are a pure function of time.
        moments: List[Tuple[float, int, int, object]] = []
        for j in range(len(times)):
            moments.append((float(times[j]), 1, j, None))
        for p, partition in enumerate(spec.partitions):
            if partition.region != region.name:
                continue
            detail = f"{partition.region}-x-{partition.peer or '*'}"
            moments.append((partition.start_s, 0, p, ("partition", detail)))
            if np.isfinite(partition.end_s):
                moments.append(
                    (partition.end_s, 0, p, ("partition-heal", detail))
                )
        moments.sort(key=lambda m: m[:3])

        seq = 0
        kept = out = denied = 0
        for at_s, _, j, edge in moments:
            if edge is not None:
                kind, detail = edge
                events.append(
                    BoundaryEvent(
                        time_s=at_s,
                        region=region.name,
                        seq=seq,
                        kind=kind,
                        detail=detail,
                    )
                )
                seq += 1
                continue

            request_id = f"load_{j:06d}"
            payload = payload_pool[int(picks[j])]
            reason = None
            if home_health.down_at(at_s):
                reason = "down"
            elif saturation.saturated(at_s):
                reason = "saturated"
            if reason is None:
                saturation.keep(at_s)
                kept += 1
                local_out.append(
                    PlannedSubmission(
                        request_id=request_id,
                        payload=payload,
                        at_time=at_s,
                        tolerance=scenario.tolerance,
                        objective=scenario.objective,
                        origin=region.name,
                    )
                )
                continue

            target = None
            for candidate in preferences:
                if spec.link_severed(region.name, candidate, at_s):
                    continue
                if health[candidate].down_at(at_s):
                    continue
                target = candidate
                break

            if target is None:
                # No open link to a live peer: the request stays home
                # and takes whatever its degraded pools offer.
                events.append(
                    BoundaryEvent(
                        time_s=at_s,
                        region=region.name,
                        seq=seq,
                        kind="failover-denied",
                        detail=f"{request_id}|{reason}|no-target",
                    )
                )
                seq += 1
                saturation.keep(at_s)
                kept += 1
                denied += 1
                local_out.append(
                    PlannedSubmission(
                        request_id=request_id,
                        payload=payload,
                        at_time=at_s,
                        tolerance=scenario.tolerance,
                        objective=scenario.objective,
                        origin=region.name,
                    )
                )
                continue

            link_s = spec.link_latency(region.name, target)
            events.append(
                BoundaryEvent(
                    time_s=at_s,
                    region=region.name,
                    seq=seq,
                    kind="failover",
                    detail=f"{request_id}|{reason}",
                    target=target,
                )
            )
            seq += 1
            out += 1
            incoming_of[target].append(
                (
                    at_s + link_s,
                    index,
                    j,
                    PlannedSubmission(
                        request_id=f"{region.name}:{request_id}",
                        payload=payload,
                        at_time=at_s + link_s,
                        tolerance=scenario.tolerance,
                        objective=scenario.objective,
                        origin=region.name,
                        extra_latency_s=2.0 * link_s,
                    ),
                )
            )
        return {"kept": kept, "out": out, "denied": denied}
