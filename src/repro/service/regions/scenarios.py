"""Canonical multi-region scenarios, golden-pinned like their
single-cluster siblings.

Three compositions over the shared toy measurement table
(:func:`~repro.service.simulation.scenarios.scenario_measurements`),
each isolating one multi-region behaviour:

``tri-steady``
    Three healthy regions under steady Poisson load at different
    rates.  Pure locality: no failover triggers, every shard
    columnar-eligible — the sharding-only baseline whose 1-region
    slice anchors the plain-scenario equivalence tests.
``regional-outage``
    A two-region pair where the smaller region's only fast node dies
    for ten virtual seconds; its traffic fails over across a
    high-latency link and returns home after recovery.
``partitioned-brownout``
    A three-region mix where one region's advertised capacity is far
    below its offered rate (steady spillover), a
    :class:`~repro.service.simulation.faults.RegionPartition` severs
    its preferred failover link mid-run (spill re-routes to the second
    choice), and region SLOs watch the brownout.
"""

from __future__ import annotations

from typing import Dict

from repro.service.control.slo import SLOSpec
from repro.service.regions.spec import MultiRegionSpec, RegionSpec
from repro.service.simulation.arrivals import PoissonArrivals
from repro.service.simulation.faults import (
    NodeCrash,
    RegionPartition,
    RetryPolicy,
)
from repro.service.simulation.scenarios import (
    ScenarioSpec,
    _tiered_configuration,
)

__all__ = ["region_scenarios"]


def _region_scenario(name: str, region: str, **overrides) -> ScenarioSpec:
    """A region's embedded scenario with the canonical tier mix."""
    defaults = dict(
        name=f"{name}-{region}",
        arrivals=PoissonArrivals(3.0),
        n_requests=100,
        pools={"fast": 2, "slow": 2},
        configuration=_tiered_configuration(),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def region_scenarios() -> Dict[str, MultiRegionSpec]:
    """The canonical multi-region scenarios, keyed by name."""
    retry = RetryPolicy(max_attempts=3, backoff_s=0.05)
    return {
        "tri-steady": MultiRegionSpec(
            name="tri-steady",
            regions=(
                RegionSpec(
                    name="us-east",
                    scenario=_region_scenario(
                        "tri-steady",
                        "us-east",
                        arrivals=PoissonArrivals(3.0),
                        n_requests=120,
                    ),
                ),
                RegionSpec(
                    name="eu-west",
                    scenario=_region_scenario(
                        "tri-steady",
                        "eu-west",
                        arrivals=PoissonArrivals(2.5),
                        n_requests=100,
                    ),
                ),
                RegionSpec(
                    name="ap-south",
                    scenario=_region_scenario(
                        "tri-steady",
                        "ap-south",
                        arrivals=PoissonArrivals(2.0),
                        n_requests=80,
                    ),
                ),
            ),
            seed=31,
        ),
        "regional-outage": MultiRegionSpec(
            name="regional-outage",
            regions=(
                RegionSpec(
                    name="us-east",
                    scenario=_region_scenario(
                        "regional-outage",
                        "us-east",
                        arrivals=PoissonArrivals(4.0),
                        n_requests=120,
                        pools={"fast": 3, "slow": 2},
                    ),
                ),
                RegionSpec(
                    name="eu-west",
                    scenario=_region_scenario(
                        "regional-outage",
                        "eu-west",
                        arrivals=PoissonArrivals(4.0),
                        n_requests=120,
                        pools={"fast": 1, "slow": 1},
                        retry=retry,
                        faults=(
                            NodeCrash(
                                at_s=5.0,
                                version="fast",
                                node_index=0,
                                recover_at_s=15.0,
                            ),
                        ),
                    ),
                ),
            ),
            link_latency_s=0.08,
            seed=32,
        ),
        "partitioned-brownout": MultiRegionSpec(
            name="partitioned-brownout",
            regions=(
                RegionSpec(
                    name="us-east",
                    scenario=_region_scenario(
                        "partitioned-brownout",
                        "us-east",
                        arrivals=PoissonArrivals(3.0),
                        n_requests=100,
                    ),
                ),
                RegionSpec(
                    name="eu-west",
                    scenario=_region_scenario(
                        "partitioned-brownout",
                        "eu-west",
                        arrivals=PoissonArrivals(3.0),
                        n_requests=100,
                    ),
                ),
                RegionSpec(
                    name="ap-south",
                    scenario=_region_scenario(
                        "partitioned-brownout",
                        "ap-south",
                        arrivals=PoissonArrivals(6.0),
                        n_requests=150,
                        pools={"fast": 1, "slow": 1},
                    ),
                    capacity_rps=3.0,
                    saturation_window_s=1.0,
                    failover=("us-east", "eu-west"),
                    slos=(
                        SLOSpec(name="ap-p95", max_p95_latency_s=0.5),
                        SLOSpec(name="ap-avail", min_availability=0.9),
                    ),
                ),
            ),
            partitions=(
                RegionPartition(
                    region="ap-south",
                    peer="us-east",
                    start_s=8.0,
                    end_s=20.0,
                ),
            ),
            link_latency_s=0.05,
            link_latencies={("ap-south", "eu-west"): 0.12},
            seed=33,
        ),
    }
