"""Service requests and responses.

The paper's API consumers annotate each request with two extra headers:

.. code-block:: text

    curl --header Tolerance: 0.01
         --header Objective: response-time
         --data-binary @input-file-name
         -X POST http://cloud-service/compute

:class:`ServiceRequest` models exactly that annotation (plus an opaque
payload reference), and :class:`ServiceResponse` carries the result back
together with the measured latency and billed cost so consumers can verify
what they were served.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["Objective", "ServiceRequest", "ServiceResponse"]


class Objective(enum.Enum):
    """What a Tolerance Tier optimises once its accuracy bound is met."""

    RESPONSE_TIME = "response-time"
    COST = "cost"

    @classmethod
    def from_header(cls, value: str) -> "Objective":
        """Parse the ``Objective:`` header value.

        Raises:
            ValueError: If the value names no known objective.
        """
        normalised = value.strip().lower()
        for objective in cls:
            if objective.value == normalised:
                return objective
        raise ValueError(
            f"unknown objective {value!r}; expected one of "
            f"{[o.value for o in cls]}"
        )


@dataclass(frozen=True)
class ServiceRequest:
    """One annotated request to the MLaaS endpoint.

    Attributes:
        request_id: Stable identifier (an utterance id or image id).
        payload: Opaque payload the service version understands (an
            :class:`~repro.datasets.voxforge.Utterance`, an image array,
            or — in measurement-replay mode — just the request id).
        tolerance: Acceptable relative error degradation w.r.t. the most
            accurate tier, e.g. ``0.01`` for the 1 % tier.  ``0.0`` requests
            the most accurate tier.
        objective: What to optimise subject to the tolerance.
        metadata: Free-form annotation (consumer id, deadline, ...).
    """

    request_id: str
    payload: Any
    tolerance: float = 0.0
    objective: Objective = Objective.RESPONSE_TIME
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not math.isfinite(self.tolerance):
            raise ValueError(
                f"tolerance must be finite, got {self.tolerance}; NaN and "
                "infinite tolerances name no tier"
            )
        if self.tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")

    @classmethod
    def from_headers(
        cls,
        request_id: str,
        payload: Any,
        headers: Mapping[str, str],
    ) -> "ServiceRequest":
        """Build a request from HTTP-style headers.

        Recognised headers (case-insensitive, whitespace-tolerant):
        ``Tolerance`` and ``Objective``; all others are preserved in
        :attr:`metadata`.

        Raises:
            ValueError: If a ``Tolerance`` value is not a number, a
                recognised header appears more than once (under any
                casing), or the parsed annotation fails request
                validation (negative / non-finite tolerance, unknown
                objective).
        """
        tolerance = 0.0
        objective = Objective.RESPONSE_TIME
        metadata = {}
        seen = set()
        for key, value in headers.items():
            lowered = key.strip().lower()
            if lowered in ("tolerance", "objective"):
                if lowered in seen:
                    raise ValueError(
                        f"duplicate {lowered.capitalize()!s} header on "
                        f"request {request_id!r}; annotation headers must "
                        "appear exactly once"
                    )
                seen.add(lowered)
            if lowered == "tolerance":
                try:
                    tolerance = float(value)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"malformed Tolerance header on request "
                        f"{request_id!r}: {value!r} is not a number"
                    ) from None
            elif lowered == "objective":
                objective = Objective.from_header(value)
            else:
                metadata[key] = value
        return cls(
            request_id=request_id,
            payload=payload,
            tolerance=tolerance,
            objective=objective,
            metadata=metadata,
        )


@dataclass(frozen=True)
class ServiceResponse:
    """The service's answer to one request.

    Attributes:
        request_id: Identifier of the request being answered.
        result: The model output (a transcript, a class id, ...).
        versions_used: Names of the service versions that actually ran.
        response_time_s: End-to-end service latency for this request.
        invocation_cost: Amount billed to the consumer for this request.
        tier: The tolerance value of the tier that served the request, or
            ``None`` for a conventional (non-tiered) deployment.
        confidence: The serving version's confidence in the result.
    """

    request_id: str
    result: Any
    versions_used: tuple
    response_time_s: float
    invocation_cost: float
    tier: Optional[float] = None
    confidence: float = 1.0
