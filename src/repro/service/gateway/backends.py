"""Synchronous execution backends for the tier gateway.

An execution backend is where a routed request's ensemble actually runs
(see :class:`repro.core.executor.ExecutionBackend` for the protocol).  Two
synchronous substrates live here:

* :class:`DirectBackend` — the live path: each invocation dispatches
  through a :class:`~repro.service.cluster.ClusterDeployment`'s load
  balancer onto a real node, contention-free (the pre-gateway
  ``ToleranceTiersService`` path).
* :class:`ReplayBackend` — the measurement-replay path: each invocation
  reads the measured ``(request, version)`` cell of a
  :class:`~repro.service.measurement.MeasurementSet`.  Driving the
  :class:`~repro.core.executor.PolicyExecutor` over this backend is the
  per-request oracle the rule generator's vectorized policy evaluations
  are pinned against.

The deferred, virtual-clock backend lives in
:mod:`repro.service.gateway.simulated`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.errors import RequestValidationError
from repro.core.executor import Invocation
from repro.service.cluster import ClusterDeployment
from repro.service.measurement import MeasurementSet
from repro.service.pricing import CostBreakdown, PricingModel
from repro.service.request import ServiceRequest

__all__ = ["DirectBackend", "ReplayBackend"]


class DirectBackend:
    """Contention-free live dispatch onto a cluster deployment.

    Args:
        cluster: Deployment hosting a pool for every version the gateway's
            configurations may use.
    """

    synchronous = True

    def __init__(self, cluster: ClusterDeployment) -> None:
        self.cluster = cluster

    @property
    def versions(self) -> Tuple[str, ...]:
        """Versions the deployment can serve."""
        return self.cluster.versions

    def invoke(self, version: str, request: ServiceRequest) -> Invocation:
        """Dispatch one request onto one version's pool."""
        result, latency = self.cluster.raw_dispatch(version, request)
        return Invocation(
            output=result.output,
            confidence=result.confidence,
            latency_s=latency,
            error=result.error,
        )

    def cost_of(self, node_seconds: Mapping[str, float]) -> CostBreakdown:
        """Price node-seconds with the deployment's pricing model."""
        return self.cluster.cost_of(node_seconds)


class ReplayBackend:
    """Measurement replay: invocations read the measured outcome table.

    The request payload must name a measured request id (the convention
    every replay consumer in this repo shares); the backend reports
    exactly the error, latency and confidence measured for that
    ``(request, version)`` cell.

    Args:
        measurements: The measurement table to replay.
        pricing: Pricing model billing the replayed node-seconds; defaults
            to the measurement set's own instance catalogue via
            :func:`repro.core.metrics.build_pricing`.
    """

    synchronous = True

    def __init__(
        self,
        measurements: MeasurementSet,
        *,
        pricing: Optional[PricingModel] = None,
    ) -> None:
        if pricing is None:
            from repro.core.metrics import build_pricing

            pricing = build_pricing(measurements)
        self.measurements = measurements
        self.pricing = pricing
        self._rows: Dict[str, int] = {
            rid: i for i, rid in enumerate(measurements.request_ids)
        }

    @property
    def versions(self) -> Tuple[str, ...]:
        """Versions the measurement table covers."""
        return tuple(self.measurements.versions)

    def invoke(self, version: str, request: ServiceRequest) -> Invocation:
        """Replay the measured outcome for the payload's request id.

        Raises:
            RequestValidationError: If the payload names no measured
                request id.
        """
        try:
            row = self._rows[request.payload]
        except (KeyError, TypeError):
            raise RequestValidationError(
                f"payload {request.payload!r} on request "
                f"{request.request_id!r} does not name a measured request id"
            ) from None
        column = self.measurements.version_index(version)
        return Invocation(
            output=request.payload,
            confidence=float(self.measurements.confidence[row, column]),
            latency_s=float(self.measurements.latency_s[row, column]),
            error=float(self.measurements.error[row, column]),
        )

    def cost_of(self, node_seconds: Mapping[str, float]) -> CostBreakdown:
        """Price node-seconds with the measurement-derived pricing model."""
        return self.pricing.request_cost(node_seconds)
