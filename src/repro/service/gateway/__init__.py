"""The unified Tolerance Tiers serving gateway.

One client API — :class:`TierGateway` — over pluggable execution
backends:

* :mod:`repro.service.gateway.gateway` -- the session surface:
  ``submit()`` returning :class:`TierTicket` futures, ``submit_batch()``,
  ``drain()``, per-request deadlines, and the structured
  :class:`~repro.core.errors.TierError` hierarchy.
* :mod:`repro.service.gateway.backends` -- the synchronous substrates:
  :class:`DirectBackend` (live contention-free dispatch onto a cluster)
  and :class:`ReplayBackend` (measurement replay, the per-request oracle).
* :mod:`repro.service.gateway.simulated` -- :class:`SimulatedBackend`,
  pacing gateway traffic through the discrete-event engine so the public
  API experiences queueing, batching, autoscaling and scenario faults.

All of them execute through the canonical
:class:`~repro.core.executor.PolicyExecutor` semantics; the deprecated
:class:`~repro.core.api.ToleranceTiersService` is a thin shim over
``TierGateway`` + ``DirectBackend``.
"""

from repro.core.errors import (
    BackendCapabilityError,
    GatewayClosedError,
    MissingVersionError,
    PolicyConfigurationError,
    RequestFailedError,
    RequestValidationError,
    ResultPendingError,
    TierError,
    UnknownObjectiveError,
    UnroutableToleranceError,
)
from repro.core.executor import (
    ExecutionBackend,
    ExecutionOutcome,
    Invocation,
    PolicyExecutor,
)
from repro.service.gateway.backends import DirectBackend, ReplayBackend
from repro.service.gateway.gateway import TierGateway, TierTicket
from repro.service.gateway.simulated import SimulatedBackend

__all__ = [
    "BackendCapabilityError",
    "DirectBackend",
    "ExecutionBackend",
    "ExecutionOutcome",
    "GatewayClosedError",
    "Invocation",
    "MissingVersionError",
    "PolicyConfigurationError",
    "PolicyExecutor",
    "ReplayBackend",
    "RequestFailedError",
    "RequestValidationError",
    "ResultPendingError",
    "SimulatedBackend",
    "TierError",
    "TierGateway",
    "TierTicket",
    "UnknownObjectiveError",
    "UnroutableToleranceError",
]
