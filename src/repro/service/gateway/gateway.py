"""The unified Tolerance Tiers serving gateway.

:class:`TierGateway` is the one consumer-facing API over every execution
substrate: the same session surface — :meth:`~TierGateway.submit` /
:meth:`~TierGateway.submit_batch` returning :class:`TierTicket` handles,
:meth:`~TierGateway.drain`, per-request deadlines, and the structured
:class:`~repro.core.errors.TierError` hierarchy — serves requests through

* a :class:`~repro.service.gateway.backends.DirectBackend` (live,
  contention-free dispatch; tickets resolve at submit time),
* a :class:`~repro.service.gateway.backends.ReplayBackend` (measurement
  replay; tickets resolve at submit time), or
* a :class:`~repro.service.gateway.simulated.SimulatedBackend` (the
  virtual-clock engine; tickets resolve at :meth:`~TierGateway.drain`,
  after the traffic experienced queueing, batching, autoscaling and any
  injected faults).

Every execution funnels through the one canonical
:class:`~repro.core.executor.PolicyExecutor` semantics, so a request is
served identically — escalation decision, latency composition,
node-seconds billing — whichever substrate runs it.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import (
    BackendCapabilityError,
    GatewayClosedError,
    MissingVersionError,
    RequestFailedError,
    RequestShedError,
    RequestValidationError,
    ResultPendingError,
    TierError,
    UnknownObjectiveError,
    UnroutableToleranceError,
)
from repro.core.executor import PolicyExecutor
from repro.obs.log import get_rate_limited
from repro.service.request import ServiceRequest, ServiceResponse

__all__ = ["TierGateway", "TierTicket"]

#: Gateway error-path log: silent by default, rate-limited per template
#: so a mass-shed scenario cannot flood (see :mod:`repro.obs.log`).
_log = get_rate_limited("service.gateway")


class TierTicket:
    """Handle for one submitted request: a minimal, single-shot future.

    Synchronous backends resolve the ticket before :meth:`TierGateway.submit`
    returns; the simulated backend resolves it when the gateway drains.

    Attributes:
        request: The annotated request this ticket tracks.
        at_time: Virtual arrival time (meaningful under a simulated
            backend; ``0.0`` on synchronous ones).
        deadline_s: The consumer's response-time deadline, when declared.
    """

    __slots__ = ("request", "at_time", "deadline_s", "_response", "_error")

    def __init__(
        self,
        request: ServiceRequest,
        *,
        at_time: float = 0.0,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.request = request
        self.at_time = at_time
        self.deadline_s = deadline_s
        self._response: Optional[ServiceResponse] = None
        self._error: Optional[TierError] = None

    # -- resolution (gateway-internal) ---------------------------------
    def _resolve(self, response: ServiceResponse) -> None:
        self._response = response

    def _fail(self, error: TierError) -> None:
        self._error = error

    # -- client surface ------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the request has resolved (successfully or not)."""
        return self._response is not None or self._error is not None

    @property
    def ok(self) -> bool:
        """Whether the request resolved with a response."""
        return self._response is not None

    def result(self) -> ServiceResponse:
        """The response, or raise.

        Raises:
            ResultPendingError: If the gateway has not drained yet.
            RequestFailedError: If the request failed terminally.
        """
        if self._error is not None:
            raise self._error
        if self._response is None:
            raise ResultPendingError(
                f"request {self.request.request_id!r} has not resolved; "
                "drain() the gateway first"
            )
        return self._response

    def exception(self) -> Optional[TierError]:
        """The terminal error, or ``None``."""
        return self._error

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the response beat the declared deadline.

        ``None`` when no deadline was declared or the ticket is
        unresolved/failed — there is no response time to compare.
        """
        if self.deadline_s is None or self._response is None:
            return None
        return self._response.response_time_s <= self.deadline_s


def _request_deadline(
    request: ServiceRequest, explicit: Optional[float]
) -> Optional[float]:
    """Resolve a ticket's deadline: explicit argument, else metadata."""
    if explicit is not None:
        return float(explicit)
    raw = request.metadata.get("deadline_s") if request.metadata else None
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise RequestValidationError(
            f"malformed deadline_s metadata on request "
            f"{request.request_id!r}: {raw!r} is not a number"
        ) from None


class TierGateway:
    """Session-based client API over a pluggable execution backend.

    Exactly one of ``router`` / ``configuration`` decides how requests map
    to ensembles: a :class:`~repro.core.router.TierRouter` serves each
    request by its ``Tolerance`` / ``Objective`` annotation, while a fixed
    :class:`~repro.core.configuration.EnsembleConfiguration` models a
    conventional deployment (e.g. OSFA).

    Args:
        backend: Execution substrate
            (:class:`~repro.service.gateway.backends.DirectBackend`,
            :class:`~repro.service.gateway.backends.ReplayBackend` or
            :class:`~repro.service.gateway.simulated.SimulatedBackend`).
        router: Tier router produced by the routing-rule generator.
        configuration: Fixed ensemble configuration (mutually exclusive
            with ``router``).
        control: Optional control plane
            (:class:`~repro.service.control.plane.ControlPlane`) for a
            *synchronous* backend: every completion feeds its telemetry
            window, every submit consults its admission controller (a
            shed request's ticket resolves immediately with a
            :class:`~repro.core.errors.RequestShedError`), and adaptor
            swaps retarget the session's fixed configuration.
            Synchronous sessions have no clock, so the plane's time
            advances **one unit per submission**: ``window_s`` and the
            tick/re-fit intervals are measured in requests, not
            seconds.  For a simulated backend pass the control spec to
            the backend instead (``SimulatedBackend(control=...)``) —
            admission belongs on the virtual clock there, and this
            gateway's :meth:`drain` resolves engine-shed tickets with
            the same structured error.
        trace: Optional :class:`~repro.obs.trace.TraceCollector` — the
            session's ``TraceSink``.  On a simulated backend it is
            forwarded to the engine (rich virtual-clock spans, one tree
            per request, available after :meth:`drain`); on synchronous
            backends the gateway records coarse trees at submit time.
            Ticket-level access via :meth:`trace_for`.  Strictly
            opt-in: responses, reports and digests are identical with
            or without one.

    Raises:
        MissingVersionError: If a routable configuration needs a version
            the backend cannot execute.
        BackendCapabilityError: If ``control`` is combined with a
            deferred backend.
    """

    def __init__(
        self,
        backend,
        *,
        router=None,
        configuration=None,
        control=None,
        trace=None,
    ) -> None:
        if (router is None) == (configuration is None):
            raise ValueError("supply exactly one of router / configuration")
        if control is not None and not backend.synchronous:
            raise BackendCapabilityError(
                "gateway-side control needs a synchronous backend; under a "
                "virtual clock admission must happen at arrival time — pass "
                "the control spec to the SimulatedBackend instead"
            )
        self.backend = backend
        self.router = router
        self.configuration = configuration
        self.control = control
        #: The session's trace sink (a ``TraceCollector``), or ``None``.
        self.trace = trace
        if trace is not None:
            attach = getattr(backend, "attach_trace", None)
            if attach is not None:
                # Simulated backend: the engine records rich spans on
                # the virtual clock.  Must happen before bind() below.
                attach(trace)
        self._executor = PolicyExecutor(backend)
        self._tickets: List[TierTicket] = []
        self._unclaimed: List[ServiceResponse] = []
        self._closed = False
        #: Synchronous control clock: one unit per submission (there is
        #: no wall/virtual clock on a synchronous session, and a
        #: constant "now" would freeze window eviction, re-fit
        #: intervals and rollback judgements).
        self._control_clock = 0.0
        self._validate_versions()
        bind = getattr(backend, "bind", None)
        if bind is not None:
            bind(router=router, configuration=configuration)

    # ------------------------------------------------------------------
    # validation / routing
    # ------------------------------------------------------------------
    def _routable_configurations(self) -> List[Any]:
        if self.configuration is not None:
            return [self.configuration]
        configurations = []
        for objective in self.router.objectives:
            table = self.router.table_for(objective)
            configurations.extend(list(table.rules.values()) + [table.baseline])
        return configurations

    def _validate_versions(self) -> None:
        deployed = self.backend.versions
        if deployed is None:
            return  # the backend cannot enumerate its versions
        deployed = set(deployed)
        for configuration in self._routable_configurations():
            missing = set(configuration.versions) - deployed
            if missing:
                raise MissingVersionError(
                    f"configuration {configuration.name!r} needs versions "
                    f"{sorted(missing)} that the backend does not deploy "
                    f"(available: {sorted(deployed)})"
                )

    def _route(self, request: ServiceRequest):
        tolerance = request.tolerance
        if not isinstance(tolerance, (int, float)) or not math.isfinite(
            tolerance
        ) or tolerance < 0.0:
            raise UnroutableToleranceError(
                f"request {request.request_id!r} carries an unroutable "
                f"tolerance {tolerance!r}; tolerances are finite and "
                "non-negative"
            )
        if self.configuration is not None:
            return self.configuration
        try:
            return self.router.route(tolerance, request.objective)
        except TierError:
            raise
        except KeyError as exc:
            # table_for's KeyError message already names the objective and
            # the available tables; re-raise it under the typed hierarchy.
            raise UnknownObjectiveError(
                exc.args[0] if exc.args else str(exc)
            ) from exc
        except ValueError as exc:
            raise UnknownObjectiveError(str(exc)) from exc

    # ------------------------------------------------------------------
    # session surface
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ServiceRequest,
        *,
        at_time: float = 0.0,
        deadline_s: Optional[float] = None,
    ) -> TierTicket:
        """Submit one annotated request; returns its ticket.

        On a synchronous backend the ticket resolves before this call
        returns.  On a simulated backend the request arrives at
        ``at_time`` on the virtual clock and resolves at :meth:`drain`.

        Args:
            request: The annotated request.
            at_time: Virtual arrival time (simulated backends only).
            deadline_s: Response-time deadline recorded on the ticket;
                falls back to a ``deadline_s`` entry in the request
                metadata.  Deadlines are SLO bookkeeping — a late response
                still resolves, with :attr:`TierTicket.deadline_met` False.
        """
        if self._closed:
            raise GatewayClosedError(
                "this gateway session is closed (its backend was drained); "
                "build a new gateway for another session"
            )
        configuration = self._route(request)
        ticket = TierTicket(
            request,
            at_time=at_time,
            deadline_s=_request_deadline(request, deadline_s),
        )
        self._tickets.append(ticket)
        degraded = False
        if self.control is not None:
            self._control_clock += 1.0
            decision = self.control.admit(
                request, self._control_clock, planned=configuration
            )
            action = decision.action.value
            if action == "shed":
                self._resolve_shed(
                    ticket, self._control_clock, reason=decision.reason
                )
                return ticket
            if action == "degrade" and decision.configuration is not None:
                configuration = decision.configuration
                degraded = True
        if self.backend.synchronous:
            outcome = self._executor.execute(configuration, request)
            response = ServiceResponse(
                request_id=outcome.request_id,
                result=outcome.result,
                versions_used=outcome.versions_used,
                response_time_s=outcome.response_time_s,
                invocation_cost=outcome.invocation_cost,
                tier=request.tolerance,
                confidence=outcome.confidence,
            )
            ticket._resolve(response)
            self._unclaimed.append(response)
            if self.trace is not None:
                self._record_sync_trace(
                    request, outcome, degraded=degraded
                )
            if self.control is not None:
                self._publish_outcome(
                    request, outcome, self._control_clock, degraded=degraded
                )
        else:
            self.backend.submit(request, at_time=at_time)
        return ticket

    # ------------------------------------------------------------------
    # control-plane integration (synchronous backends)
    # ------------------------------------------------------------------
    def _resolve_shed(
        self, ticket: TierTicket, at_time: float, *, reason: str
    ) -> None:
        """Fail a ticket the admission controller shed, and record it."""
        from repro.service.simulation.report import RequestRecord

        request = ticket.request
        record = RequestRecord(
            request_id=request.request_id,
            payload=request.payload,
            tier=request.tolerance,
            arrival_s=at_time,
            finished_s=at_time,
            response_time_s=0.0,
            queue_wait_s=0.0,
            versions_used=(),
            escalated=False,
            invocation_cost=0.0,
            node_seconds={},
            failed=False,
            retries=0,
            shed=True,
        )
        ticket._fail(
            RequestShedError(
                f"request {request.request_id!r} was shed by admission "
                f"control: {reason}",
                record=record,
            )
        )
        _log.info(
            "shed request %s at admission: %s", request.request_id, reason
        )
        if self.trace is not None:
            from repro.obs.reconstruct import trace_from_record

            self.trace.add_trace(trace_from_record(record))
        self.control.observe(record, at_time)
        self._pump_control(at_time)

    def _publish_outcome(
        self, request: ServiceRequest, outcome, at_time: float, *, degraded: bool
    ) -> None:
        """Feed one synchronous completion into the control plane."""
        from repro.service.simulation.report import RequestRecord

        record = RequestRecord(
            request_id=outcome.request_id,
            payload=request.payload,
            tier=request.tolerance,
            arrival_s=at_time,
            finished_s=at_time + outcome.response_time_s,
            response_time_s=outcome.response_time_s,
            queue_wait_s=0.0,
            versions_used=outcome.versions_used,
            escalated=outcome.escalated,
            invocation_cost=outcome.invocation_cost,
            node_seconds=dict(outcome.node_seconds),
            failed=False,
            retries=0,
            result=outcome.result,
            confidence=outcome.confidence,
            degraded=degraded,
        )
        self.control.observe(record, at_time)
        self._pump_control(at_time)

    def _record_sync_trace(
        self, request: ServiceRequest, outcome, *, degraded: bool
    ) -> None:
        """Record a coarse trace for a synchronously served request.

        Synchronous sessions have no virtual clock, so the trace
        timeline uses the session's submission counter as the arrival
        time (one unit per submission, matching the control clock) and
        the measured response time as the duration.
        """
        from repro.obs.reconstruct import trace_from_record
        from repro.service.simulation.report import RequestRecord

        arrival = float(len(self._tickets) - 1)
        record = RequestRecord(
            request_id=outcome.request_id,
            payload=request.payload,
            tier=request.tolerance,
            arrival_s=arrival,
            finished_s=arrival + outcome.response_time_s,
            response_time_s=outcome.response_time_s,
            queue_wait_s=0.0,
            versions_used=outcome.versions_used,
            escalated=outcome.escalated,
            invocation_cost=outcome.invocation_cost,
            node_seconds=dict(outcome.node_seconds),
            failed=False,
            retries=0,
            result=outcome.result,
            confidence=outcome.confidence,
            degraded=degraded,
        )
        self.trace.add_trace(trace_from_record(record))

    def trace_for(self, ticket: TierTicket):
        """The span tree recorded for a ticket's request, or ``None``.

        Needs a ``trace`` sink attached at construction; on a simulated
        backend traces materialize at :meth:`drain`.
        """
        if self.trace is None:
            return None
        return self.trace.trace_for(ticket.request.request_id)

    def _pump_control(self, at_time: float) -> None:
        """Evaluate SLOs / adaptation; apply a hot-swap when possible.

        Synchronous sessions have no scheduled control ticks, so the
        loop is pumped after every observation.  An adaptor swap only
        applies to a fixed-configuration session whose backend deploys
        the new configuration's versions; a swap this session cannot
        serve is *declined* back to the plane, so the adaptor's
        bookkeeping keeps tracking the policy actually running.
        """
        swap = self.control.pump(at_time)
        if swap is None:
            return
        deployed = self.backend.versions
        if self.configuration is None or (
            deployed is not None and set(swap.versions) - set(deployed)
        ):
            self.control.decline_swap(swap, at_time)
            return
        self.configuration = swap

    def submit_batch(
        self,
        requests: Iterable[ServiceRequest],
        *,
        at_times: Optional[Sequence[float]] = None,
        deadline_s: Optional[float] = None,
    ) -> List[TierTicket]:
        """Submit many requests; returns their tickets in order.

        Args:
            requests: The annotated requests.
            at_times: Per-request virtual arrival times (simulated
                backends); defaults to ``0.0`` for every request.
            deadline_s: One deadline applied to every ticket.
        """
        requests = list(requests)
        if at_times is None:
            at_times = [0.0] * len(requests)
        if len(at_times) != len(requests):
            raise ValueError(
                f"got {len(requests)} requests but {len(at_times)} arrival "
                "times"
            )
        return [
            self.submit(request, at_time=float(at), deadline_s=deadline_s)
            for request, at in zip(requests, at_times)
        ]

    def drain(self) -> List[ServiceResponse]:
        """Resolve every outstanding request and return the responses.

        On a synchronous backend this returns the responses accumulated
        since the last drain (requests resolved at submit time).  On a
        simulated backend it runs the event loop to completion, resolves
        every ticket from the load-test report — failed requests resolve
        with a :class:`~repro.core.errors.RequestFailedError` on their
        ticket — closes the session, and returns the successful responses
        in completion order.
        """
        if self.backend.synchronous:
            responses = self._unclaimed
            self._unclaimed = []
            # The session's bookkeeping is claimed with the responses; a
            # long-lived synchronous gateway must not accumulate tickets.
            self._tickets = []
            return responses
        if self._closed:
            raise GatewayClosedError("this gateway session is already drained")
        report = self.backend.drain()
        self._closed = True
        by_id = {record.request_id: record for record in report.records}
        responses: List[ServiceResponse] = []
        for ticket in self._tickets:
            record = by_id.get(ticket.request.request_id)
            if record is None:
                _log.error(
                    "no record for submitted request %s at drain",
                    ticket.request.request_id,
                )
                ticket._fail(
                    RequestFailedError(
                        f"request {ticket.request.request_id!r} was submitted "
                        "but the backend produced no record for it"
                    )
                )
            elif record.shed:
                # Admission control dropped the request inside the
                # engine; the ticket resolves with the structured shed
                # error — it must never hang past a drain.
                _log.info(
                    "request %s was shed by engine admission control",
                    record.request_id,
                )
                ticket._fail(
                    RequestShedError(
                        f"request {record.request_id!r} was shed by "
                        "admission control under SLO breach",
                        record=record,
                    )
                )
            elif record.failed:
                _log.info(
                    "request %s failed terminally after %d retries",
                    record.request_id,
                    record.retries,
                )
                ticket._fail(
                    RequestFailedError(
                        f"request {record.request_id!r} failed terminally "
                        f"after {record.retries} retr"
                        f"{'y' if record.retries == 1 else 'ies'}",
                        record=record,
                    )
                )
            else:
                ticket._resolve(
                    ServiceResponse(
                        request_id=record.request_id,
                        result=record.result,
                        versions_used=record.versions_used,
                        response_time_s=record.response_time_s,
                        invocation_cost=record.invocation_cost,
                        tier=ticket.request.tolerance,
                        confidence=(
                            record.confidence
                            if record.confidence is not None
                            else 1.0
                        ),
                    )
                )
        completion_order = {
            record.request_id: i for i, record in enumerate(report.records)
        }
        resolved = [t for t in self._tickets if t.ok]
        resolved.sort(
            key=lambda t: completion_order[t.request.request_id]
        )
        return [t.result() for t in resolved]

    @property
    def tickets(self) -> Tuple[TierTicket, ...]:
        """Tickets issued since the last :meth:`drain`, in submission
        order (a drain claims the session's bookkeeping along with its
        responses)."""
        return tuple(self._tickets)

    # ------------------------------------------------------------------
    # request/response conveniences
    # ------------------------------------------------------------------
    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Serve one request synchronously.

        Raises:
            BackendCapabilityError: On a deferred (simulated) backend,
                where results only materialise at :meth:`drain`.
        """
        if not self.backend.synchronous:
            raise BackendCapabilityError(
                "handle() needs a synchronous backend; submit() and drain() "
                "the simulated backend instead"
            )
        ticket = self.submit(request)
        # One-shot: claimed here, not by the next drain(), and not
        # retained in the session bookkeeping.  A shed request produced
        # no response to claim — its ticket already failed.
        if ticket.ok:
            self._unclaimed.pop()
        self._tickets.pop()
        return ticket.result()

    def handle_http(
        self,
        request_id: str,
        payload: Any,
        headers: Mapping[str, str],
    ) -> ServiceResponse:
        """Serve a request expressed as HTTP-style headers plus a payload.

        This mirrors the paper's ``curl`` example: the ``Tolerance`` and
        ``Objective`` headers select the tier.

        Raises:
            RequestValidationError: If the headers fail to parse.
        """
        try:
            request = ServiceRequest.from_headers(request_id, payload, headers)
        except ValueError as exc:
            raise RequestValidationError(str(exc)) from exc
        return self.handle(request)

    # ------------------------------------------------------------------
    # load-test convenience (simulated backends)
    # ------------------------------------------------------------------
    def run_load(
        self,
        arrivals,
        n_requests: int,
        *,
        tolerance: float = 0.0,
        objective=None,
        payload_ids: Optional[Sequence[Any]] = None,
    ):
        """Generate an offered-load workload and drain it to a report.

        Delegates to the simulated backend's engine, so a gateway-driven
        load test is bit-identical to driving the
        :class:`~repro.service.simulation.engine.ServingSimulator`
        directly.  The session closes when the report returns.

        Raises:
            BackendCapabilityError: On a synchronous backend — offered
                load needs the virtual clock.
        """
        if self.backend.synchronous:
            raise BackendCapabilityError(
                "run_load() needs a simulated backend; synchronous backends "
                "have no virtual clock to pace arrivals on"
            )
        if self._closed:
            raise GatewayClosedError("this gateway session is already drained")
        if self._tickets:
            raise GatewayClosedError(
                "run_load() needs a fresh session; this gateway already has "
                f"{len(self._tickets)} submitted request(s)"
            )
        self._closed = True
        kwargs = {"tolerance": tolerance, "payload_ids": payload_ids}
        if objective is not None:
            kwargs["objective"] = objective
        return self.backend.run(arrivals, n_requests, **kwargs)
