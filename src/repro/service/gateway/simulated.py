"""The deferred execution backend: gateway traffic under the virtual clock.

:class:`SimulatedBackend` plugs the discrete-event engine
(:class:`~repro.service.simulation.engine.ServingSimulator`) in behind the
gateway's client API, so submitted requests experience everything the
engine models — per-node FIFO queues, sublinear batching, pool
autoscaling, and the full PR 3 fault vocabulary (crashes, stragglers,
transient windows, retries with backoff).  Tickets resolve when the
gateway drains; a request the scenario killed resolves with a
:class:`~repro.core.errors.RequestFailedError` instead of a response.

The backend is single-use, like the engine it wraps: one session's clock,
records and pool state belong to one load test.

:meth:`SimulatedBackend.from_scenario` inflates the engine-facing half of
a :class:`~repro.service.simulation.scenarios.ScenarioSpec` (pools,
batching, autoscaling, faults, retry, seed) against a measurement table —
routing stays with the gateway, which is the point: the *public API* is
now the thing a scenario load-tests and fault-injects.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.errors import BackendCapabilityError, GatewayClosedError
from repro.service.cluster import ClusterDeployment
from repro.service.request import ServiceRequest
from repro.service.simulation.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.engine import ServingSimulator
from repro.service.simulation.faults import FaultEvent, RetryPolicy
from repro.service.simulation.replay import build_replay_cluster
from repro.service.simulation.report import LoadTestReport

__all__ = ["SimulatedBackend"]


class SimulatedBackend:
    """Execution backend that paces gateway traffic through the engine.

    Args:
        cluster: The deployment whose queues and pools the session drives.
        batching: Node-level batching policy; default is unbatched.
        autoscaler_config: When given, a fresh
            :class:`~repro.service.simulation.autoscaler.Autoscaler` with
            this config runs during the session.
        faults: Timed fault schedule injected on the virtual clock.
        retry: How failed job attempts are re-driven.
        check_invariants: Verify the engine's conservation laws at drain
            time (see :mod:`repro.service.simulation.invariants`).
        control: Closed-loop control for the session — either a live
            :class:`~repro.service.control.plane.ControlPlane`, or a
            declarative :class:`~repro.service.control.plane.ControlSpec`
            paired with ``control_measurements`` (the plane is then
            built at :meth:`bind` time, anchored on the gateway's
            routing decision).  Requests the plane sheds resolve their
            gateway tickets with a
            :class:`~repro.core.errors.RequestShedError`.
        control_measurements: Measurement table a spec-built plane's
            adaptor re-fits on.
        seed: Seed for arrival sampling, fault and admission draws.
        trace: Optional trace sink — a
            :class:`~repro.obs.trace.TraceCollector` (or a pre-built
            :class:`~repro.obs.record.SimTraceRecorder`) that receives
            one span tree per request; forwarded to the engine at
            :meth:`bind`.  Opt-in and digest-neutral.
    """

    synchronous = False

    def __init__(
        self,
        cluster: ClusterDeployment,
        *,
        batching: Optional[BatchingConfig] = None,
        autoscaler_config: Optional[AutoscalerConfig] = None,
        faults: Sequence[FaultEvent] = (),
        retry: Optional[RetryPolicy] = None,
        check_invariants: bool = False,
        control=None,
        control_measurements=None,
        seed: int = 0,
        engine: Optional[str] = None,
        trace=None,
    ) -> None:
        self.cluster = cluster
        self._engine_choice = engine
        self._trace = trace
        self._batching = batching
        self._autoscaler_config = autoscaler_config
        self._faults = tuple(faults)
        self._retry = retry
        self._check_invariants = check_invariants
        self._control = control
        self._control_measurements = control_measurements
        self._seed = seed
        self._simulator: Optional[ServingSimulator] = None
        self.last_report: Optional[LoadTestReport] = None
        #: The live control plane, once :meth:`bind` inflated it.
        self.control = None

    @classmethod
    def from_scenario(
        cls,
        spec,
        measurements,
        *,
        check_invariants: bool = False,
        selection_policy=None,
        engine: Optional[str] = None,
        trace=None,
    ) -> "SimulatedBackend":
        """Build a backend from a scenario spec's engine-facing fields.

        Inflates ``spec.pools`` into a measurement-replay cluster and
        adopts the spec's batching, autoscaling, fault schedule, retry
        policy and seed.  The spec's *routing* half
        (``configuration``/``router``/``tolerance``/``objective``) is
        deliberately ignored: the gateway owns routing, so the same
        degraded-mode scenario can load-test whichever tier mix the
        gateway serves.

        Args:
            spec: A :class:`~repro.service.simulation.scenarios.ScenarioSpec`.
            measurements: Measurement table the spec's pools and faults
                reference.
            check_invariants: Verify conservation laws at drain time.
            selection_policy: Within-pool node selection override
                (join-shortest-queue by default).
            engine: Execution engine override, forwarded to the
                simulator (``None`` keeps its default resolution).
        """
        cluster = build_replay_cluster(
            measurements, dict(spec.pools), selection_policy=selection_policy
        )
        return cls(
            cluster,
            batching=spec.batching,
            autoscaler_config=spec.autoscaler_config,
            faults=spec.faults,
            retry=spec.retry,
            check_invariants=check_invariants,
            control=spec.control,
            control_measurements=measurements,
            seed=spec.seed,
            engine=engine,
            trace=trace,
        )

    @classmethod
    def from_region(
        cls,
        multi_spec,
        region,
        measurements,
        *,
        check_invariants: bool = False,
        selection_policy=None,
        engine: Optional[str] = None,
    ) -> "SimulatedBackend":
        """Build a backend for one region of a multi-region spec.

        Adopts the named region's engine-facing scenario fields under
        its *spawned* shard seed (see
        :meth:`~repro.service.regions.spec.MultiRegionSpec.equivalent_scenario`),
        so a gateway session against this backend is bit-identical to
        the region's shard in a full
        :func:`~repro.service.regions.runner.run_multi_region` — the
        multi-region spec becomes the single source of truth for both
        the sharded simulation and interactive gateway sessions against
        any one of its regions.

        Args:
            multi_spec: A
                :class:`~repro.service.regions.spec.MultiRegionSpec`.
            region: Region name or declaration index.
            measurements: Measurement table the region's pools and
                faults reference.
            check_invariants: Verify conservation laws at drain time.
            selection_policy: Within-pool node selection override.
            engine: Execution engine override.
        """
        if isinstance(region, str):
            names = list(multi_spec.region_names)
            if region not in names:
                raise KeyError(f"unknown region {region!r}")
            index = names.index(region)
        else:
            index = int(region)
        scenario = multi_spec.equivalent_scenario(index)
        return cls.from_scenario(
            scenario,
            measurements,
            check_invariants=check_invariants,
            selection_policy=selection_policy,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # gateway protocol
    # ------------------------------------------------------------------
    @property
    def versions(self) -> Tuple[str, ...]:
        """Versions the wrapped deployment can serve."""
        return self.cluster.versions

    def attach_trace(self, trace) -> None:
        """Attach a trace sink before the gateway binds the engine.

        Raises:
            GatewayClosedError: If the engine was already built — the
                sink must be in place before the first event runs.
        """
        if self._simulator is not None:
            raise GatewayClosedError(
                "this SimulatedBackend is already bound; attach the trace "
                "sink before building the gateway"
            )
        self._trace = trace

    def bind(self, *, router=None, configuration=None) -> None:
        """Attach the gateway's routing decision and build the engine.

        Called once by :class:`~repro.service.gateway.gateway.TierGateway`
        at construction; the engine needs the router (or fixed
        configuration) to decide which pools' queues each arrival joins.
        """
        if self._simulator is not None:
            raise GatewayClosedError(
                "this SimulatedBackend is already bound to a gateway; the "
                "engine is single-use — build a fresh backend per session"
            )
        control = self._control
        if control is not None and not hasattr(control, "on_tick"):
            # A declarative ControlSpec: inflate it now, anchored on the
            # routing decision the gateway just bound.
            from repro.service.control.plane import ControlPlane

            control = ControlPlane.from_spec(
                control,
                measurements=self._control_measurements,
                configuration=configuration,
                router=router,
                seed=self._seed,
                deployed_versions=self.cluster.versions,
            )
        self.control = control
        trace = self._trace
        if trace is not None and not hasattr(trace, "on_finalized"):
            from repro.obs.record import SimTraceRecorder

            trace = SimTraceRecorder(trace)
        self._simulator = ServingSimulator(
            self.cluster,
            router=router,
            configuration=configuration,
            batching=self._batching,
            autoscaler=(
                Autoscaler(self._autoscaler_config)
                if self._autoscaler_config is not None
                else None
            ),
            faults=self._faults,
            retry=self._retry,
            check_invariants=self._check_invariants,
            control=control,
            trace=trace,
            seed=self._seed,
            engine=self._engine_choice,
        )

    def _engine(self) -> ServingSimulator:
        if self._simulator is None:
            raise GatewayClosedError(
                "this SimulatedBackend is not bound to a gateway yet"
            )
        return self._simulator

    def submit(self, request: ServiceRequest, *, at_time: float = 0.0) -> None:
        """Schedule one request's arrival on the virtual clock."""
        self._engine().submit(request, at_time=at_time)

    def drain(self) -> LoadTestReport:
        """Run the event loop until every submitted request resolved."""
        report = self._engine().drain()
        self.last_report = report
        return report

    def run(
        self,
        arrivals,
        n_requests: int,
        *,
        tolerance: float = 0.0,
        objective=None,
        payload_ids=None,
    ) -> LoadTestReport:
        """Generate an offered-load workload and drain it to a report.

        Thin delegation to
        :meth:`~repro.service.simulation.engine.ServingSimulator.run`, so
        gateway-driven load tests consume exactly the random draws a
        directly driven engine would — same seed, same report digest.
        """
        kwargs = {"tolerance": tolerance, "payload_ids": payload_ids}
        if objective is not None:
            kwargs["objective"] = objective
        report = self._engine().run(arrivals, n_requests, **kwargs)
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # synchronous protocol (unsupported by design)
    # ------------------------------------------------------------------
    def invoke(self, version: str, request: ServiceRequest):
        """Deferred backends cannot invoke synchronously."""
        raise BackendCapabilityError(
            "SimulatedBackend resolves requests at drain time; it cannot "
            "execute a single invocation synchronously"
        )

    def cost_of(self, node_seconds):
        """Billing happens inside the engine, per finalized request."""
        raise BackendCapabilityError(
            "SimulatedBackend bills requests inside the engine; price "
            "node-seconds with the cluster's pricing model instead"
        )
