"""Instance-type catalogue.

The paper prices its service deployments against public IaaS price lists
(IBM Bluemix / AWS are cited).  This module provides a small catalogue of
CPU and GPU instance types with hourly prices and relative speed factors;
the exact dollar figures are representative of 2018-era list prices — the
cost experiments only depend on the *ratios* between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["INSTANCE_CATALOG", "InstanceType", "get_instance_type"]


@dataclass(frozen=True)
class InstanceType:
    """One rentable machine type.

    Attributes:
        name: Catalogue name, e.g. ``"cpu.large"``.
        hourly_price: Price per node-hour in dollars.
        speed_factor: Relative compute throughput (1.0 = the baseline CPU
            node the latency models assume); a node with speed factor 2.0
            halves processing latency.
        is_gpu: Whether the node carries an accelerator.
    """

    name: str
    hourly_price: float
    speed_factor: float
    is_gpu: bool = False

    def __post_init__(self) -> None:
        if self.hourly_price <= 0.0:
            raise ValueError("hourly_price must be positive")
        if self.speed_factor <= 0.0:
            raise ValueError("speed_factor must be positive")

    @property
    def price_per_second(self) -> float:
        """Price of one node-second."""
        return self.hourly_price / 3600.0


#: Representative instance catalogue (prices in $/hour).
INSTANCE_CATALOG: Dict[str, InstanceType] = {
    "cpu.small": InstanceType(name="cpu.small", hourly_price=0.10, speed_factor=0.6),
    "cpu.medium": InstanceType(name="cpu.medium", hourly_price=0.20, speed_factor=1.0),
    "cpu.large": InstanceType(name="cpu.large", hourly_price=0.40, speed_factor=1.6),
    "gpu.k80": InstanceType(
        name="gpu.k80", hourly_price=0.90, speed_factor=8.0, is_gpu=True
    ),
    "gpu.v100": InstanceType(
        name="gpu.v100", hourly_price=2.50, speed_factor=20.0, is_gpu=True
    ),
}


def get_instance_type(name: str) -> InstanceType:
    """Look up an instance type by name.

    Raises:
        KeyError: If the catalogue has no such instance type.
    """
    try:
        return INSTANCE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; catalogue has "
            f"{sorted(INSTANCE_CATALOG)}"
        ) from None


def catalog_names() -> List[str]:
    """Names of all instance types in the catalogue."""
    return list(INSTANCE_CATALOG.keys())
