"""Per-request, per-version measurements.

Everything Tolerance Tiers decides — which versions to ensemble, what
threshold to escalate at, what worst-case degradation a tier can promise —
is decided from *measurements*: for every training request and every
service version, what error did the version make, how long did it take, and
how confident was it.  The limitation analysis of Section III consumes the
same data.  :class:`MeasurementSet` is that table, and the ``measure_*``
builders produce it from the three substrates in this repository:

* :func:`measure_asr_service` — decode a synthetic speech corpus with every
  ASR beam-search version (real decoder, real WER).
* :func:`measure_ic_service` — sample the calibrated CPU/GPU profiles of the
  five ImageNet networks.
* :func:`measure_mini_ic_service` — train the miniature NumPy CNNs on the
  synthetic image dataset and classify a held-out split (real inference).

Measurement sets serialise to JSON so the expensive ASR decode can be
cached across benchmark runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.service.instances import InstanceType, get_instance_type

__all__ = [
    "MeasurementSet",
    "VersionMeasurement",
    "measure_asr_service",
    "measure_ic_service",
    "measure_mini_ic_service",
]


@dataclass(frozen=True)
class VersionMeasurement:
    """One (request, version) observation.

    Attributes:
        request_id: Identifier of the request.
        version: Service-version name.
        error: The version's error on the request (per-utterance WER, or
            0/1 top-1 error).
        latency_s: Service-side processing latency on the version's node.
        confidence: Model confidence in ``[0, 1]``.
    """

    request_id: str
    version: str
    error: float
    latency_s: float
    confidence: float

    def __post_init__(self) -> None:
        if self.error < 0.0:
            raise ValueError("error must be non-negative")
        if self.latency_s < 0.0:
            raise ValueError("latency_s must be non-negative")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")


@dataclass
class MeasurementSet:
    """Dense (requests x versions) measurement table for one service.

    Attributes:
        service: Service name, e.g. ``"asr"`` or ``"ic_cpu"``.
        request_ids: Request identifiers (row order).
        versions: Service-version names (column order, fastest first by
            convention).
        error: Array of shape ``(n_requests, n_versions)``.
        latency_s: Array of the same shape.
        confidence: Array of the same shape.
        version_instances: Instance-type name each version is deployed on
            (used by the pricing model).
        metadata: Free-form provenance (corpus seed, sizes, ...).
    """

    service: str
    request_ids: Tuple[str, ...]
    versions: Tuple[str, ...]
    error: np.ndarray
    latency_s: np.ndarray
    confidence: np.ndarray
    version_instances: Dict[str, str]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = (len(self.request_ids), len(self.versions))
        for name in ("error", "latency_s", "confidence"):
            arr = np.asarray(getattr(self, name), dtype=float)
            setattr(self, name, arr)
            if arr.shape != expected:
                raise ValueError(
                    f"{name} has shape {arr.shape}, expected {expected}"
                )
        missing = set(self.versions) - set(self.version_instances)
        if missing:
            raise ValueError(f"versions without an instance type: {sorted(missing)}")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of requests (rows)."""
        return len(self.request_ids)

    @property
    def n_versions(self) -> int:
        """Number of service versions (columns)."""
        return len(self.versions)

    def version_index(self, version: str) -> int:
        """Column index of a version.

        Raises:
            KeyError: If the version is not in the set.
        """
        try:
            return self.versions.index(version)
        except ValueError:
            raise KeyError(
                f"unknown version {version!r}; have {list(self.versions)}"
            ) from None

    def instance_for(self, version: str) -> InstanceType:
        """Instance type a version is deployed on."""
        return get_instance_type(self.version_instances[version])

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def mean_error(self, version: str) -> float:
        """Mean per-request error of one version."""
        return float(self.error[:, self.version_index(version)].mean())

    def mean_latency(self, version: str) -> float:
        """Mean processing latency of one version."""
        return float(self.latency_s[:, self.version_index(version)].mean())

    def most_accurate_version(self) -> str:
        """The version with the lowest mean error (the paper's 'best tier')."""
        means = self.error.mean(axis=0)
        return self.versions[int(np.argmin(means))]

    def fastest_version(self) -> str:
        """The version with the lowest mean latency."""
        means = self.latency_s.mean(axis=0)
        return self.versions[int(np.argmin(means))]

    def column(self, version: str, field_name: str) -> np.ndarray:
        """One version's per-request values for a field.

        Args:
            version: Service-version name.
            field_name: ``"error"``, ``"latency_s"`` or ``"confidence"``.
        """
        if field_name not in ("error", "latency_s", "confidence"):
            raise ValueError(f"unknown field {field_name!r}")
        return getattr(self, field_name)[:, self.version_index(version)].copy()

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "MeasurementSet":
        """Return a new measurement set restricted to the given rows."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise ValueError("cannot build an empty measurement subset")
        return MeasurementSet(
            service=self.service,
            request_ids=tuple(self.request_ids[i] for i in idx),
            versions=self.versions,
            error=self.error[idx],
            latency_s=self.latency_s[idx],
            confidence=self.confidence[idx],
            version_instances=dict(self.version_instances),
            metadata=dict(self.metadata),
        )

    def split(
        self, train_indices: Sequence[int], test_indices: Sequence[int]
    ) -> Tuple["MeasurementSet", "MeasurementSet"]:
        """Return ``(train, test)`` measurement subsets."""
        return self.subset(train_indices), self.subset(test_indices)

    def restrict_versions(self, versions: Sequence[str]) -> "MeasurementSet":
        """Return a new measurement set covering only the given versions.

        Useful when a deployment only hosts a subset of the measured
        versions (e.g. the live-serving example deploys two of the five
        miniature CNNs).

        Raises:
            KeyError: If any requested version is not in the set.
            ValueError: If no versions are requested.
        """
        versions = list(versions)
        if not versions:
            raise ValueError("must keep at least one version")
        columns = [self.version_index(v) for v in versions]
        return MeasurementSet(
            service=self.service,
            request_ids=self.request_ids,
            versions=tuple(versions),
            error=self.error[:, columns],
            latency_s=self.latency_s[:, columns],
            confidence=self.confidence[:, columns],
            version_instances={v: self.version_instances[v] for v in versions},
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # construction / (de)serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        service: str,
        records: Sequence[VersionMeasurement],
        version_instances: Mapping[str, str],
        *,
        versions_order: Optional[Sequence[str]] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "MeasurementSet":
        """Assemble a dense set from individual measurement records.

        Every request must have exactly one record per version.
        """
        if not records:
            raise ValueError("no measurement records supplied")
        request_ids = list(dict.fromkeys(r.request_id for r in records))
        versions = list(versions_order) if versions_order else list(
            dict.fromkeys(r.version for r in records)
        )
        row = {rid: i for i, rid in enumerate(request_ids)}
        col = {v: j for j, v in enumerate(versions)}
        shape = (len(request_ids), len(versions))
        error = np.full(shape, np.nan)
        latency = np.full(shape, np.nan)
        confidence = np.full(shape, np.nan)
        for record in records:
            i, j = row[record.request_id], col[record.version]
            error[i, j] = record.error
            latency[i, j] = record.latency_s
            confidence[i, j] = record.confidence
        if np.isnan(error).any():
            raise ValueError("measurement table is incomplete (missing cells)")
        return cls(
            service=service,
            request_ids=tuple(request_ids),
            versions=tuple(versions),
            error=error,
            latency_s=latency,
            confidence=confidence,
            version_instances=dict(version_instances),
            metadata=metadata or {},
        )

    def to_json(self, path: str | Path) -> None:
        """Serialise the measurement set to a JSON file."""
        payload = {
            "service": self.service,
            "request_ids": list(self.request_ids),
            "versions": list(self.versions),
            "error": self.error.tolist(),
            "latency_s": self.latency_s.tolist(),
            "confidence": self.confidence.tolist(),
            "version_instances": self.version_instances,
            "metadata": self.metadata,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: str | Path) -> "MeasurementSet":
        """Load a measurement set previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            service=payload["service"],
            request_ids=tuple(payload["request_ids"]),
            versions=tuple(payload["versions"]),
            error=np.asarray(payload["error"], dtype=float),
            latency_s=np.asarray(payload["latency_s"], dtype=float),
            confidence=np.asarray(payload["confidence"], dtype=float),
            version_instances=dict(payload["version_instances"]),
            metadata=dict(payload.get("metadata", {})),
        )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def measure_asr_service(
    corpus=None,
    *,
    n_utterances: int = 200,
    seed: int = 20190324,
    versions=None,
    instance_type: str = "cpu.medium",
    cache_path: str | Path | None = None,
) -> MeasurementSet:
    """Decode a synthetic speech corpus with every ASR service version.

    Args:
        corpus: An existing :class:`~repro.datasets.voxforge.SyntheticSpeechCorpus`;
            built from ``n_utterances``/``seed`` when omitted.
        n_utterances: Corpus size when ``corpus`` is omitted.
        seed: Corpus seed when ``corpus`` is omitted.
        versions: Mapping of version name to
            :class:`~repro.asr.beam_search.BeamSearchConfig`; defaults to the
            seven paper versions.
        instance_type: Instance type every ASR pool runs on (the paper's ASR
            engine is CPU-only).
        cache_path: Optional JSON path; when it exists the cached set is
            returned, otherwise the fresh measurements are written there.

    Returns:
        A dense measurement set with one row per utterance.
    """
    from repro.asr import ASREngine, ASR_VERSIONS
    from repro.datasets.voxforge import make_voxforge_surrogate

    if cache_path is not None and Path(cache_path).exists():
        return MeasurementSet.from_json(cache_path)

    if corpus is None:
        corpus = make_voxforge_surrogate(n_utterances=n_utterances, seed=seed)
    if versions is None:
        versions = ASR_VERSIONS
    engine = ASREngine.from_corpus(corpus)
    speed = get_instance_type(instance_type).speed_factor

    records: List[VersionMeasurement] = []
    for name, config in versions.items():
        for utterance in corpus.utterances:
            result = engine.transcribe(utterance, config)
            records.append(
                VersionMeasurement(
                    request_id=utterance.utterance_id,
                    version=name,
                    error=result.wer,
                    latency_s=result.latency_s / speed,
                    confidence=result.confidence,
                )
            )
    measurement_set = MeasurementSet.from_records(
        "asr",
        records,
        {name: instance_type for name in versions},
        versions_order=list(versions.keys()),
        metadata={
            "corpus_seed": corpus.config.seed,
            "n_utterances": len(corpus),
            "vocabulary_size": corpus.config.vocabulary_size,
        },
    )
    if cache_path is not None:
        Path(cache_path).parent.mkdir(parents=True, exist_ok=True)
        measurement_set.to_json(cache_path)
    return measurement_set


def measure_ic_service(
    n_requests: int = 5000,
    *,
    device: str = "cpu",
    seed: int = 2012,
    cache_path: str | Path | None = None,
) -> MeasurementSet:
    """Sample the calibrated image-classification profiles for one device.

    Args:
        n_requests: Number of simulated classification requests.
        device: ``"cpu"`` or ``"gpu"``; selects the profile table and the
            instance type the versions are priced on.
        seed: Sampling seed.
        cache_path: Optional JSON cache path.
    """
    from repro.vision.profiles import (
        IC_CPU_VERSIONS,
        IC_GPU_VERSIONS,
        simulate_ic_measurements,
    )

    if cache_path is not None and Path(cache_path).exists():
        return MeasurementSet.from_json(cache_path)
    if device not in ("cpu", "gpu"):
        raise ValueError("device must be 'cpu' or 'gpu'")

    versions = IC_CPU_VERSIONS if device == "cpu" else IC_GPU_VERSIONS
    instance = "cpu.medium" if device == "cpu" else "gpu.k80"
    _, outcomes = simulate_ic_measurements(n_requests, versions=versions, seed=seed)

    request_ids = tuple(f"img_{i:06d}" for i in range(n_requests))
    names = tuple(versions.keys())
    error = np.column_stack([outcomes[name].error for name in names])
    latency = np.column_stack([outcomes[name].latency_s for name in names])
    confidence = np.column_stack([outcomes[name].confidence for name in names])

    measurement_set = MeasurementSet(
        service=f"ic_{device}",
        request_ids=request_ids,
        versions=names,
        error=error,
        latency_s=latency,
        confidence=confidence,
        version_instances={name: instance for name in names},
        metadata={"seed": seed, "device": device, "n_requests": n_requests},
    )
    if cache_path is not None:
        Path(cache_path).parent.mkdir(parents=True, exist_ok=True)
        measurement_set.to_json(cache_path)
    return measurement_set


def measure_mini_ic_service(
    *,
    n_images: int = 600,
    n_classes: int = 6,
    image_size: int = 8,
    train_fraction: float = 0.6,
    epochs: int = 4,
    seed: int = 2012,
    instance_type: str = "cpu.medium",
) -> MeasurementSet:
    """Train the miniature NumPy CNNs and measure them on held-out images.

    This builder exercises the *real* inference path (the NumPy layers) end
    to end: each miniature network is trained briefly on the synthetic image
    dataset and then measured on a held-out split.  It is slower and noisier
    than the calibrated profiles, so tests and examples use small sizes.
    """
    from repro.datasets.imagenet import SyntheticImageNetConfig, SyntheticImageDataset
    from repro.vision.classifier import ImageClassifier
    from repro.vision.model_zoo import MINI_MODEL_BUILDERS, build_mini_model
    from repro.vision.training import SGDTrainer, TrainingConfig

    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    dataset = SyntheticImageDataset(
        SyntheticImageNetConfig(
            n_images=n_images,
            n_classes=n_classes,
            image_size=image_size,
            seed=seed,
        )
    )
    n_train = int(n_images * train_fraction)
    train_x, train_y = dataset.images[:n_train], dataset.labels[:n_train]
    test_x, test_y = dataset.images[n_train:], dataset.labels[n_train:]
    request_ids = tuple(f"img_{i:06d}" for i in range(n_train, n_images))

    records: List[VersionMeasurement] = []
    names = list(MINI_MODEL_BUILDERS.keys())
    for name in names:
        network = build_mini_model(
            name, dataset.images.shape[1:], n_classes, seed=seed
        )
        trainer = SGDTrainer(
            network, TrainingConfig(epochs=epochs, seed=seed, learning_rate=0.08)
        )
        trainer.train(train_x, train_y)
        classifier = ImageClassifier(network)
        for result in classifier.classify_batch(
            test_x, test_y, request_ids=request_ids
        ):
            records.append(
                VersionMeasurement(
                    request_id=result.request_id,
                    version=name,
                    error=result.top1_error,
                    latency_s=result.latency_s,
                    confidence=result.confidence,
                )
            )
    return MeasurementSet.from_records(
        "ic_mini",
        records,
        {name: instance_type for name in names},
        versions_order=names,
        metadata={"seed": seed, "n_test_images": len(request_ids)},
    )
