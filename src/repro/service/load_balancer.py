"""Load balancing across service-node pools.

The paper's deployment picture is a front-end load balancer (the role
filled by Zuul/Nginx in production stacks) that forwards each request to a
node running the right service version.  Tolerance Tiers extends that load
balancer with routing *policies* (which version(s) to use per tier); the
mechanics of picking a node inside a version's pool stay the same and live
here.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.service.node import ServiceNode, VersionResult

__all__ = ["LoadBalancer", "RoundRobinPolicy", "LeastBusyPolicy"]


class RoundRobinPolicy:
    """Select nodes in cyclic order, independent of load."""

    def __init__(self) -> None:
        self._cursor: Dict[str, int] = {}

    def select(self, version: str, nodes: Sequence[ServiceNode]) -> ServiceNode:
        """Pick the next node of ``version``'s pool."""
        if not nodes:
            raise ValueError(f"no nodes available for version {version!r}")
        index = self._cursor.get(version, 0) % len(nodes)
        self._cursor[version] = index + 1
        return nodes[index]


class LeastBusyPolicy:
    """Select the node that has accumulated the least busy time."""

    def select(self, version: str, nodes: Sequence[ServiceNode]) -> ServiceNode:
        """Pick the least-busy node of ``version``'s pool."""
        if not nodes:
            raise ValueError(f"no nodes available for version {version!r}")
        return min(nodes, key=lambda node: node.busy_seconds)


class LoadBalancer:
    """Dispatches requests to the node pools of the registered versions.

    Args:
        pools: Mapping from version name to its list of nodes.
        selection_policy: How to pick a node within a pool; defaults to
            round-robin.
    """

    def __init__(
        self,
        pools: Dict[str, List[ServiceNode]],
        *,
        selection_policy: RoundRobinPolicy | LeastBusyPolicy | None = None,
    ) -> None:
        if not pools:
            raise ValueError("load balancer needs at least one version pool")
        for version, nodes in pools.items():
            if not nodes:
                raise ValueError(f"version {version!r} has an empty node pool")
        self._pools = {version: list(nodes) for version, nodes in pools.items()}
        self._policy = selection_policy or RoundRobinPolicy()

    @property
    def versions(self) -> Tuple[str, ...]:
        """Names of the versions the balancer can route to."""
        return tuple(self._pools.keys())

    def pool_size(self, version: str) -> int:
        """Number of nodes serving ``version``."""
        return len(self._require_pool(version))

    def _require_pool(self, version: str) -> List[ServiceNode]:
        try:
            return self._pools[version]
        except KeyError:
            raise KeyError(
                f"unknown service version {version!r}; registered versions are "
                f"{sorted(self._pools)}"
            ) from None

    def dispatch(
        self, version: str, request_id: str, payload: Any
    ) -> Tuple[VersionResult, float]:
        """Send one request to one version; returns ``(result, latency_s)``."""
        node = self._policy.select(version, self._require_pool(version))
        return node.process(request_id, payload)

    def dispatch_many(
        self, versions: Iterable[str], request_id: str, payload: Any
    ) -> Dict[str, Tuple[VersionResult, float]]:
        """Send the same request to several versions (concurrent ensembles).

        Returns a mapping from version name to ``(result, latency_s)``; the
        caller decides how to combine them (e.g. take the fast result if it
        is confident, otherwise wait for the accurate one).
        """
        return {
            version: self.dispatch(version, request_id, payload)
            for version in versions
        }

    def total_busy_seconds(self) -> Dict[str, float]:
        """Busy node-seconds accumulated per version across its pool."""
        return {
            version: sum(node.busy_seconds for node in nodes)
            for version, nodes in self._pools.items()
        }
