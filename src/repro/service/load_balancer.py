"""Load balancing across service-node pools.

The paper's deployment picture is a front-end load balancer (the role
filled by Zuul/Nginx in production stacks) that forwards each request to a
node running the right service version.  Tolerance Tiers extends that load
balancer with routing *policies* (which version(s) to use per tier); the
mechanics of picking a node inside a version's pool stay the same and live
here.

Beyond the synchronous :meth:`LoadBalancer.dispatch` replay call, the
balancer exposes the queueing interface the discrete-event engine in
:mod:`repro.service.simulation` consumes — :meth:`LoadBalancer.submit`
enqueues onto a selected node's FIFO queue and :meth:`LoadBalancer.drain`
executes all queued work — plus pool mutation (:meth:`LoadBalancer.add_node`
/ :meth:`LoadBalancer.remove_node`) so an autoscaler can grow and shrink
pools while requests are in flight.  Fault injection adds the crash path:
:meth:`LoadBalancer.evict_node` forcibly removes a specific (dead) node and
hands its queued work back to the caller, and node selection skips nodes
whose :attr:`~repro.service.node.ServiceNode.alive` flag has dropped, so
traffic never routes onto a corpse.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.service.node import NodeCompletion, ServiceNode, VersionResult

__all__ = [
    "JoinShortestQueuePolicy",
    "LeastBusyPolicy",
    "LoadBalancer",
    "RoundRobinPolicy",
]


class RoundRobinPolicy:
    """Select nodes in cyclic order, independent of load.

    The per-version cursor is kept bounded (always in ``[0, len(pool))``)
    and snaps back to the head of the pool whenever the pool shrank below
    the cursor since the last call, so autoscaling a pool down never skews
    the rotation.
    """

    def __init__(self) -> None:
        self._cursor: Dict[str, int] = {}

    def select(self, version: str, nodes: Sequence[ServiceNode]) -> ServiceNode:
        """Pick the next node of ``version``'s pool."""
        if not nodes:
            raise ValueError(f"no nodes available for version {version!r}")
        index = self._cursor.get(version, 0)
        if index >= len(nodes):
            index = 0
        self._cursor[version] = (index + 1) % len(nodes)
        return nodes[index]

    def reset(self, version: Optional[str] = None) -> None:
        """Forget the rotation state for one version (or all of them).

        Called by the load balancer whenever a pool's membership changes,
        so a stale cursor never outlives the pool it indexed.
        """
        if version is None:
            self._cursor.clear()
        else:
            self._cursor.pop(version, None)


class LeastBusyPolicy:
    """Select the node that has accumulated the least busy time.

    Ties (e.g. a freshly built pool where every node has zero busy time)
    resolve to the earliest node in pool order, so selection stays
    deterministic.
    """

    def select(self, version: str, nodes: Sequence[ServiceNode]) -> ServiceNode:
        """Pick the least-busy node of ``version``'s pool."""
        if not nodes:
            raise ValueError(f"no nodes available for version {version!r}")
        return min(nodes, key=lambda node: node.busy_seconds)


class JoinShortestQueuePolicy:
    """Select the node with the least backlog (queue depth, then busy-until).

    This is the natural policy for the queueing simulator: it looks at what
    is *waiting* on each node rather than at historical busy time, so a
    node that just went idle wins over one with a deep queue even if the
    idle node has served more traffic overall.
    """

    def select(self, version: str, nodes: Sequence[ServiceNode]) -> ServiceNode:
        """Pick the node with the shortest queue of ``version``'s pool."""
        if not nodes:
            raise ValueError(f"no nodes available for version {version!r}")
        return min(nodes, key=lambda node: (node.queue_depth, node.busy_until))


class LoadBalancer:
    """Dispatches requests to the node pools of the registered versions.

    Args:
        pools: Mapping from version name to its list of nodes.
        selection_policy: How to pick a node within a pool; defaults to
            round-robin.
    """

    def __init__(
        self,
        pools: Dict[str, List[ServiceNode]],
        *,
        selection_policy: RoundRobinPolicy
        | LeastBusyPolicy
        | JoinShortestQueuePolicy
        | None = None,
    ) -> None:
        if not pools:
            raise ValueError("load balancer needs at least one version pool")
        for version, nodes in pools.items():
            if not nodes:
                raise ValueError(f"version {version!r} has an empty node pool")
        self._pools = {version: list(nodes) for version, nodes in pools.items()}
        self._policy = selection_policy or RoundRobinPolicy()

    @property
    def versions(self) -> Tuple[str, ...]:
        """Names of the versions the balancer can route to."""
        return tuple(self._pools.keys())

    def pool_size(self, version: str) -> int:
        """Number of nodes serving ``version``."""
        return len(self._require_pool(version))

    def nodes_of(self, version: str) -> Tuple[ServiceNode, ...]:
        """The nodes currently serving ``version`` (read-only view)."""
        return tuple(self._require_pool(version))

    def _require_pool(self, version: str) -> List[ServiceNode]:
        try:
            return self._pools[version]
        except KeyError:
            raise KeyError(
                f"unknown service version {version!r}; registered versions are "
                f"{sorted(self._pools)}"
            ) from None

    def _reset_policy(self, version: str) -> None:
        reset = getattr(self._policy, "reset", None)
        if reset is not None:
            reset(version)

    # ------------------------------------------------------------------
    # pool mutation (autoscaling)
    # ------------------------------------------------------------------
    def add_node(self, version: str, node: ServiceNode) -> None:
        """Grow a version's pool by one node.

        Selection-policy state for the version is reset so rotation starts
        cleanly over the new membership.
        """
        self._require_pool(version).append(node)
        self._reset_policy(version)

    def remove_node(
        self,
        version: str,
        *,
        now: Optional[float] = None,
        only_idle: bool = True,
    ) -> Optional[ServiceNode]:
        """Shrink a version's pool by one node.

        Args:
            version: Pool to shrink.
            now: Current virtual time, for the in-flight-work check.  The
                event engine passes its clock here; leave ``None`` on the
                synchronous replay path, where execution is eager and a
                node with an empty queue is idle no matter what virtual
                timestamp its past work reached.
            only_idle: When true (the default), only an idle node — empty
                queue, and no batch still running at ``now`` when a clock
                is given — may be removed; ``None`` is returned when every
                node is busy.  When false, an idle node is still
                preferred, but a busy one may be evicted — its queued
                (not yet started) requests are requeued onto the surviving
                nodes, preserving their original enqueue times, so no work
                is silently dropped.

        Returns:
            The removed node, or ``None`` when ``only_idle`` found no
            removable node.

        Raises:
            ValueError: If removal would empty the pool.
        """
        pool = self._require_pool(version)
        if len(pool) <= 1:
            raise ValueError(
                f"cannot remove the last node of version {version!r}"
            )
        idle = [
            node
            for node in pool
            if node.queue_depth == 0
            and (now is None or node.busy_until <= now)
        ]
        if not idle and only_idle:
            return None
        node = idle[-1] if idle else pool[-1]
        pool.remove(node)
        self._reset_policy(version)
        if node.queue_depth:
            for item in node.pop_batch(node.queue_depth):
                self._policy.select(version, pool).requeue(item)
        return node

    def evict_node(self, version: str, node: ServiceNode) -> List["QueuedRequest"]:
        """Forcibly remove a *specific* node (the crash path).

        Unlike :meth:`remove_node` this ignores idleness, may leave the
        pool empty (a whole pool can die; routing to it then raises until
        capacity recovers), and does *not* redistribute the victim's
        queued work — the queued items are returned so the caller (the
        simulation engine) can requeue them with its own bookkeeping.

        Raises:
            ValueError: If ``node`` is not in ``version``'s pool.
        """
        pool = self._require_pool(version)
        try:
            pool.remove(node)
        except ValueError:
            raise ValueError(
                f"node {node.node_id} is not in version {version!r}'s pool"
            ) from None
        self._reset_policy(version)
        return node.pop_batch(node.queue_depth) if node.queue_depth else []

    # ------------------------------------------------------------------
    # queueing interface
    # ------------------------------------------------------------------
    def select_node(self, version: str) -> ServiceNode:
        """Pick the node the selection policy would route to next.

        Dead nodes never receive traffic: crashed nodes normally leave the
        pool via :meth:`evict_node`, but the selection also filters on
        :attr:`~repro.service.node.ServiceNode.alive` as a second line of
        defence, so a stale pool reference cannot route onto a corpse.

        Raises:
            ValueError: If the pool has no live node (the policies raise
                on an empty candidate list).
        """
        pool = self._require_pool(version)
        live = [node for node in pool if node.alive]
        if len(live) != len(pool):
            return self._policy.select(version, live)
        return self._policy.select(version, pool)

    def live_pool_size(self, version: str) -> int:
        """Number of live (routable) nodes serving ``version``."""
        return sum(1 for node in self._require_pool(version) if node.alive)

    def advertised_capacity_rps(
        self, service_time_s: Mapping[str, float]
    ) -> float:
        """Aggregate request rate the live pools can absorb, in req/s.

        A health-check-level capacity estimate: each live node of a
        version absorbs ``1 / service_time`` requests per second, summed
        across every version with a known positive service time.  The
        region router uses this to decide when a region is *saturated*
        enough to spill traffic to a peer — it is an advertised number
        (no queueing, no batching amortization), deliberately the same
        coarse view a production health endpoint would export.
        """
        total = 0.0
        for version in self.versions:
            seconds = service_time_s.get(version)
            if seconds is not None and seconds > 0.0:
                total += self.live_pool_size(version) / seconds
        return total

    def submit(
        self, version: str, request_id: str, payload: Any, *, now: float = 0.0
    ) -> ServiceNode:
        """Enqueue a request on a policy-selected node of ``version``.

        Returns the node chosen, so callers (the simulation engine, or an
        early-termination policy that may later cancel the work) can track
        where the request went.
        """
        node = self.select_node(version)
        node.submit(request_id, payload, now=now)
        return node

    def drain(
        self, *, now: float = 0.0, batching=None
    ) -> Dict[str, List[NodeCompletion]]:
        """Execute all queued work on every pool, per-version.

        Returns:
            Mapping from version name to the completions its nodes
            produced, in execution order.
        """
        completions: Dict[str, List[NodeCompletion]] = {}
        for version, nodes in self._pools.items():
            done: List[NodeCompletion] = []
            for node in nodes:
                done.extend(node.drain(now=now, batching=batching))
            if done:
                completions[version] = done
        return completions

    def queue_depths(self) -> Dict[str, int]:
        """Total queued (not yet started) requests per version."""
        return {
            version: sum(node.queue_depth for node in nodes)
            for version, nodes in self._pools.items()
        }

    # ------------------------------------------------------------------
    # synchronous replay interface
    # ------------------------------------------------------------------
    def dispatch(
        self, version: str, request_id: str, payload: Any
    ) -> Tuple[VersionResult, float]:
        """Send one request to one version; returns ``(result, latency_s)``."""
        node = self.select_node(version)
        return node.process(request_id, payload)

    def dispatch_many(
        self, versions: Iterable[str], request_id: str, payload: Any
    ) -> Dict[str, Tuple[VersionResult, float]]:
        """Send the same request to several versions (concurrent ensembles).

        Returns a mapping from version name to ``(result, latency_s)``; the
        caller decides how to combine them (e.g. take the fast result if it
        is confident, otherwise wait for the accurate one).
        """
        return {
            version: self.dispatch(version, request_id, payload)
            for version in versions
        }

    def total_busy_seconds(self) -> Dict[str, float]:
        """Busy node-seconds accumulated per version across its pool."""
        return {
            version: sum(node.busy_seconds for node in nodes)
            for version, nodes in self._pools.items()
        }
