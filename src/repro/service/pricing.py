"""Pricing models: what the consumer pays and what the provider pays.

Two costs matter in the paper's evaluation:

* the **invocation cost** billed to the API consumer every time the service
  is invoked (the paper's cost-objective tiers minimise this), and
* the **IaaS cost** the provider pays for the node-seconds its service
  versions consume (this is where a concurrent ensemble that lets a slow
  version keep running "wastes" money even when its result is discarded).

:class:`PricingModel` converts node-seconds on a given instance type into
both quantities and keeps a per-version breakdown so policy comparisons can
show *where* the money goes (paper Fig. 6 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.service.instances import InstanceType

__all__ = ["CostBreakdown", "PricingModel"]


@dataclass
class CostBreakdown:
    """Aggregated cost of a set of requests, broken down by service version.

    Attributes:
        invocation_cost: Total amount billed to consumers.
        iaas_cost: Total node cost paid by the provider.
        per_version_iaas: Node cost attributed to each service version.
        n_requests: Number of requests the costs cover.
    """

    invocation_cost: float = 0.0
    iaas_cost: float = 0.0
    per_version_iaas: Dict[str, float] = field(default_factory=dict)
    n_requests: int = 0

    def add(self, other: "CostBreakdown") -> "CostBreakdown":
        """Return the element-wise sum of two breakdowns."""
        merged = dict(self.per_version_iaas)
        for version, cost in other.per_version_iaas.items():
            merged[version] = merged.get(version, 0.0) + cost
        return CostBreakdown(
            invocation_cost=self.invocation_cost + other.invocation_cost,
            iaas_cost=self.iaas_cost + other.iaas_cost,
            per_version_iaas=merged,
            n_requests=self.n_requests + other.n_requests,
        )

    @property
    def mean_invocation_cost(self) -> float:
        """Average invocation cost per request (0.0 for an empty breakdown)."""
        if self.n_requests == 0:
            return 0.0
        return self.invocation_cost / self.n_requests


class PricingModel:
    """Converts node-seconds into invocation and IaaS costs.

    Args:
        version_instances: Mapping from service-version name to the instance
            type its node pool runs on.
        per_request_fee: Fixed platform fee billed to the consumer per
            invocation (independent of compute).
        markup: Multiplier applied to the provider's compute cost when
            billing the consumer (providers charge more than raw IaaS).

    The invocation cost of serving one request with versions
    ``{v: seconds}`` is::

        per_request_fee + markup * sum(seconds_v * price_per_second(instance_v))

    and the IaaS cost is the same sum without fee or markup.
    """

    def __init__(
        self,
        version_instances: Mapping[str, InstanceType],
        *,
        per_request_fee: float = 0.0,
        markup: float = 3.0,
    ) -> None:
        if per_request_fee < 0.0:
            raise ValueError("per_request_fee must be non-negative")
        if markup <= 0.0:
            raise ValueError("markup must be positive")
        if not version_instances:
            raise ValueError("version_instances must not be empty")
        self.version_instances: Dict[str, InstanceType] = dict(version_instances)
        self.per_request_fee = per_request_fee
        self.markup = markup

    def instance_for(self, version: str) -> InstanceType:
        """Instance type a version runs on.

        Raises:
            KeyError: If the version is not priced.
        """
        try:
            return self.version_instances[version]
        except KeyError:
            raise KeyError(
                f"no instance type registered for version {version!r}"
            ) from None

    def compute_cost(self, version: str, node_seconds: float) -> float:
        """Raw IaaS cost of ``node_seconds`` of one version's node time."""
        if node_seconds < 0.0:
            raise ValueError("node_seconds must be non-negative")
        return node_seconds * self.instance_for(version).price_per_second

    def request_cost(self, node_seconds_by_version: Mapping[str, float]) -> CostBreakdown:
        """Cost of one request given the node-seconds each version consumed.

        Args:
            node_seconds_by_version: Node-seconds actually spent per version
                while serving the request (including wasted concurrent work).
        """
        per_version = {
            version: self.compute_cost(version, seconds)
            for version, seconds in node_seconds_by_version.items()
        }
        iaas = sum(per_version.values())
        return CostBreakdown(
            invocation_cost=self.per_request_fee + self.markup * iaas,
            iaas_cost=iaas,
            per_version_iaas=per_version,
            n_requests=1,
        )

    def batch_cost(
        self, requests: Mapping[str, Mapping[str, float]]
    ) -> CostBreakdown:
        """Aggregate cost over many requests.

        Args:
            requests: Mapping from request id to its per-version
                node-seconds.
        """
        total = CostBreakdown()
        for node_seconds in requests.values():
            total = total.add(self.request_cost(node_seconds))
        return total
