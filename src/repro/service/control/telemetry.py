"""Streaming, windowed serving telemetry.

Everything the control plane decides — SLO states, admission pressure,
when the policy adaptor may re-fit — is decided from a *trailing window*
of per-request records, not from whole-run aggregates: a breach that
started five virtual seconds ago must dominate a healthy first hour.
:class:`TelemetryHub` is that window.

Producers publish :class:`~repro.service.simulation.report.RequestRecord`
values through a plain event-hook interface — the hub's :meth:`publish`
is just a ``callable(record, now)``, so the discrete-event engine (via
its ``record_hooks``) and the synchronous gateway backends both feed it
without importing anything from this package.  Internally the hub keeps a
ring buffer (a bounded deque ordered by publish time) plus a parallel
dense ``float64`` latency window (:class:`_FloatWindow`): answered
responses land in a growing array whose live region advances in lockstep
with ring eviction, so :meth:`snapshot` ranks windowed percentiles over a
zero-copy array slice instead of rebuilding a Python list per snapshot.
:meth:`snapshot` evicts entries older than the window and folds the
survivors into a :class:`WindowSnapshot` — windowed p50/p95/p99, goodput,
availability, node-seconds burn, and per-tier breakdowns.

Windowed percentiles carry a small-N guard: a p95 ranked over a handful
of samples is an artefact of quantile math, not a tail (with 4 samples
there is always exactly one "p95 outlier" by definition — the same
failure mode as rank-based tier classification over tiny component
counts).  :func:`guarded_percentile` therefore returns a
:class:`PercentileEstimate` whose ``low_confidence`` flag is set below
:data:`MIN_PERCENTILE_SAMPLES` samples; consumers (the SLO monitors) must
not treat a flagged value as breach evidence.
"""

from __future__ import annotations

import math
import re
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "MIN_PERCENTILE_SAMPLES",
    "MetricsExporter",
    "PercentileEstimate",
    "TelemetryHub",
    "TierWindow",
    "WindowSnapshot",
    "guarded_percentile",
    "snapshot_metrics",
]

#: Below this many samples a windowed percentile is flagged low-confidence.
MIN_PERCENTILE_SAMPLES = 20


@dataclass(frozen=True)
class PercentileEstimate:
    """A windowed percentile together with its evidential weight.

    Attributes:
        q: The percentile requested, in ``[0, 100]``.
        value: The estimate (``nan`` over an empty window).
        n: Number of samples it was ranked over.
        low_confidence: True when ``n`` is below the guard threshold —
            the value is reported (a dashboard still wants a number) but
            must not count as breach evidence on its own.
    """

    q: float
    value: float
    n: int
    low_confidence: bool

    @property
    def reliable(self) -> bool:
        """Whether the estimate rests on enough samples to act on."""
        return not self.low_confidence


def guarded_percentile(
    values: Sequence[float],
    q: float,
    *,
    min_samples: int = MIN_PERCENTILE_SAMPLES,
) -> PercentileEstimate:
    """Rank a percentile with the small-N guard applied.

    Args:
        values: The windowed sample (may be empty).
        q: Percentile in ``[0, 100]``.
        min_samples: Sample count below which the estimate is flagged.

    Raises:
        ValueError: If ``q`` is outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    n = int(arr.size)
    if n == 0:
        return PercentileEstimate(q=q, value=float("nan"), n=0, low_confidence=True)
    return PercentileEstimate(
        q=q,
        value=float(np.percentile(arr, q)),
        n=n,
        low_confidence=n < min_samples,
    )


@dataclass(frozen=True)
class TierWindow:
    """Per-tier slice of one window snapshot.

    Attributes:
        tier: The tolerance annotation the slice covers.
        n: Requests of this tier that resolved inside the window.
        n_failed: Terminal failures among them.
        n_shed: Requests shed by admission control.
        n_degraded: Requests force-degraded to the fast tier.
        p95_latency: Guarded p95 over the tier's successful responses.
        mean_cost: Mean billed cost per answered request (``nan`` when
            none were answered).
    """

    tier: float
    n: int
    n_failed: int
    n_shed: int
    n_degraded: int
    p95_latency: PercentileEstimate
    mean_cost: float


@dataclass(frozen=True)
class WindowSnapshot:
    """Aggregate view of the trailing telemetry window at one instant.

    Attributes:
        now: Virtual time the snapshot was taken.
        window_s: Nominal window length.
        span_s: Effective span the rates are normalised over (shorter
            than ``window_s`` while the run is younger than one window).
        n: Records in the window (successes + failures + sheds).
        n_failed: Terminal failures in the window.
        n_shed: Requests shed by admission control.
        n_degraded: Requests served force-degraded.
        p50_latency / p95_latency / p99_latency: Guarded percentiles over
            successful responses.
        goodput_rps: Successful responses per second over ``span_s``.
        availability: Fraction of windowed requests that got an answer
            (sheds count against it); ``nan`` over an empty window.
        node_seconds: Billed node-seconds per version inside the window.
        node_seconds_per_s: Total node-seconds burn rate over ``span_s``.
        mean_cost: Mean billed cost per answered request.
        tiers: Per-tier breakdowns, keyed by tolerance.
        payloads: Payloads of windowed records in publish order (the
            adaptor re-fits the rule generator on these rows).
    """

    now: float
    window_s: float
    span_s: float
    n: int
    n_failed: int
    n_shed: int
    n_degraded: int
    p50_latency: PercentileEstimate
    p95_latency: PercentileEstimate
    p99_latency: PercentileEstimate
    goodput_rps: float
    availability: float
    node_seconds: Dict[str, float]
    node_seconds_per_s: float
    mean_cost: float
    tiers: Dict[float, TierWindow]
    payloads: Tuple[object, ...]

    @property
    def n_answered(self) -> int:
        """Windowed requests that resolved with a response."""
        return self.n - self.n_failed - self.n_shed

    def for_tier(self, tier: Optional[float]) -> "WindowSnapshot | TierWindow":
        """The whole-stream snapshot, or one tier's slice.

        Args:
            tier: ``None`` for the whole stream; a tolerance otherwise.
                An unseen tier returns an empty :class:`TierWindow`.
        """
        if tier is None:
            return self
        window = self.tiers.get(float(tier))
        if window is None:
            window = TierWindow(
                tier=float(tier),
                n=0,
                n_failed=0,
                n_shed=0,
                n_degraded=0,
                p95_latency=guarded_percentile((), 95.0),
                mean_cost=float("nan"),
            )
        return window


class _FloatWindow:
    """A dense sliding window of ``float64`` samples.

    Append-only at the tail, evict-only at the head — exactly the access
    pattern of a trailing telemetry window.  Samples live in one numpy
    buffer; :meth:`view` exposes the live region as a zero-copy slice, so
    percentile ranking never materializes a Python list.  The buffer
    grows geometrically; when it fills and more than half is dead space
    (evicted head), the live region is compacted in place instead.
    """

    __slots__ = ("_buf", "_start", "_end")

    def __init__(self, capacity: int = 1024) -> None:
        self._buf = np.empty(capacity, dtype=np.float64)
        self._start = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._start

    def append(self, value: float) -> None:
        """Push one sample at the tail."""
        buf = self._buf
        if self._end == buf.shape[0]:
            live = self._end - self._start
            if self._start > live:
                # More than half the buffer is evicted head: reclaim it.
                buf[:live] = buf[self._start : self._end]
            else:
                grown = np.empty(max(2 * buf.shape[0], 16), dtype=np.float64)
                grown[:live] = buf[self._start : self._end]
                self._buf = buf = grown
            self._start, self._end = 0, live
        buf[self._end] = value
        self._end += 1

    def pop_oldest(self) -> None:
        """Evict the head sample (O(1): the live region just advances)."""
        self._start += 1

    def view(self) -> np.ndarray:
        """The live window as a zero-copy ``float64`` slice."""
        return self._buf[self._start : self._end]


class TelemetryHub:
    """Ring-buffer sliding window over the per-request record stream.

    Args:
        window_s: Trailing window length on the publisher's clock.
        min_percentile_samples: Small-N guard threshold for windowed
            percentiles.
        max_records: Hard bound on buffered records (the ring); the
            oldest entries are dropped first.  Sized so any sane window
            fits; this is a memory valve, not a semantic knob.
    """

    def __init__(
        self,
        window_s: float = 10.0,
        *,
        min_percentile_samples: int = MIN_PERCENTILE_SAMPLES,
        max_records: int = 100_000,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if min_percentile_samples < 1:
            raise ValueError("min_percentile_samples must be at least 1")
        self.window_s = float(window_s)
        self.min_percentile_samples = int(min_percentile_samples)
        #: Ring entries are ``(publish_time, record, answered)``; the
        #: third field marks records that contributed a sample to the
        #: parallel latency window, so eviction keeps the two in step.
        self._ring: Deque[Tuple[float, object, bool]] = deque(
            maxlen=max_records
        )
        self._latencies = _FloatWindow()
        self._hooks: List[Callable[[object, float], None]] = []
        self._published = 0
        self._last_time = 0.0

    # ------------------------------------------------------------------
    # event-hook surface
    # ------------------------------------------------------------------
    def subscribe(self, hook: Callable[[object, float], None]) -> None:
        """Register a callback invoked per published ``(record, now)``."""
        self._hooks.append(hook)

    def publish(self, record, now: Optional[float] = None) -> None:
        """Fold one request record into the window.

        This is the hub's producer hook: the engine's ``record_hooks``
        and the gateway's synchronous completion path both call exactly
        this signature.  Publish times must be non-decreasing (both
        producers emit in clock order).

        Args:
            record: A :class:`~repro.service.simulation.report.RequestRecord`
                (or anything with its fields).
            now: Publish time; defaults to the record's ``finished_s``.
        """
        t = float(record.finished_s if now is None else now)
        if t < self._last_time - 1e-12:
            raise ValueError(
                f"telemetry published out of order: {t:.6f} after "
                f"{self._last_time:.6f}"
            )
        self._last_time = max(self._last_time, t)
        answered = not getattr(record, "shed", False) and not record.failed
        ring = self._ring
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            # The memory valve drops the oldest entry; do it explicitly
            # so the latency window advances with it.
            if ring.popleft()[2]:
                self._latencies.pop_oldest()
        ring.append((t, record, answered))
        if answered:
            self._latencies.append(record.response_time_s)
        self._published += 1
        for hook in self._hooks:
            hook(record, t)

    @property
    def total_published(self) -> int:
        """Records published over the hub's lifetime (not just the window)."""
        return self._published

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # windowed aggregation
    # ------------------------------------------------------------------
    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        ring = self._ring
        latencies = self._latencies
        while ring and ring[0][0] < horizon:
            if ring.popleft()[2]:
                latencies.pop_oldest()

    def snapshot(self, now: float) -> WindowSnapshot:
        """Aggregate the trailing window as of ``now``.

        Eviction is destructive (records older than one window are
        gone), so snapshots must be taken with non-decreasing ``now`` —
        which both producers guarantee.
        """
        self._evict(now)
        records = [entry[1] for entry in self._ring]
        # Whole-stream percentiles rank over the parallel latency window:
        # a zero-copy float64 slice, kept in lockstep with the ring, in
        # the same publish order the old per-snapshot list had.
        latencies = self._latencies.view()
        span = self.window_s if now >= self.window_s else max(now, 1e-9)

        node_seconds: Dict[str, float] = {}
        n_failed = n_shed = n_degraded = 0
        cost_sum = 0.0
        by_tier: Dict[float, List[object]] = {}
        for r in records:
            by_tier.setdefault(float(r.tier), []).append(r)
            if getattr(r, "shed", False):
                n_shed += 1
                continue
            if r.failed:
                n_failed += 1
                continue
            if getattr(r, "degraded", False):
                n_degraded += 1
            cost_sum += r.invocation_cost
            for version, seconds in r.node_seconds.items():
                node_seconds[version] = node_seconds.get(version, 0.0) + seconds

        n = len(records)
        n_answered = n - n_failed - n_shed
        min_samples = self.min_percentile_samples
        tiers: Dict[float, TierWindow] = {}
        for tier, tier_records in by_tier.items():
            t_shed = sum(1 for r in tier_records if getattr(r, "shed", False))
            t_failed = sum(
                1
                for r in tier_records
                if r.failed and not getattr(r, "shed", False)
            )
            t_degraded = sum(
                1
                for r in tier_records
                if getattr(r, "degraded", False)
                and not r.failed
                and not getattr(r, "shed", False)
            )
            answered = [
                r
                for r in tier_records
                if not r.failed and not getattr(r, "shed", False)
            ]
            tiers[tier] = TierWindow(
                tier=tier,
                n=len(tier_records),
                n_failed=t_failed,
                n_shed=t_shed,
                n_degraded=t_degraded,
                p95_latency=guarded_percentile(
                    [r.response_time_s for r in answered],
                    95.0,
                    min_samples=min_samples,
                ),
                mean_cost=(
                    sum(r.invocation_cost for r in answered) / len(answered)
                    if answered
                    else float("nan")
                ),
            )

        return WindowSnapshot(
            now=now,
            window_s=self.window_s,
            span_s=span,
            n=n,
            n_failed=n_failed,
            n_shed=n_shed,
            n_degraded=n_degraded,
            p50_latency=guarded_percentile(latencies, 50.0, min_samples=min_samples),
            p95_latency=guarded_percentile(latencies, 95.0, min_samples=min_samples),
            p99_latency=guarded_percentile(latencies, 99.0, min_samples=min_samples),
            goodput_rps=n_answered / span,
            availability=(n_answered / n) if n else float("nan"),
            node_seconds=node_seconds,
            node_seconds_per_s=sum(node_seconds.values()) / span,
            mean_cost=(cost_sum / n_answered) if n_answered else float("nan"),
            tiers=tiers,
            payloads=tuple(
                r.payload
                for r in records
                if not r.failed and not getattr(r, "shed", False)
            ),
        )


# ----------------------------------------------------------------------
# scrape-able metrics export
# ----------------------------------------------------------------------
def _tier_label(tier: float) -> str:
    """A stable, dot-free label for a tolerance tier (0.05 -> ``0_05``)."""
    return format(tier, "g").replace("-", "m").replace(".", "_")


def snapshot_metrics(snapshot: WindowSnapshot, *, prefix: str = "gateway") -> Dict[str, float]:
    """Flatten a :class:`WindowSnapshot` into history-schema metric rows.

    The labels use the same dotted ``section.metric[.key]`` convention as
    the flattened ``BENCH_PERF.json`` sections in
    ``results/bench_history.jsonl``, so a live serving session exports
    rows the longitudinal tooling (``benchmarks/history.py``,
    ``compare_perf.py --against-history``) ingests unchanged.

    ``nan`` aggregates (an empty window's availability, an unanswered
    tier's mean cost) are omitted rather than exported: a scrape target
    reports what it measured, not placeholders.  Percentiles carry their
    sample counts (``.n``) so a consumer can apply the same small-N
    judgement the SLO monitors do.

    Args:
        snapshot: The window aggregate to flatten.
        prefix: Leading label segment (the history "section").
    """
    metrics: Dict[str, float] = {
        f"{prefix}.window_s": snapshot.window_s,
        f"{prefix}.span_s": snapshot.span_s,
        f"{prefix}.n": float(snapshot.n),
        f"{prefix}.n_failed": float(snapshot.n_failed),
        f"{prefix}.n_shed": float(snapshot.n_shed),
        f"{prefix}.n_degraded": float(snapshot.n_degraded),
        f"{prefix}.n_answered": float(snapshot.n_answered),
        f"{prefix}.goodput_rps": snapshot.goodput_rps,
        f"{prefix}.node_seconds_per_s": snapshot.node_seconds_per_s,
    }
    for name, estimate in (
        ("p50_latency_s", snapshot.p50_latency),
        ("p95_latency_s", snapshot.p95_latency),
        ("p99_latency_s", snapshot.p99_latency),
    ):
        if not np.isnan(estimate.value):
            metrics[f"{prefix}.{name}"] = float(estimate.value)
        metrics[f"{prefix}.{name}.n"] = float(estimate.n)
    if not np.isnan(snapshot.availability):
        metrics[f"{prefix}.availability"] = float(snapshot.availability)
    if not np.isnan(snapshot.mean_cost):
        metrics[f"{prefix}.mean_cost"] = float(snapshot.mean_cost)
    for version, seconds in sorted(snapshot.node_seconds.items()):
        metrics[f"{prefix}.node_seconds.{version}"] = float(seconds)
    for tier, window in sorted(snapshot.tiers.items()):
        base = f"{prefix}.tier.{_tier_label(tier)}"
        metrics[f"{base}.n"] = float(window.n)
        metrics[f"{base}.n_failed"] = float(window.n_failed)
        metrics[f"{base}.n_shed"] = float(window.n_shed)
        metrics[f"{base}.n_degraded"] = float(window.n_degraded)
        if not np.isnan(window.p95_latency.value):
            metrics[f"{base}.p95_latency_s"] = float(window.p95_latency.value)
        metrics[f"{base}.p95_latency_s.n"] = float(window.p95_latency.n)
        if not np.isnan(window.mean_cost):
            metrics[f"{base}.mean_cost"] = float(window.mean_cost)
    return metrics


#: Characters outside the Prometheus metric-name charset
#: ``[a-zA-Z0-9_:]`` (each becomes an underscore).
_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(label: str) -> str:
    """Sanitise a dotted history label to a valid exposition name."""
    name = _METRIC_NAME_BAD.sub("_", label)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _sample_value(value: float) -> str:
    """Exposition-format sample value (``+Inf``/``-Inf``, not ``inf``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, "g")


class MetricsExporter:
    """Scrape-able view over a :class:`TelemetryHub`.

    The control plane's windowed telemetry already holds everything a
    metrics endpoint needs; this class is the thin serialization layer
    on top: :meth:`scrape` returns the flat history-schema dict,
    :meth:`render` a Prometheus-style text exposition, and
    :meth:`history_record` the body of a longitudinal history entry —
    the same shape ``benchmarks/history.py`` appends for benchmark
    runs, so live gateway sessions and benches feed one trajectory.

    The exporter is a passive consumer: it never subscribes hooks and
    never mutates the hub beyond the (destructive, monotone-``now``)
    window eviction every ``snapshot`` performs anyway.

    Args:
        hub: The telemetry hub to export from.
        prefix: History "section" the exported labels live under.
    """

    def __init__(self, hub: TelemetryHub, *, prefix: str = "gateway") -> None:
        self.hub = hub
        self.prefix = prefix
        self._scrapes = 0
        self._sources: List[Callable[[], Dict[str, float]]] = []

    @property
    def total_scrapes(self) -> int:
        """Scrapes served over the exporter's lifetime."""
        return self._scrapes

    def add_source(self, source: Callable[[], Dict[str, float]]) -> None:
        """Register an extra metrics source merged into every scrape.

        A source is any zero-argument callable returning a flat
        ``{label: value}`` dict — e.g.
        :meth:`repro.obs.trace.TraceCollector.metrics` (span counters)
        or :meth:`repro.service.control.plane.ControlPlane.metrics`
        (gray-detection and admission counters).  Later sources win on
        label collisions.
        """
        self._sources.append(source)

    def scrape(self, now: float) -> Dict[str, float]:
        """Snapshot the hub and return flat history-schema metrics.

        Args:
            now: Scrape time on the producer's clock (must be
                non-decreasing across scrapes, like ``snapshot``).
        """
        self._scrapes += 1
        metrics = snapshot_metrics(self.hub.snapshot(now), prefix=self.prefix)
        for source in self._sources:
            for label, value in source().items():
                metrics[label] = float(value)
        return metrics

    def render(self, now: float) -> str:
        """The scrape as a Prometheus-style text exposition.

        Labels are sanitised to the metric-name charset
        (``[a-zA-Z_:][a-zA-Z0-9_:]*`` — every other character becomes
        an underscore, a leading digit gains one); one
        ``# TYPE ... gauge`` header per metric name keeps the output
        self-describing.  Exposition edge cases follow the format spec:
        ``NaN`` samples are omitted (a gauge with no measurement is not
        a sample), infinities render as ``+Inf`` / ``-Inf`` (Python's
        ``inf`` spelling is not valid exposition), and two labels that
        sanitise to the same name keep one header.
        """
        lines = []
        seen_headers = set()
        for label, value in sorted(self.scrape(now).items()):
            if math.isnan(value):
                continue
            name = _metric_name(label)
            if name not in seen_headers:
                seen_headers.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_sample_value(value)}")
        return "\n".join(lines) + "\n"

    def history_record(self, now: float, *, smoke: bool = False) -> Dict[str, object]:
        """The scrape shaped as a longitudinal-history entry body.

        Returns a dict with ``source``/``smoke``/``metrics`` keys;
        ``benchmarks/history.py``'s ``entry_from_metrics`` stamps the
        commit/machine/engine metadata and appends it, so a serving
        session lands in ``results/bench_history.jsonl`` with exactly
        the schema benchmark runs use.

        Args:
            now: Scrape time on the producer's clock.
            smoke: Tag for reduced-fidelity sessions (mirrors the
                benches' smoke tag so trend checks stay like-for-like).
        """
        return {
            "source": self.prefix,
            "smoke": bool(smoke),
            "metrics": self.scrape(now),
        }
