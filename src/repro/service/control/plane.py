"""The control plane: telemetry + SLO monitors + admission + adaptation.

:class:`ControlSpec` is the declarative half — a frozen value a
:class:`~repro.service.simulation.scenarios.ScenarioSpec` can embed, so a
closed-loop load test is as reproducible and comparable as an open-loop
one.  :class:`ControlPlane` is the live half: the engine (or a
synchronous gateway) feeds it per-request records and consults it

* once per arrival (:meth:`ControlPlane.admit` — shed / degrade /
  admit, by the configured admission policy, only while the SLO
  aggregate is in BREACH), and
* once per control tick (:meth:`ControlPlane.on_tick` — snapshot the
  telemetry window, fold every SLO monitor, and ask the policy adaptor
  whether the executor should hot-swap onto a re-fit configuration).

The plane is deterministic by construction: its only randomness is the
admission controller's dedicated seeded stream (consumed only under
BREACH), every monitor is a pure state machine, and adaptor re-fit
seeds derive from the plane seed — so a closed-loop scenario digests
identically run after run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.obs.log import get_rate_limited
from repro.service.control.admission import (
    ADMIT,
    AdmissionController,
    AdmissionDecision,
    AdmissionSpec,
)
from repro.service.control.adaptor import AdaptorConfig, PolicyAdaptor
from repro.service.control.slo import (
    GrayDetectionSpec,
    GrayFailureDetector,
    SLOMonitor,
    SLOSpec,
    SLOState,
    worst_state,
)
from repro.service.control.telemetry import (
    MIN_PERCENTILE_SAMPLES,
    TelemetryHub,
    WindowSnapshot,
)
from repro.service.request import ServiceRequest

__all__ = [
    "ControlLogEntry",
    "ControlPlane",
    "ControlSpec",
    "default_control_spec",
]

#: State-transition log: silent by default (see :mod:`repro.obs.log`).
_log = get_rate_limited("service.control.plane")


@dataclass(frozen=True)
class ControlLogEntry:
    """One control-plane action, recorded in the load-test report.

    Entries participate in :meth:`LoadTestReport.digest`, pinning
    closed-loop behaviour exactly as fault entries pin fault behaviour.

    Attributes:
        time_s: Virtual time of the action.
        kind: ``"slo"`` (state transition), ``"gray-detected"`` /
            ``"gray-cleared"`` (per-node divergence), ``"swap"``,
            ``"swap-declined"``, ``"anchor-restore"``, ``"rollback"``,
            one of the ``"refit-*"`` non-swap outcomes (``nochange``
            / ``noimprove`` / ``rejected`` / ``skipped``), or the
            region-scoped kinds (``"region-slo"`` / ``"region-decision"``)
            emitted by :mod:`repro.service.regions`.
        detail: Human-readable context (deterministic for a fixed run).
        region: Region the action names, for multi-region runs whose
            control decisions must say *which region* to shed or adapt;
            ``None`` for single-cluster planes.  The digest renders the
            region inside ``detail`` at the emit site, so this field
            stays out of :meth:`LoadTestReport.digest` and pre-region
            control logs digest unchanged.
    """

    time_s: float
    kind: str
    detail: str
    region: Optional[str] = None


@dataclass(frozen=True)
class ControlSpec:
    """Declarative closed-loop control for one scenario.

    Attributes:
        window_s: Trailing telemetry window length.
        tick_interval_s: Cadence of SLO evaluation / adaptation on the
            virtual clock.
        slos: The service-level objectives monitored continuously.
        admission: Admission (load-shedding) policy; ``None`` admits
            everything.
        adaptor: Online tier-policy adaptation; ``None`` keeps the
            deployed policy static.
        min_percentile_samples: Small-N guard threshold for windowed
            percentiles.
        gray_detection: Per-node gray-failure detection (service-time
            divergence against pool peers); ``None`` disables it.
    """

    window_s: float = 10.0
    tick_interval_s: float = 0.5
    slos: Tuple[SLOSpec, ...] = ()
    admission: Optional[AdmissionSpec] = None
    adaptor: Optional[AdaptorConfig] = None
    min_percentile_samples: int = MIN_PERCENTILE_SAMPLES
    gray_detection: Optional[GrayDetectionSpec] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if self.tick_interval_s <= 0.0:
            raise ValueError("tick_interval_s must be positive")
        if (self.admission is not None or self.adaptor is not None) and not self.slos:
            raise ValueError(
                "admission control and adaptation react to SLO state; "
                "declare at least one SLOSpec"
            )


class ControlPlane:
    """Live control loop for one serving session.

    Build one per run (its monitors, window and RNG are stateful), most
    conveniently via :meth:`from_spec`.  The engine integration is
    intentionally narrow — three methods and one attribute — so the
    engine never imports this package:

    * :attr:`tick_interval_s`
    * :meth:`admit` per arrival,
    * :meth:`observe` per finalized record (an event hook:
      the same ``callable(record, now)`` shape as
      :meth:`~repro.service.control.telemetry.TelemetryHub.publish`),
    * :meth:`observe_node` per node completion (optional — the engine
      duck-types for it; a no-op unless gray detection is configured),
    * :meth:`on_tick` per control tick, returning an optional
      configuration to hot-swap onto.
    """

    def __init__(
        self,
        spec: ControlSpec,
        *,
        hub: Optional[TelemetryHub] = None,
        controller: Optional[AdmissionController] = None,
        adaptor: Optional[PolicyAdaptor] = None,
    ) -> None:
        self.spec = spec
        self.hub = hub if hub is not None else TelemetryHub(
            spec.window_s,
            min_percentile_samples=spec.min_percentile_samples,
        )
        self.monitors = [SLOMonitor(s) for s in spec.slos]
        self.gray_detector = (
            GrayFailureDetector(spec.gray_detection)
            if spec.gray_detection is not None
            else None
        )
        self.controller = controller
        self.adaptor = adaptor
        self.state = SLOState.OK
        self.log: List[ControlLogEntry] = []
        self.last_snapshot: Optional[WindowSnapshot] = None
        #: Gray-failure detections/clears over the plane's lifetime
        #: (exported as ``gray_detected_total`` / ``gray_cleared_total``).
        self.gray_detected_total = 0
        self.gray_cleared_total = 0

    @classmethod
    def from_spec(
        cls,
        spec: ControlSpec,
        *,
        measurements=None,
        configuration: Optional[EnsembleConfiguration] = None,
        router=None,
        seed: int = 0,
        deployed_versions=None,
    ) -> "ControlPlane":
        """Inflate a declarative spec into a live plane.

        Args:
            spec: The declarative control configuration.
            measurements: Measurement table the adaptor re-fits on
                (required when ``spec.adaptor`` is set).
            configuration: The deployed configuration — the adaptor's
                anchor (required when ``spec.adaptor`` is set).
            router: The deployed router, for router-based scenarios.
                Adaptation over routers is not supported yet; admission
                and telemetry are.
            seed: Seed for the admission RNG and re-fit seeds.
            deployed_versions: Versions the deployment actually hosts.
                The adaptor's candidate space (and its degradation
                baseline) is restricted to them — a measurement table
                usually covers more versions than any one deployment,
                and a re-fit must never pick an ensemble the cluster
                cannot serve.
        """
        controller = None
        if spec.admission is not None:
            controller = AdmissionController(
                spec.admission,
                rng=np.random.default_rng([seed, 0xAD41]),
            )
        adaptor = None
        if spec.adaptor is not None:
            if router is not None or configuration is None:
                raise ValueError(
                    "the policy adaptor anchors on a fixed configuration; "
                    "router-based deployments support admission control "
                    "and telemetry, not adaptation"
                )
            if measurements is None:
                raise ValueError(
                    "the policy adaptor re-fits on measurements; pass the "
                    "scenario's measurement table"
                )
            if deployed_versions is not None:
                deployed = set(deployed_versions)
                missing = set(configuration.versions) - deployed
                if missing:
                    raise ValueError(
                        f"anchor configuration {configuration.config_id!r} "
                        f"uses undeployed version(s) {sorted(missing)}"
                    )
                kept = [v for v in measurements.versions if v in deployed]
                if set(kept) != set(measurements.versions):
                    measurements = measurements.restrict_versions(kept)
            adaptor = PolicyAdaptor(
                spec.adaptor,
                measurements=measurements,
                anchor=configuration,
                seed=seed,
            )
        return cls(spec, controller=controller, adaptor=adaptor)

    # ------------------------------------------------------------------
    # engine-facing protocol
    # ------------------------------------------------------------------
    @property
    def tick_interval_s(self) -> float:
        """Control-tick cadence on the caller's clock."""
        return self.spec.tick_interval_s

    def admit(
        self,
        request: ServiceRequest,
        now: float,
        *,
        planned: EnsembleConfiguration,
    ) -> AdmissionDecision:
        """Decide one arriving request (admit / shed / degrade)."""
        if self.controller is None:
            return ADMIT
        return self.controller.decide(request, state=self.state, planned=planned)

    def observe(self, record, now: Optional[float] = None) -> None:
        """Fold one finalized request record into the telemetry window."""
        self.hub.publish(record, now)

    def observe_node(
        self,
        node_id: str,
        version: str,
        service_time_s: float,
        now: Optional[float] = None,
    ) -> None:
        """Fold one node completion into gray-failure detection.

        A no-op when :attr:`ControlSpec.gray_detection` is unset, so
        feeding node telemetry is always safe.
        """
        if self.gray_detector is not None:
            self.gray_detector.observe(node_id, version, service_time_s)

    def on_tick(self, now: float) -> Optional[EnsembleConfiguration]:
        """Evaluate SLOs and adaptation; maybe return a hot-swap target."""
        snapshot = self.hub.snapshot(now)
        self.last_snapshot = snapshot
        for monitor in self.monitors:
            status = monitor.evaluate(snapshot)
            if status.transitioned:
                pressures = ",".join(
                    f"{metric}={ratio:.3f}"
                    for metric, ratio in sorted(status.pressures.items())
                )
                self.log.append(
                    ControlLogEntry(
                        now,
                        "slo",
                        f"{status.name}: -> {status.state.value}"
                        + (f" ({pressures})" if pressures else "")
                        + (" [small-N guard]" if status.guarded else ""),
                    )
                )
                _log.info(
                    "slo %s transitioned to %s at t=%.3f",
                    status.name,
                    status.state.value,
                    now,
                )
        states = [m.state for m in self.monitors]
        if self.gray_detector is not None:
            for kind, detail in self.gray_detector.evaluate():
                self.log.append(ControlLogEntry(now, kind, detail))
                if kind == "gray-detected":
                    self.gray_detected_total += 1
                elif kind == "gray-cleared":
                    self.gray_cleared_total += 1
                _log.info("%s at t=%.3f: %s", kind, now, detail)
            states.append(self.gray_detector.state)
        self.state = worst_state(states)
        if self.adaptor is None:
            return None
        swap = self.adaptor.on_tick(snapshot, self.state, now)
        for event in self.adaptor.drain_events():
            self.log.append(ControlLogEntry(now, event.kind, event.detail))
            _log.info(
                "adaptor %s at t=%.3f: %s", event.kind, now, event.detail
            )
        return swap

    # Synchronous gateways have no scheduled ticks; they pump the loop
    # opportunistically after each completion.
    pump = on_tick

    def decline_swap(self, configuration, now: float) -> None:
        """The executor refused a swap returned by :meth:`on_tick`.

        Restores the adaptor's active-policy bookkeeping (and blacklists
        the configuration) so later rollback judgements and cost
        comparisons track the policy actually serving.
        """
        if self.adaptor is None:
            return
        self.adaptor.decline(configuration)
        for event in self.adaptor.drain_events():
            self.log.append(ControlLogEntry(now, event.kind, event.detail))

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def n_shed(self) -> int:
        """Requests shed by admission control so far."""
        return self.controller.n_shed if self.controller is not None else 0

    @property
    def n_degraded(self) -> int:
        """Requests force-degraded by admission control so far."""
        return self.controller.n_degraded if self.controller is not None else 0

    def metrics(self) -> dict:
        """Control-plane counters in ``MetricsExporter`` source shape.

        Register with
        :meth:`~repro.service.control.telemetry.MetricsExporter.add_source`
        to fold gray-detection and admission counters into scrapes.
        """
        return {
            "control.gray_detected_total": float(self.gray_detected_total),
            "control.gray_cleared_total": float(self.gray_cleared_total),
            "control.shed_total": float(self.n_shed),
            "control.degraded_total": float(self.n_degraded),
        }


def default_control_spec(
    *,
    p95_target_s: float = 1.0,
    min_availability: float = 0.7,
    admission: Optional[str] = "probabilistic",
    adaptive: bool = True,
    window_s: float = 8.0,
    tick_interval_s: float = 0.5,
) -> ControlSpec:
    """A closed-loop control spec tuned for the canonical toy scenarios.

    The defaults match :func:`~repro.service.simulation.scenarios.scenario_measurements`
    geometry: the seq(fast, slow, 0.6) tier mix answers in ~0.05–0.45 s
    when healthy, so a 1 s p95 ceiling separates "queueing" from
    "degraded".  The adaptor widens in *absolute* error-degradation
    units (the toy baseline error is near zero, which makes relative
    degradation numerically wild).

    Args:
        p95_target_s: Whole-stream p95 ceiling.
        min_availability: Whole-stream availability floor.
        admission: Admission policy name, or ``None`` for monitor-only.
        adaptive: Whether to enable the online policy adaptor.
        window_s: Telemetry window length.
        tick_interval_s: Control-tick cadence.
    """
    slos = (
        SLOSpec(
            name="latency",
            max_p95_latency_s=p95_target_s,
            breach_after=2,
            clear_after=4,
        ),
        SLOSpec(
            name="availability",
            min_availability=min_availability,
            breach_after=2,
            clear_after=4,
        ),
    )
    return ControlSpec(
        window_s=window_s,
        tick_interval_s=tick_interval_s,
        slos=slos,
        admission=AdmissionSpec(policy=admission) if admission else None,
        adaptor=AdaptorConfig(
            refit_interval_s=2.0,
            min_window_samples=20,
            degradation_mode="absolute",
            tolerance_step=0.06,
            max_tolerance=0.30,
            thresholds=(0.3, 0.4, 0.5, 0.6, 0.7),
        )
        if adaptive
        else None,
    )
