"""Declarative SLOs evaluated continuously into OK / WARN / BREACH.

An :class:`SLOSpec` states what one tier (or the whole request stream)
was promised — a p95 latency ceiling, an availability floor, a billed
cost ceiling — and :class:`SLOMonitor` folds each telemetry window
snapshot into a debounced :class:`SLOState`:

* raw evaluation: each declared target becomes a *pressure ratio*
  (observed / target for ceilings, target / observed for floors), so
  ``> 1`` means the target is violated and ``warn_ratio <= r <= 1``
  means it is close;
* **small-N guard**: a violated percentile target whose windowed
  estimate is flagged low-confidence (fewer than the guard threshold of
  samples) is capped at WARN — a p95 ranked over a handful of requests
  is quantile noise, not breach evidence;
* **hysteresis**: BREACH is entered only after ``breach_after``
  consecutive violating evaluations and left only after ``clear_after``
  consecutive clean ones, so a single noisy window neither trips nor
  clears load shedding.

Monitors are pure state machines over snapshots: no randomness, no
clock of their own — evaluating the same snapshot sequence always walks
the same states, which keeps closed-loop simulations bit-deterministic.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.service.control.telemetry import WindowSnapshot

__all__ = [
    "GrayDetectionSpec",
    "GrayFailureDetector",
    "SLOMonitor",
    "SLOSpec",
    "SLOState",
    "SLOStatus",
]


class SLOState(enum.Enum):
    """Debounced health of one SLO."""

    OK = "ok"
    WARN = "warn"
    BREACH = "breach"


#: Severity order for aggregating many monitors into one plane state.
_SEVERITY = {SLOState.OK: 0, SLOState.WARN: 1, SLOState.BREACH: 2}


def worst_state(states) -> SLOState:
    """The most severe of a collection of states (OK when empty)."""
    worst = SLOState.OK
    for state in states:
        if _SEVERITY[state] > _SEVERITY[worst]:
            worst = state
    return worst


@dataclass(frozen=True)
class SLOSpec:
    """What one service-level objective promises.

    At least one target must be declared.  ``tier`` scopes the SLO to
    one tolerance tier's slice of the telemetry window; ``None`` covers
    the whole stream.

    Attributes:
        name: Identifier used in statuses and the control log.
        tier: Tolerance tier the SLO covers, or ``None`` for all.
        max_p95_latency_s: Ceiling on windowed p95 response time.
        min_availability: Floor on the windowed answered fraction of
            *admitted* requests.  Sheds are deliberately excluded: the
            monitor's breach state is what triggers shedding, and a
            controller whose remedy counts against its own trigger
            latches into shedding healthy traffic forever.
        max_cost_per_request: Ceiling on windowed mean billed cost.
        warn_ratio: Pressure ratio at which WARN begins (``0.9`` warns
            once a metric is within 10 % of its target).
        breach_after: Consecutive violating evaluations needed to enter
            BREACH.
        clear_after: Consecutive clean evaluations needed to leave it.
    """

    name: str
    tier: Optional[float] = None
    max_p95_latency_s: Optional[float] = None
    min_availability: Optional[float] = None
    max_cost_per_request: Optional[float] = None
    warn_ratio: float = 0.9
    breach_after: int = 2
    clear_after: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SLO needs a name")
        targets = (
            self.max_p95_latency_s,
            self.min_availability,
            self.max_cost_per_request,
        )
        if all(t is None for t in targets):
            raise ValueError(f"SLO {self.name!r} declares no target")
        for label, value in (
            ("max_p95_latency_s", self.max_p95_latency_s),
            ("max_cost_per_request", self.max_cost_per_request),
        ):
            if value is not None and value <= 0.0:
                raise ValueError(f"{label} must be positive")
        if self.min_availability is not None and not (
            0.0 < self.min_availability <= 1.0
        ):
            raise ValueError("min_availability must be in (0, 1]")
        if not 0.0 < self.warn_ratio <= 1.0:
            raise ValueError("warn_ratio must be in (0, 1]")
        if self.breach_after < 1 or self.clear_after < 1:
            raise ValueError("breach_after / clear_after must be at least 1")


@dataclass(frozen=True)
class SLOStatus:
    """One monitor's verdict on one snapshot.

    Attributes:
        name: The SLO's name.
        state: Debounced state after this evaluation.
        raw_state: Undebounced verdict of this snapshot alone.
        pressures: Pressure ratio per violated-or-watched metric
            (``> 1`` violates; metrics without data are absent).
        guarded: True when a violating percentile was capped at WARN by
            the small-N guard.
        transitioned: True when ``state`` changed on this evaluation.
    """

    name: str
    state: SLOState
    raw_state: SLOState
    pressures: Dict[str, float]
    guarded: bool
    transitioned: bool


class SLOMonitor:
    """Debounced evaluation of one :class:`SLOSpec` over snapshots."""

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self.state = SLOState.OK
        self._violating_streak = 0
        self._clean_streak = 0

    # ------------------------------------------------------------------
    def _raw(self, snapshot: WindowSnapshot):
        """Undebounced verdict: (raw_state, pressures, guarded)."""
        spec = self.spec
        view = snapshot.for_tier(spec.tier)
        pressures: Dict[str, float] = {}
        guarded = False

        p95 = view.p95_latency
        if spec.max_p95_latency_s is not None and not math.isnan(p95.value):
            pressures["p95_latency_s"] = p95.value / spec.max_p95_latency_s

        if spec.min_availability is not None:
            # Availability is judged over *admitted* requests only.  The
            # report's whole-run availability rightly counts sheds
            # against the system, but the monitor is what TRIGGERS
            # shedding — if its own remedy counted as a violation, one
            # breach would latch the controller into shedding healthy
            # traffic indefinitely.
            if spec.tier is None:
                admitted = snapshot.n - snapshot.n_shed
                answered = snapshot.n_answered
            else:
                admitted = view.n - view.n_shed
                answered = view.n - view.n_failed - view.n_shed
            if admitted:
                availability = answered / admitted
                pressures["availability"] = (
                    spec.min_availability / availability
                    if availability > 0.0
                    else float("inf")
                )

        mean_cost = view.mean_cost
        if spec.max_cost_per_request is not None and not math.isnan(mean_cost):
            pressures["cost_per_request"] = mean_cost / spec.max_cost_per_request

        worst = max(pressures.values(), default=0.0)
        if worst > 1.0:
            # The small-N guard: when the *only* violated metrics are
            # percentile estimates ranked over too few samples, the
            # violation is quantile noise — cap the verdict at WARN.
            solid_violation = any(
                ratio > 1.0
                for metric, ratio in pressures.items()
                if metric != "p95_latency_s"
            )
            if (
                not solid_violation
                and pressures.get("p95_latency_s", 0.0) > 1.0
                and p95.low_confidence
            ):
                return SLOState.WARN, pressures, True
            return SLOState.BREACH, pressures, False
        # Strictly above the warn ratio: a metric sitting exactly on it
        # (e.g. perfect availability against a floor of warn_ratio's
        # reciprocal) is compliant, not "close to violating".
        if worst > spec.warn_ratio:
            return SLOState.WARN, pressures, False
        return SLOState.OK, pressures, guarded

    def evaluate(self, snapshot: WindowSnapshot) -> SLOStatus:
        """Fold one snapshot into the debounced state machine."""
        raw, pressures, guarded = self._raw(snapshot)
        previous = self.state

        if raw is SLOState.BREACH:
            self._violating_streak += 1
            self._clean_streak = 0
        elif raw is SLOState.OK:
            self._clean_streak += 1
            self._violating_streak = 0
        else:  # WARN neither arms nor clears the breach latch
            self._violating_streak = 0
            self._clean_streak = 0

        if self.state is SLOState.BREACH:
            if self._clean_streak >= self.spec.clear_after:
                self.state = SLOState.OK
        else:
            if self._violating_streak >= self.spec.breach_after:
                self.state = SLOState.BREACH
            else:
                self.state = raw if raw is not SLOState.BREACH else SLOState.WARN

        return SLOStatus(
            name=self.spec.name,
            state=self.state,
            raw_state=raw,
            pressures=pressures,
            guarded=guarded,
            transitioned=self.state is not previous,
        )


@dataclass(frozen=True)
class GrayDetectionSpec:
    """Configuration for per-node gray-failure detection.

    A gray failure is a node that is slow but alive: every health check
    passes, yet its service times have silently diverged from its pool
    peers.  Whole-stream SLOs dilute the signal — one slow node out of
    four moves the pool p95 late or not at all — so detection compares
    *per-node* service-time EWMAs against the pool median instead.

    Attributes:
        ratio_threshold: A node is raw-gray when its service-time EWMA
            is at least this multiple of its pool's median EWMA.  Must
            exceed 1 (a node cannot be gray relative to itself).
        min_samples: Completions a node must have served before its
            EWMA participates — one slow batch is noise, not divergence.
        ewma_alpha: Exponential smoothing factor in ``(0, 1]``; higher
            weights recent completions more.
        detect_after: Consecutive gray evaluations (control ticks)
            before a node is flagged.
        clear_after: Consecutive clean evaluations before a flagged
            node is released.
        state_on_detect: The :class:`SLOState` the detector contributes
            to the plane aggregate while any node is flagged — WARN
            surfaces the divergence, BREACH additionally arms admission
            control.  OK is rejected (detection would be inert).
    """

    ratio_threshold: float = 2.0
    min_samples: int = 8
    ewma_alpha: float = 0.3
    detect_after: int = 2
    clear_after: int = 2
    state_on_detect: SLOState = SLOState.WARN

    def __post_init__(self) -> None:
        if not self.ratio_threshold > 1.0:
            raise ValueError("ratio_threshold must exceed 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.detect_after < 1 or self.clear_after < 1:
            raise ValueError("detect_after / clear_after must be at least 1")
        if self.state_on_detect is SLOState.OK:
            raise ValueError("state_on_detect must be WARN or BREACH")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class GrayFailureDetector:
    """Flags pool nodes whose service times silently diverge from peers.

    Fed one observation per node completion via :meth:`observe` and
    evaluated once per control tick via :meth:`evaluate`, which applies
    the same hysteresis discipline as :class:`SLOMonitor`: a node must
    look gray for ``detect_after`` consecutive ticks to be flagged and
    clean for ``clear_after`` to be released.  Evaluation is a pure
    function of the observation sequence — no randomness, no wall
    clock — so closed-loop runs stay bit-deterministic.

    A pool is only judged when at least two of its nodes have served
    ``min_samples`` completions: with a single reporting node there is
    no peer baseline, and any existing flags for that pool are released.
    """

    def __init__(self, spec: GrayDetectionSpec) -> None:
        self.spec = spec
        self._ewma: Dict[Tuple[str, str], float] = {}
        self._count: Dict[Tuple[str, str], int] = {}
        self._gray_streak: Dict[Tuple[str, str], int] = {}
        self._clean_streak: Dict[Tuple[str, str], int] = {}
        self._flagged: Set[Tuple[str, str]] = set()

    def observe(self, node_id: str, version: str, service_time_s: float) -> None:
        """Fold one completion's service time into the node's EWMA."""
        key = (version, node_id)
        previous = self._ewma.get(key)
        if previous is None:
            self._ewma[key] = service_time_s
        else:
            alpha = self.spec.ewma_alpha
            self._ewma[key] = alpha * service_time_s + (1.0 - alpha) * previous
        self._count[key] = self._count.get(key, 0) + 1

    @property
    def n_flagged(self) -> int:
        """Nodes currently flagged gray."""
        return len(self._flagged)

    @property
    def state(self) -> SLOState:
        """The detector's contribution to the plane aggregate."""
        return self.spec.state_on_detect if self._flagged else SLOState.OK

    def evaluate(self) -> List[Tuple[str, str]]:
        """Judge every comparable pool; return ``(kind, detail)`` transitions.

        ``kind`` is ``"gray-detected"`` or ``"gray-cleared"``.  Details
        name the version and divergence ratio but deliberately not the
        node: node identifiers embed a process-global counter, and the
        control log participates in the deterministic report digest.
        """
        spec = self.spec
        transitions: List[Tuple[str, str]] = []
        pools: Dict[str, List[Tuple[str, float]]] = {}
        for (version, node_id), count in self._count.items():
            if count >= spec.min_samples:
                pools.setdefault(version, []).append(
                    (node_id, self._ewma[(version, node_id)])
                )

        judged: Set[Tuple[str, str]] = set()
        for version in sorted(pools):
            nodes = pools[version]
            if len(nodes) < 2:
                continue
            median = _median([ewma for _, ewma in nodes])
            if median <= 0.0:
                continue
            for node_id, ewma in sorted(nodes):
                key = (version, node_id)
                judged.add(key)
                ratio = ewma / median
                if ratio >= spec.ratio_threshold:
                    self._gray_streak[key] = self._gray_streak.get(key, 0) + 1
                    self._clean_streak[key] = 0
                    if (
                        key not in self._flagged
                        and self._gray_streak[key] >= spec.detect_after
                    ):
                        self._flagged.add(key)
                        transitions.append(
                            (
                                "gray-detected",
                                f"{version}: node service-time ewma "
                                f"{ratio:.2f}x pool median",
                            )
                        )
                else:
                    self._clean_streak[key] = self._clean_streak.get(key, 0) + 1
                    self._gray_streak[key] = 0
                    if (
                        key in self._flagged
                        and self._clean_streak[key] >= spec.clear_after
                    ):
                        self._flagged.discard(key)
                        transitions.append(
                            (
                                "gray-cleared",
                                f"{version}: node service-time ewma back to "
                                f"{ratio:.2f}x pool median",
                            )
                        )

        # A flagged node whose pool lost its peer baseline (everyone
        # else died or was drained) can no longer be judged; release it
        # rather than latch the plane state on stale evidence.
        for key in sorted(self._flagged - judged):
            self._flagged.discard(key)
            self._gray_streak[key] = 0
            self._clean_streak[key] = 0
            transitions.append(
                (
                    "gray-cleared",
                    f"{key[0]}: pool no longer comparable; flag released",
                )
            )
        return transitions
