"""Admission control: shed or degrade load before queues explode.

When an SLO is in BREACH the cheapest request to serve is the one you
never enqueue.  :class:`AdmissionController` is the decision point the
gateway (and the closed-loop engine) consults once per arriving request;
under pressure it answers with one of three policies:

* ``probabilistic`` — shed an incoming request with a fixed probability,
  drawn from a dedicated seeded RNG (so closed-loop runs stay
  bit-deterministic and healthy runs consume no draws at all);
* ``priority`` — shed exactly the requests whose declared priority
  (``metadata["priority"]``) falls below a floor, protecting important
  traffic deterministically;
* ``degrade`` — shed nothing: force-degrade incoming requests to the
  fast tier (a single-version configuration on the planned ensemble's
  fast version), trading accuracy for capacity instead of dropping work.

Shed and degraded requests are first-class outcomes: the engine records
them (``RequestRecord.shed`` / ``RequestRecord.degraded``), the report's
conservation laws account them (submitted = completed + failed + shed),
and a gateway ticket for a shed request resolves with a structured
:class:`~repro.core.errors.RequestShedError` — it never hangs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SingleVersionPolicy
from repro.service.control.slo import SLOState
from repro.service.request import ServiceRequest

__all__ = [
    "AdmissionAction",
    "AdmissionDecision",
    "AdmissionSpec",
    "AdmissionController",
]

#: Policies the controller knows.
_POLICIES = ("probabilistic", "priority", "degrade")


class AdmissionAction(enum.Enum):
    """What happens to one arriving request."""

    ADMIT = "admit"
    SHED = "shed"
    DEGRADE = "degrade"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer for one request.

    Attributes:
        action: Admit, shed, or degrade.
        configuration: The replacement configuration to serve the
            request with (set exactly when ``action`` is DEGRADE).
        reason: Short human-readable cause, for logs and errors.
    """

    action: AdmissionAction
    configuration: Optional[EnsembleConfiguration] = None
    reason: str = ""


#: The admit decision needs no per-request state; share one instance.
ADMIT = AdmissionDecision(AdmissionAction.ADMIT)


@dataclass(frozen=True)
class AdmissionSpec:
    """Declarative admission policy for a :class:`ControlSpec`.

    Attributes:
        policy: ``"probabilistic"``, ``"priority"`` or ``"degrade"``.
        shed_probability: Shed probability under BREACH
            (``probabilistic`` policy).
        priority_floor: Requests with priority strictly below this are
            shed under BREACH (``priority`` policy).
        default_priority: Priority assumed for requests that carry no
            ``priority`` metadata.
    """

    policy: str = "probabilistic"
    shed_probability: float = 0.5
    priority_floor: float = 1.0
    default_priority: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {_POLICIES}"
            )
        if not 0.0 <= self.shed_probability <= 1.0:
            raise ValueError("shed_probability must be in [0, 1]")


def degraded_configuration(
    planned: EnsembleConfiguration,
) -> Optional[EnsembleConfiguration]:
    """The fast-tier downgrade of a planned ensemble.

    A two-version ensemble degrades to a single-version configuration on
    its fast version; a single-version plan has nothing cheaper to fall
    back to (returns ``None``, and the request is admitted as planned).
    """
    policy = planned.policy
    if planned.kind == "single":
        return None
    return EnsembleConfiguration(
        f"{planned.config_id}@degraded", SingleVersionPolicy(policy.fast_version)
    )


class AdmissionController:
    """Per-request admission decisions driven by the SLO aggregate state.

    Args:
        spec: The declarative policy.
        rng: Dedicated generator for probabilistic sheds.  Only the
            ``probabilistic`` policy ever draws from it, and only while
            the plane is in BREACH — a healthy run consumes no
            randomness here.
    """

    def __init__(
        self, spec: AdmissionSpec, *, rng: Optional[np.random.Generator] = None
    ) -> None:
        self.spec = spec
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.n_shed = 0
        self.n_degraded = 0

    def decide(
        self,
        request: ServiceRequest,
        *,
        state: SLOState,
        planned: EnsembleConfiguration,
    ) -> AdmissionDecision:
        """Decide one arriving request's fate.

        Args:
            request: The arriving request.
            state: The plane's aggregate SLO state at arrival.
            planned: The configuration routing chose for the request
                (the ``degrade`` policy derives its fallback from it).
        """
        if state is not SLOState.BREACH:
            return ADMIT
        spec = self.spec
        if spec.policy == "probabilistic":
            if float(self._rng.uniform()) < spec.shed_probability:
                self.n_shed += 1
                return AdmissionDecision(
                    AdmissionAction.SHED,
                    reason=f"probabilistic shed (p={spec.shed_probability:g})",
                )
            return ADMIT
        if spec.policy == "priority":
            raw = request.metadata.get("priority", spec.default_priority)
            try:
                priority = float(raw)
            except (TypeError, ValueError):
                priority = spec.default_priority
            if priority < spec.priority_floor:
                self.n_shed += 1
                return AdmissionDecision(
                    AdmissionAction.SHED,
                    reason=(
                        f"priority {priority:g} below floor "
                        f"{spec.priority_floor:g}"
                    ),
                )
            return ADMIT
        # degrade
        fallback = degraded_configuration(planned)
        if fallback is None:
            return ADMIT
        self.n_degraded += 1
        return AdmissionDecision(
            AdmissionAction.DEGRADE,
            configuration=fallback,
            reason=f"degraded to fast tier ({fallback.config_id})",
        )
