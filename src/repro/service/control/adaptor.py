"""Online tier-policy adaptation: re-fit the rule generator on live telemetry.

The offline rule generator fits tier policies once, against curated
training traffic; a serving system under a flash crowd or a half-dead
accurate pool is not the system that traffic was measured on.
:class:`PolicyAdaptor` closes the loop the way adaptive-anchoring
iterations do — feedback on the observed iterate instead of a fixed
schedule:

* the deployed configuration is the **anchor**;
* while the SLOs are in BREACH the adaptor *widens* its effective
  tolerance one step at a time and re-runs the
  :class:`~repro.core.rule_generator.RoutingRuleGenerator` (the PR 2
  vectorized outcome-matrix engine) over the measurement rows observed
  in the trailing telemetry window, hot-swapping the executor onto the
  re-fit winner — under load that winner is a cheaper, faster ensemble
  (a lower escalation threshold, or the fast version alone), which is
  exactly what frees the saturated pool;
* once the SLOs have been OK long enough it tightens back step by step,
  and at the base tolerance it restores the anchor verbatim — a healthy
  system converges to exactly its offline policy.

Guardrails:

* **minimum window size** — no re-fit on fewer than
  ``min_window_samples`` observed requests (a rule table fit on a
  handful of rows is noise);
* **no cost-increasing swaps under breach** — the anchor is
  bootstrapped alongside the candidates every re-fit, and while
  breaching a swap must strictly lower the worst-case cost
  (node-seconds per request) of the active policy; without this, a
  narrow first widening step can "re-fit" onto the most accurate single
  version — the one configuration guaranteed to deepen a capacity
  breach;
* **rollback on SLO regression** — every swap records the pre-swap p95;
  if, one re-fit interval later, the system is still in BREACH and the
  (confidently estimated) p95 got materially worse, the swap is
  reverted and the configuration blacklisted until recovery.  The
  widened tolerance is *kept*: under a persisting breach the adaptation
  pressure only ratchets up (the adaptive-anchoring move), so the next
  re-fit tries a wider tolerance instead of re-trying the bad swap.

The adaptor draws no randomness of its own: re-fit seeds derive
deterministically from the plane seed and the re-fit ordinal, so
closed-loop runs are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import math

from repro.core.configuration import (
    EnsembleConfiguration,
    enumerate_configurations,
)
from repro.core.rule_generator import RoutingRuleGenerator
from repro.service.control.slo import SLOState
from repro.service.control.telemetry import WindowSnapshot
from repro.service.measurement import MeasurementSet
from repro.service.request import Objective

__all__ = ["AdaptorConfig", "AdaptorEvent", "PolicyAdaptor"]


@dataclass(frozen=True)
class AdaptorConfig:
    """How the online adaptor widens, re-fits and rolls back.

    Attributes:
        refit_interval_s: Minimum virtual time between re-fits (also the
            grace period before a swap is judged for rollback).
        min_window_samples: Re-fit guardrail — the trailing window must
            hold at least this many answered requests.
        objective: Objective the re-fit optimises.  The default is COST,
            deliberately *not* the latency objective even for latency
            breaches: measured response times are contention-free, so
            under saturation the latency objective favours concurrent
            ensembles that overlap legs — and double the node-seconds
            per request, which is exactly the wrong direction when the
            breach is capacity.  Worst-case cost is node-seconds per
            request, i.e. inverse capacity; minimising it is what drains
            the queues.
        tolerance_step: Widening step, in the tier-tolerance units of
            ``degradation_mode`` (relative degradation is a *fraction of
            the baseline error*, so useful steps depend on the service's
            error scale; absolute mode steps in error units).
        max_tolerance: Ceiling on the widened effective tolerance.
        base_tolerance: The anchor's tolerance; tightening stops here
            and restores the anchor configuration.
        recover_after: Consecutive OK evaluations before one tightening
            step.
        rollback_margin: A swap is rolled back when, still in BREACH one
            interval later, the confident windowed p95 exceeds the
            pre-swap p95 by this factor.
        degradation_mode: ``"relative"`` or ``"absolute"`` — forwarded
            to the rule generator.
        thresholds: Confidence-threshold grid of the candidate space.
        confidence: Bootstrap confidence of the re-fit (lower than the
            offline 99.9 % — an online re-fit trades certainty for
            reaction time).
        min_trials / max_trials: Bootstrap trial bounds per candidate.
        sample_fraction: Bootstrap subsample fraction per trial.
    """

    refit_interval_s: float = 2.0
    min_window_samples: int = 20
    objective: Objective = Objective.COST
    tolerance_step: float = 0.05
    max_tolerance: float = 0.25
    base_tolerance: float = 0.0
    recover_after: int = 4
    rollback_margin: float = 1.05
    degradation_mode: str = "relative"
    thresholds: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)
    confidence: float = 0.95
    min_trials: int = 8
    max_trials: int = 24
    sample_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.refit_interval_s <= 0.0:
            raise ValueError("refit_interval_s must be positive")
        if self.min_window_samples < 2:
            raise ValueError("min_window_samples must be at least 2")
        if self.tolerance_step <= 0.0:
            raise ValueError("tolerance_step must be positive")
        if self.max_tolerance < self.base_tolerance:
            raise ValueError("max_tolerance must be >= base_tolerance")
        if self.recover_after < 1:
            raise ValueError("recover_after must be at least 1")
        if self.rollback_margin < 1.0:
            raise ValueError("rollback_margin must be at least 1")
        if self.degradation_mode not in ("relative", "absolute"):
            raise ValueError("degradation_mode must be relative or absolute")


@dataclass(frozen=True)
class AdaptorEvent:
    """One adaptor action, for the control log.

    Attributes:
        kind: ``"swap"``, ``"swap-declined"``, ``"anchor-restore"``,
            ``"rollback"``, ``"refit-nochange"``, ``"refit-noimprove"``,
            ``"refit-rejected"`` or ``"refit-skipped"``.
        detail: Human-readable context.
    """

    kind: str
    detail: str


class _PendingJudgement:
    """Bookkeeping for rollback: what the world looked like pre-swap."""

    __slots__ = ("previous", "p95_before", "judge_at")

    def __init__(self, previous, p95_before, judge_at):
        self.previous = previous
        self.p95_before = p95_before
        self.judge_at = judge_at


class PolicyAdaptor:
    """Widen-refit-tighten state machine over telemetry snapshots.

    Args:
        config: The adaptation schedule and guardrails.
        measurements: The full measurement table; re-fits run on the
            row subset named by the trailing window's payloads.
        anchor: The offline-fit configuration the system deploys with
            (and converges back to).
        seed: Base seed; each re-fit derives its own deterministic
            generator seed from it.
    """

    def __init__(
        self,
        config: AdaptorConfig,
        *,
        measurements: MeasurementSet,
        anchor: EnsembleConfiguration,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.measurements = measurements
        self.anchor = anchor
        self.active = anchor
        self.effective_tolerance = config.base_tolerance
        self._seed = int(seed)
        self._row_of = {rid: i for i, rid in enumerate(measurements.request_ids)}
        # The anchor competes in (and is estimated by) every re-fit, so
        # swaps can be judged against the deployed policy's worst case.
        self._candidates = enumerate_configurations(
            measurements, thresholds=config.thresholds
        ) + [anchor]
        self._rejected: set = set()
        self._last_refit = -math.inf
        self._ok_streak = 0
        self._refit_count = 0
        self._pending: Optional[_PendingJudgement] = None
        #: Adaptor actions in order, drained into the control log.
        self.events: List[AdaptorEvent] = []

    # ------------------------------------------------------------------
    def on_tick(
        self, snapshot: WindowSnapshot, state: SLOState, now: float
    ) -> Optional[EnsembleConfiguration]:
        """Advance the adaptation state machine by one control tick.

        Returns the configuration to hot-swap the executor onto, or
        ``None`` when the active policy stands.
        """
        rolled_back = self._judge_pending(snapshot, state, now)
        if rolled_back is not None:
            return rolled_back

        if state is SLOState.BREACH:
            self._ok_streak = 0
            if now - self._last_refit < self.config.refit_interval_s:
                return None
            widened = min(
                self.config.max_tolerance,
                self.effective_tolerance + self.config.tolerance_step,
            )
            if widened <= self.effective_tolerance + 1e-12:
                return None  # already at the ceiling
            return self._refit(snapshot, now, widened, widening=True)

        if state is SLOState.OK:
            self._ok_streak += 1
            if (
                self.effective_tolerance
                <= self.config.base_tolerance + 1e-12
                or self._ok_streak < self.config.recover_after
                or now - self._last_refit < self.config.refit_interval_s
            ):
                return None
            self._ok_streak = 0
            tightened = max(
                self.config.base_tolerance,
                self.effective_tolerance - self.config.tolerance_step,
            )
            if tightened <= self.config.base_tolerance + 1e-12:
                # Fully recovered: restore the anchor verbatim.
                self._last_refit = now
                self.effective_tolerance = self.config.base_tolerance
                self._pending = None
                self._rejected.clear()
                if self.active.config_id != self.anchor.config_id:
                    self.active = self.anchor
                    self.events.append(
                        AdaptorEvent(
                            "anchor-restore",
                            f"anchor {self.anchor.config_id} restored",
                        )
                    )
                    return self.anchor
                return None
            return self._refit(snapshot, now, tightened, widening=False)

        # WARN: hold position, reset the recovery streak.
        self._ok_streak = 0
        return None

    # ------------------------------------------------------------------
    def _judge_pending(
        self, snapshot: WindowSnapshot, state: SLOState, now: float
    ) -> Optional[EnsembleConfiguration]:
        pending = self._pending
        if pending is None or now < pending.judge_at:
            return None
        self._pending = None
        p95 = snapshot.p95_latency
        if (
            state is SLOState.BREACH
            and p95.reliable
            and math.isfinite(pending.p95_before)
            and p95.value > pending.p95_before * self.config.rollback_margin
        ):
            previous = pending.previous
            self.events.append(
                AdaptorEvent(
                    "rollback",
                    f"{self.active.config_id} regressed p95 "
                    f"{pending.p95_before:.3f}s -> {p95.value:.3f}s; "
                    f"reverting to {previous.config_id}",
                )
            )
            # Blacklist the regressing swap until recovery, but keep the
            # widened tolerance: the breach persists, so the next re-fit
            # must explore further out, not re-try this rung.
            self._rejected.add(self.active.config_id)
            self.active = previous
            return previous
        return None

    def _refit(
        self,
        snapshot: WindowSnapshot,
        now: float,
        tolerance: float,
        *,
        widening: bool,
    ) -> Optional[EnsembleConfiguration]:
        self._last_refit = now
        rows = sorted(
            {
                self._row_of[payload]
                for payload in snapshot.payloads
                if payload in self._row_of
            }
        )
        if len(snapshot.payloads) < self.config.min_window_samples or len(rows) < 2:
            self.events.append(
                AdaptorEvent(
                    "refit-skipped",
                    f"window holds {len(snapshot.payloads)} answered "
                    f"request(s) over {len(rows)} measured row(s); need "
                    f">= {self.config.min_window_samples}",
                )
            )
            return None
        self._refit_count += 1
        window = self.measurements.subset(rows)
        generator = RoutingRuleGenerator(
            window,
            configurations=self._candidates,
            confidence=self.config.confidence,
            sample_fraction=self.config.sample_fraction,
            seed=(self._seed * 1_000_003 + self._refit_count) % (2**32),
            degradation_mode=self.config.degradation_mode,
            min_trials=self.config.min_trials,
            max_trials=self.config.max_trials,
            engine="vectorized",
        )
        table = generator.generate([tolerance], self.config.objective)
        chosen = table.rules[float(tolerance)]
        self.effective_tolerance = tolerance
        if chosen.config_id == self.active.config_id:
            self.events.append(
                AdaptorEvent(
                    "refit-nochange",
                    f"refit #{self._refit_count} at tolerance "
                    f"{tolerance:g} kept {chosen.config_id}",
                )
            )
            return None
        if widening and chosen.config_id in self._rejected:
            self.events.append(
                AdaptorEvent(
                    "refit-rejected",
                    f"refit #{self._refit_count} chose previously "
                    f"rolled-back {chosen.config_id}; widening further",
                )
            )
            return None
        if widening:
            # Under a capacity breach a swap must strictly lower the
            # worst-case node-seconds per request; the re-fit estimated
            # the active configuration on the same window, so the
            # comparison is apples to apples.
            chosen_cost = generator.estimate_for(
                chosen.config_id
            ).mean_invocation_cost
            active_cost = generator.estimate_for(
                self.active.config_id
            ).mean_invocation_cost
            if chosen_cost >= active_cost:
                self.events.append(
                    AdaptorEvent(
                        "refit-noimprove",
                        f"refit #{self._refit_count} at tolerance "
                        f"{tolerance:g}: {chosen.config_id} costs "
                        f"{chosen_cost:.3g} >= active "
                        f"{self.active.config_id} {active_cost:.3g}; "
                        "widening further",
                    )
                )
                return None
        self._pending = _PendingJudgement(
            previous=self.active,
            p95_before=(
                snapshot.p95_latency.value
                if snapshot.p95_latency.reliable
                else math.nan
            ),
            judge_at=now + self.config.refit_interval_s,
        )
        self.events.append(
            AdaptorEvent(
                "swap",
                f"refit #{self._refit_count} on {len(rows)} rows at "
                f"tolerance {tolerance:g}: {self.active.config_id} -> "
                f"{chosen.config_id}",
            )
        )
        self.active = chosen
        return chosen

    def decline(self, configuration: EnsembleConfiguration) -> None:
        """The executor refused a swap; re-anchor the bookkeeping on it.

        A caller that cannot deploy the returned configuration (e.g. a
        gateway whose backend lacks a version) must decline it, or the
        adaptor's notion of the active policy — and every later rollback
        judgement and cost comparison — drifts off the policy actually
        serving.  The declined configuration is blacklisted until
        recovery.
        """
        if self.active.config_id != configuration.config_id:
            return
        previous = (
            self._pending.previous if self._pending is not None else self.anchor
        )
        self._pending = None
        self._rejected.add(configuration.config_id)
        self.active = previous
        self.events.append(
            AdaptorEvent(
                "swap-declined",
                f"{configuration.config_id} refused by the executor; "
                f"keeping {previous.config_id}",
            )
        )

    def drain_events(self) -> List[AdaptorEvent]:
        """Return and clear the accumulated adaptor events."""
        events, self.events = self.events, []
        return events
