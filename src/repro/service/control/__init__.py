"""The serving control plane: observe, judge, shed, adapt.

Everything else in :mod:`repro.service` serves requests; this package
watches the serving and steers it.  Four cooperating parts:

* :mod:`repro.service.control.telemetry` — a streaming, ring-buffered
  sliding window over per-request records (windowed p50/p95/p99 with a
  small-N confidence guard, goodput, availability, node-seconds burn,
  per-tier breakdowns), fed through a plain event-hook interface by
  both the discrete-event engine and the gateway's synchronous path,
  plus the scrape-able :class:`MetricsExporter` that serializes window
  snapshots into the longitudinal benchmark-history schema
  (``results/bench_history.jsonl``).
* :mod:`repro.service.control.slo` — declarative :class:`SLOSpec`
  targets evaluated continuously into debounced OK / WARN / BREACH
  states with hysteresis, plus :class:`GrayFailureDetector`, which
  flags slow-but-alive nodes by comparing per-node service-time EWMAs
  against the pool median.
* :mod:`repro.service.control.admission` — the admission controller
  consulted once per arriving request; under BREACH it sheds
  (probabilistically or by priority) or force-degrades traffic to the
  fast tier.  Shed and degraded requests are first-class in reports
  and conservation laws.
* :mod:`repro.service.control.adaptor` — online tier-policy
  adaptation: re-run the PR 2 rule generator on the trailing telemetry
  window, hot-swap the winner, tighten back to the anchor when healthy,
  with minimum-window and rollback guardrails.

:mod:`repro.service.control.plane` ties them together:
:class:`ControlSpec` (declarative, embeddable in a ``ScenarioSpec``) and
:class:`ControlPlane` (the live loop the engine and gateway consult).
See ``docs/CONTROL_PLANE.md``.
"""

from repro.service.control.admission import (
    AdmissionAction,
    AdmissionController,
    AdmissionDecision,
    AdmissionSpec,
    degraded_configuration,
)
from repro.service.control.adaptor import (
    AdaptorConfig,
    AdaptorEvent,
    PolicyAdaptor,
)
from repro.service.control.plane import (
    ControlLogEntry,
    ControlPlane,
    ControlSpec,
    default_control_spec,
)
from repro.service.control.slo import (
    GrayDetectionSpec,
    GrayFailureDetector,
    SLOMonitor,
    SLOSpec,
    SLOState,
    SLOStatus,
)
from repro.service.control.telemetry import (
    MIN_PERCENTILE_SAMPLES,
    MetricsExporter,
    PercentileEstimate,
    TelemetryHub,
    TierWindow,
    WindowSnapshot,
    guarded_percentile,
    snapshot_metrics,
)

__all__ = [
    "AdaptorConfig",
    "AdaptorEvent",
    "AdmissionAction",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionSpec",
    "ControlLogEntry",
    "ControlPlane",
    "ControlSpec",
    "GrayDetectionSpec",
    "GrayFailureDetector",
    "MIN_PERCENTILE_SAMPLES",
    "MetricsExporter",
    "PercentileEstimate",
    "PolicyAdaptor",
    "SLOMonitor",
    "SLOSpec",
    "SLOState",
    "SLOStatus",
    "TelemetryHub",
    "TierWindow",
    "WindowSnapshot",
    "default_control_spec",
    "degraded_configuration",
    "guarded_percentile",
    "snapshot_metrics",
]
