"""Node-level request batching and its sublinear latency model.

Serving systems batch requests to trade a little latency for a lot of
throughput: running ``k`` requests through a model together costs much
less than ``k`` solo passes (weights are loaded once, matrix work is
wider).  :class:`BatchingConfig` captures the two knobs every batching
serving stack exposes — the maximum batch size and the maximum time the
head-of-line request may wait for the batch to fill — plus the latency
model used by :meth:`~repro.service.node.ServiceNode.execute_batch`:

    ``batch_time(t_1..t_k) = max(t_i) * k ** latency_exponent``

With ``latency_exponent = 1`` batching degenerates to serial execution of
the slowest-member time (no benefit); with ``0`` a batch costs no more
than its slowest member (perfect parallelism).  The default ``0.7`` gives
the sublinear scaling measured on real inference servers: a batch of 8
costs ~4.3x one request instead of 8x, i.e. per-request node-seconds drop
by ~46 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["BatchingConfig"]


@dataclass(frozen=True)
class BatchingConfig:
    """Batching policy of one node pool.

    Attributes:
        max_batch_size: Largest batch a node may execute at once.  ``1``
            disables batching entirely.
        max_wait_s: Deadline a queued request may wait for batchmates,
            measured from its *enqueue* time: an idle node holds a
            part-filled batch only until its head-of-line request has been
            queued this long, then executes what it has.  A request that
            already waited this long behind a busy node is executed as
            soon as the node frees up.  ``0.0`` means never hold back: a
            free node starts immediately with whatever is queued.
        latency_exponent: Exponent of the sublinear batch latency model in
            ``[0, 1]``; see the module docstring.
    """

    max_batch_size: int = 1
    max_wait_s: float = 0.0
    latency_exponent: float = 0.7

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be non-negative")
        if not 0.0 <= self.latency_exponent <= 1.0:
            raise ValueError("latency_exponent must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether this config can ever form a batch larger than one."""
        return self.max_batch_size > 1

    def batch_service_time(self, solo_times_s: Sequence[float]) -> float:
        """Wall time to execute one batch of requests together.

        Args:
            solo_times_s: Each member's solo service time on the executing
                node.

        Returns:
            The batch's wall service time; never less than the slowest
            member's solo time.
        """
        if not solo_times_s:
            raise ValueError("batch must contain at least one request")
        if len(solo_times_s) > self.max_batch_size:
            raise ValueError(
                f"batch of {len(solo_times_s)} exceeds max_batch_size="
                f"{self.max_batch_size}"
            )
        return max(solo_times_s) * len(solo_times_s) ** self.latency_exponent
