"""Arrival processes for offered-load generation.

The serving simulator decouples *when* requests arrive from *what* they
ask for.  This module provides the when: Poisson arrivals (the classic
open-loop model), a two-state bursty process (calm/burst phases with
different rates, an on/off MMPP), rate-varying processes for the
fault-injection scenarios — a diurnal curve and a flash-crowd spike, both
non-homogeneous Poisson processes sampled by thinning — and trace-driven
arrivals replaying recorded timestamps.  Every process emits absolute
arrival times in seconds, sorted ascending, for a caller-supplied number
of requests.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "SpikeArrivals",
    "ThunderingHerdArrivals",
    "TraceArrivals",
]


class ArrivalProcess(Protocol):
    """Protocol every arrival process implements."""

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        """Absolute arrival times (seconds, ascending) for ``n_requests``."""
        ...


def _require_positive_count(n_requests: int) -> None:
    if n_requests < 1:
        raise ValueError("n_requests must be at least 1")


class PoissonArrivals:
    """Open-loop Poisson arrivals at a fixed mean rate.

    Args:
        rate: Mean arrival rate in requests per second.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        gaps = rng.exponential(1.0 / self.rate, size=n_requests)
        return np.cumsum(gaps)

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate:g}/s)"


class BurstyArrivals:
    """Two-state bursty arrivals: calm phases punctuated by bursts.

    An on/off Markov-modulated Poisson process: the source alternates
    between a *calm* phase (rate ``base_rate``, exponentially distributed
    duration with mean ``mean_calm_s``) and a *burst* phase (rate
    ``burst_rate``, mean duration ``mean_burst_s``).  Within each phase
    arrivals are Poisson at the phase's rate.

    Args:
        base_rate: Requests per second during calm phases.
        burst_rate: Requests per second during bursts (must exceed
            ``base_rate``).
        mean_calm_s: Mean calm-phase duration in seconds.
        mean_burst_s: Mean burst duration in seconds.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        *,
        mean_calm_s: float = 10.0,
        mean_burst_s: float = 2.0,
    ) -> None:
        if base_rate <= 0.0 or burst_rate <= 0.0:
            raise ValueError("rates must be positive")
        if burst_rate <= base_rate:
            raise ValueError("burst_rate must exceed base_rate")
        if mean_calm_s <= 0.0 or mean_burst_s <= 0.0:
            raise ValueError("phase durations must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate (phase-duration weighted)."""
        total = self.mean_calm_s + self.mean_burst_s
        return (
            self.base_rate * self.mean_calm_s
            + self.burst_rate * self.mean_burst_s
        ) / total

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        arrivals: list = []
        clock = 0.0
        in_burst = False
        while len(arrivals) < n_requests:
            rate = self.burst_rate if in_burst else self.base_rate
            mean_phase = self.mean_burst_s if in_burst else self.mean_calm_s
            phase_end = clock + rng.exponential(mean_phase)
            t = clock
            while len(arrivals) < n_requests:
                t += rng.exponential(1.0 / rate)
                if t > phase_end:
                    break
                arrivals.append(t)
            clock = phase_end
            in_burst = not in_burst
        return np.asarray(arrivals[:n_requests])

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(base={self.base_rate:g}/s, "
            f"burst={self.burst_rate:g}/s)"
        )


def _thinned_poisson_times(
    n_requests: int,
    rng: np.random.Generator,
    max_rate: float,
    rate_at,
) -> np.ndarray:
    """Sample a non-homogeneous Poisson process by thinning.

    Candidate arrivals are drawn from a homogeneous process at
    ``max_rate`` and accepted with probability ``rate_at(t) / max_rate``
    — the classic Lewis–Shedler construction.  Draw order is fixed (one
    exponential gap plus one uniform per candidate), so a fixed RNG state
    always yields the same arrival times.
    """
    arrivals = np.empty(n_requests, dtype=float)
    count = 0
    t = 0.0
    while count < n_requests:
        t += rng.exponential(1.0 / max_rate)
        if rng.uniform() * max_rate <= rate_at(t):
            arrivals[count] = t
            count += 1
    return arrivals


class DiurnalArrivals:
    """Sinusoidal-rate arrivals: the classic day/night traffic curve.

    The instantaneous rate is

        ``rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period_s + phase))``

    so traffic swings between ``base_rate * (1 - amplitude)`` and
    ``base_rate * (1 + amplitude)`` over one period.  Useful for
    autoscaler scenarios where capacity must track a slow, predictable
    wave rather than a spike.

    Args:
        base_rate: Mean arrival rate in requests per second.
        amplitude: Relative swing of the curve, in ``[0, 1)``.
        period_s: Length of one full day/night cycle in virtual seconds.
        phase: Phase offset in radians (``0`` starts at the mean rate,
            rising).
    """

    def __init__(
        self,
        base_rate: float,
        *,
        amplitude: float = 0.5,
        period_s: float = 60.0,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0.0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0.0:
            raise ValueError("period_s must be positive")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase = phase

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        angle = 2.0 * np.pi * t / self.period_s + self.phase
        return self.base_rate * (1.0 + self.amplitude * float(np.sin(angle)))

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        max_rate = self.base_rate * (1.0 + self.amplitude)
        return _thinned_poisson_times(n_requests, rng, max_rate, self.rate_at)

    def __repr__(self) -> str:
        return (
            f"DiurnalArrivals(base={self.base_rate:g}/s, "
            f"amplitude={self.amplitude:g}, period={self.period_s:g}s)"
        )


class SpikeArrivals:
    """A flash crowd: steady traffic with a multiplicative spike window.

    Outside the window arrivals are Poisson at ``base_rate``; inside
    ``[spike_start_s, spike_start_s + spike_duration_s)`` the rate jumps
    to ``base_rate * spike_multiplier``.  This is the canonical
    "retweeted by someone famous" scenario for resilience testing: the
    interesting question is what the tail and the autoscaler do during
    and just after the step.

    Args:
        base_rate: Requests per second outside the spike.
        spike_start_s: Virtual time the spike begins.
        spike_duration_s: Length of the spike window.
        spike_multiplier: Rate multiplier during the spike (must exceed 1).
    """

    def __init__(
        self,
        base_rate: float,
        *,
        spike_start_s: float,
        spike_duration_s: float,
        spike_multiplier: float = 5.0,
    ) -> None:
        if base_rate <= 0.0:
            raise ValueError("base_rate must be positive")
        if spike_start_s < 0.0:
            raise ValueError("spike_start_s must be non-negative")
        if spike_duration_s <= 0.0:
            raise ValueError("spike_duration_s must be positive")
        if spike_multiplier <= 1.0:
            raise ValueError("spike_multiplier must exceed 1")
        self.base_rate = base_rate
        self.spike_start_s = spike_start_s
        self.spike_duration_s = spike_duration_s
        self.spike_multiplier = spike_multiplier

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        in_spike = (
            self.spike_start_s
            <= t
            < self.spike_start_s + self.spike_duration_s
        )
        return self.base_rate * (self.spike_multiplier if in_spike else 1.0)

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        max_rate = self.base_rate * self.spike_multiplier
        return _thinned_poisson_times(n_requests, rng, max_rate, self.rate_at)

    def __repr__(self) -> str:
        return (
            f"SpikeArrivals(base={self.base_rate:g}/s, "
            f"x{self.spike_multiplier:g} at "
            f"[{self.spike_start_s:g}, "
            f"{self.spike_start_s + self.spike_duration_s:g}]s)"
        )


class ThunderingHerdArrivals:
    """Hold arrivals through an outage window, release them as one surge.

    Wraps any base :class:`ArrivalProcess` and applies the
    :class:`~repro.service.simulation.faults.ThunderingHerd` transform:
    arrivals the base process generates inside ``[start_s, end_s)`` are
    *held* — clients stuck behind an outage, a dead cache, a paused
    mobile fleet — and released together when the window ends,
    compressed into ``[end_s, end_s + spread_s]`` in their original
    order.  Arrivals outside the window are untouched.

    The transform is purely positional: it draws nothing from the RNG,
    so the base process consumes exactly the same draws with and without
    the herd, and the wrapped workload stays seed-deterministic.

    Args:
        base: Arrival process generating the underlying workload.
        start_s: Virtual time the hold window opens.
        end_s: Virtual time held traffic is released.
        spread_s: Width of the release burst (``0`` stacks every held
            arrival at exactly ``end_s``).
    """

    def __init__(
        self,
        base: ArrivalProcess,
        *,
        start_s: float,
        end_s: float,
        spread_s: float = 0.05,
    ) -> None:
        if start_s < 0.0:
            raise ValueError("start_s must be non-negative")
        if end_s <= start_s:
            raise ValueError("end_s must lie after start_s")
        if spread_s < 0.0:
            raise ValueError("spread_s must be non-negative")
        self.base = base
        self.start_s = start_s
        self.end_s = end_s
        self.spread_s = spread_s

    def held_count(self, times_s: np.ndarray) -> int:
        """How many of ``times_s`` fall inside the hold window."""
        held = (times_s >= self.start_s) & (times_s < self.end_s)
        return int(np.count_nonzero(held))

    def apply(self, times_s: np.ndarray) -> np.ndarray:
        """Transform already-sampled arrival times (no RNG involved)."""
        base_times = np.asarray(times_s, dtype=float)
        held = (base_times >= self.start_s) & (base_times < self.end_s)
        if not held.any():
            return base_times
        out = base_times.copy()
        window = self.end_s - self.start_s
        # Map each held arrival's position inside the window onto the
        # release burst, preserving order: t -> end + (t-start)/window*spread.
        out[held] = self.end_s + (base_times[held] - self.start_s) * (
            self.spread_s / window
        )
        return np.sort(out)

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        return self.apply(self.base.times(n_requests, rng))

    def __repr__(self) -> str:
        return (
            f"ThunderingHerdArrivals({self.base!r}, "
            f"hold=[{self.start_s:g}, {self.end_s:g})s, "
            f"spread={self.spread_s:g}s)"
        )


class TraceArrivals:
    """Replay recorded arrival timestamps.

    Args:
        times_s: Absolute arrival timestamps in seconds; must be
            non-negative and non-decreasing.
    """

    def __init__(self, times_s: Sequence[float]) -> None:
        trace = np.asarray(times_s, dtype=float)
        if trace.size == 0:
            raise ValueError("trace must contain at least one arrival")
        if (trace < 0.0).any():
            raise ValueError("trace timestamps must be non-negative")
        if (np.diff(trace) < 0.0).any():
            raise ValueError("trace timestamps must be non-decreasing")
        self._trace = trace

    def __len__(self) -> int:
        return int(self._trace.size)

    def times(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        _require_positive_count(n_requests)
        if n_requests > self._trace.size:
            raise ValueError(
                f"trace holds {self._trace.size} arrivals but "
                f"{n_requests} were requested"
            )
        return self._trace[:n_requests].copy()

    def __repr__(self) -> str:
        return f"TraceArrivals(n={self._trace.size})"
