"""The discrete-event serving simulator.

:class:`ServingSimulator` layers a virtual-clock event loop over a live
:class:`~repro.service.cluster.ClusterDeployment`: requests arrive under an
offered-load process, a :class:`~repro.core.router.TierRouter` (or one
fixed configuration) decides which ensemble serves each of them, jobs join
per-node FIFO queues through the cluster's ``submit`` interface, nodes
execute them — solo or in sublinear batches — and an optional autoscaler
grows and shrinks the pools while traffic flows.  The output is a
:class:`~repro.service.simulation.report.LoadTestReport` with the tail
latencies and costs the replay benchmarks cannot see.

Ensemble semantics under the virtual clock mirror the replay policies in
:mod:`repro.core.policies`:

* ``single`` — one job; the response is ready when it finishes.
* ``seq`` — the fast job runs first; on low confidence an accurate job is
  enqueued *at the fast job's finish time* and the response waits for it.
* ``conc`` — fast and accurate jobs are enqueued at arrival; a confident
  fast result answers immediately (the accurate job still burns node time),
  otherwise the response waits for both.
* ``et`` — like ``conc``, but when the fast result is accepted the
  accurate job is cancelled: a still-queued job is removed outright (no
  cost), while a job that already started runs on, its billed node-seconds
  capped at the fast job's solo service time (the replay model's bound).

Degraded-mode scenarios inject a timed fault schedule
(:mod:`repro.service.simulation.faults`) on the same clock:

* a **node crash** evicts the node, migrates its queued work onto
  surviving nodes (same attempt — the job never started), aborts its
  running batch (those attempts failed; the machine time until the crash
  stays on the IaaS books) and optionally schedules a replacement node;
* a **straggler** degrades one node's effective speed for a window;
* a **transient-fault window** makes completions fail with a fixed
  probability, drawn from a dedicated fault RNG.

Failed attempts are re-driven under a
:class:`~repro.service.simulation.faults.RetryPolicy` (with backoff, onto
live nodes only); once a leg's attempts are exhausted the request fails
terminally — unless another leg can still answer: a confident fast result
makes an accurate-leg loss harmless, and under ``conc``/``et`` a live
accurate job answers for a dead fast leg (degraded fallback, billed
accurate-only).  When a whole pool is dead, its jobs park in the engine
until capacity returns (a recovery or an autoscaler scale-up); jobs still
parked when the event loop drains resolve with a confident fast answer
when one is in hand, and as failed requests otherwise.  A request that
fails is not billed.

Closed-loop runs attach a **control plane** (duck-typed; see
:class:`repro.service.control.plane.ControlPlane` — this module
deliberately imports nothing from that package): every finalized record
is published to the plane (and to any plain ``record_hooks``
callables), every arrival consults admission (requests may be *shed* —
resolved unserved, first-class in the report — or *force-degraded* to
the fast tier), and a periodic control tick evaluates SLOs and may
hot-swap the active configuration the adaptor re-fit.

The event loop is single-threaded and deterministic: same seed, same
arrival process, same fault schedule, same report — fault-free runs
consume exactly the random draws and fire exactly the events the PR 1
engine did, so existing behaviour is bit-identical, and with
``control=None`` no control event is ever scheduled and no draw is ever
taken (the PR 3/4 golden digests stand).  Pass ``check_invariants=True``
to feed an
:class:`~repro.service.simulation.invariants.InvariantChecker` ledger and
reconcile it at drain time.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.executor import (
    early_termination_cap,
    require_confidence_threshold,
    should_escalate,
)
from repro.core.router import TierRouter
from repro.service.cluster import ClusterDeployment
from repro.service.node import NodeCompletion, QueuedRequest, ServiceNode
from repro.service.request import Objective, ServiceRequest
from repro.service.simulation.arrivals import (
    ArrivalProcess,
    ThunderingHerdArrivals,
)
from repro.service.simulation.autoscaler import Autoscaler
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.columnar import (
    ColumnarFallback,
    columnar_ineligibility,
    run_columnar,
)
from repro.service.simulation.events import Event, EventLoop
from repro.service.simulation.faults import (
    CascadePolicy,
    ColdStartWave,
    FaultEvent,
    FaultLogEntry,
    GrayFailure,
    NodeCrash,
    NodeSlowdown,
    RetryPolicy,
    RetryStorm,
    ThunderingHerd,
    TransientFaults,
    affected_versions,
)
from repro.obs.log import get_rate_limited
from repro.service.simulation.invariants import InvariantChecker
from repro.service.simulation.report import LoadTestReport, RequestRecord

__all__ = ["ServingSimulator"]

#: Silent by default (see :mod:`repro.obs.log`); rate-limited so a
#: per-run fallback note can never flood a batch of simulations.
_log = get_rate_limited("service.simulation.engine")

#: Safety valve: no sane load test needs more events than this.
_MAX_EVENTS = 10_000_000

#: Environment override for the default execution engine (see the
#: ``engine`` constructor argument).  The test matrix uses it to run the
#: whole suite under either engine without threading a parameter through
#: every call site.
_ENGINE_ENV = "REPRO_SIM_ENGINE"

_ENGINES = ("columnar", "legacy")

#: Generated request ids are deterministic ("load_%06d" over the
#: submission counter), so a process-wide cache amortizes string
#: formatting across runs — the bulk path's second-largest fixed cost.
_LOAD_ID_CACHE: List[str] = []


def _load_ids(base: int, count: int) -> List[str]:
    """``["load_%06d" % i for i in range(base, base + count)]``, memoized."""
    end = base + count
    cache = _LOAD_ID_CACHE
    if end > len(cache):
        cache.extend("load_%06d" % i for i in range(len(cache), end))
    return cache[base:end]


class _InFlight:
    """Mutable state of one request between arrival and response."""

    __slots__ = (
        "request",
        "kind",
        "arrival",
        "fast_version",
        "accurate_version",
        "threshold",
        "fast_completion",
        "accurate_completion",
        "escalated",
        "fast_failed",
        "accurate_failed",
        "fast_node",
        "accurate_node",
        "accurate_enqueued",
        "accurate_cancelled",
        "attempts",
        "leg_open",
        "retry_pending",
        "retries",
        "retries_planned",
        "retry_denied",
        "degraded",
    )

    def __init__(
        self, request: ServiceRequest, configuration: EnsembleConfiguration
    ) -> None:
        self.request = request
        self.kind = configuration.kind
        self.arrival = 0.0
        policy = configuration.policy
        if self.kind == "single":
            self.fast_version = policy.versions[0]
            self.accurate_version = None
            self.threshold = 0.0
        else:
            self.fast_version = policy.fast_version
            self.accurate_version = policy.accurate_version
            # A two-version policy without a threshold is a configuration
            # error, not a hidden 0.5 default (PolicyConfigurationError).
            self.threshold = require_confidence_threshold(policy)
        self.fast_completion: Optional[NodeCompletion] = None
        self.accurate_completion: Optional[NodeCompletion] = None
        self.escalated: Optional[bool] = None
        #: True once the fast leg failed terminally but the accurate leg
        #: can still answer (conc/et degraded fallback).
        self.fast_failed = False
        #: True once the accurate leg failed terminally while the fast
        #: job was still in flight; the fast confidence gate decides the
        #: outcome when it lands.
        self.accurate_failed = False
        self.fast_node: Optional[ServiceNode] = None
        self.accurate_node: Optional[ServiceNode] = None
        self.accurate_enqueued = False
        self.accurate_cancelled = False
        #: Job attempts started so far, per version leg.
        self.attempts: Dict[str, int] = {}
        #: Whether the leg currently has an attempt in flight (enqueued,
        #: parked or running) that has not been closed yet.
        self.leg_open: Dict[str, bool] = {}
        #: Whether a retry for the leg is waiting out its backoff.  A leg
        #: in backoff has no open attempt but is still viable — it must
        #: not be mistaken for a dead leg, and early termination can
        #: cancel the pending retry outright.
        self.retry_pending: Dict[str, bool] = {}
        #: Attempts re-driven after a failure (for the request record).
        self.retries = 0
        #: Retries *scheduled* (a superset of fired ones: a backoff that
        #: gets cancelled is planned but never fires) — what the
        #: per-request ``retry_budget`` meters.
        self.retries_planned = 0
        #: True once a retry this request wanted was denied by a budget
        #: (per-request, in-flight cap, or run-wide).
        self.retry_denied = False
        #: True when admission control downgraded the request to the
        #: fast tier instead of the configuration routing planned.
        self.degraded = False

    def leg_viable(self, version: str) -> bool:
        """Whether the leg can still produce a result (open or retrying)."""
        return bool(
            self.leg_open.get(version, False)
            or self.retry_pending.get(version, False)
        )


class _RunningBatch:
    """One batch executing on a node, abortable by a crash."""

    __slots__ = ("node", "event", "items", "completions")

    def __init__(
        self,
        node: ServiceNode,
        event: Event,
        items: List[QueuedRequest],
        completions: List[NodeCompletion],
    ) -> None:
        self.node = node
        self.event = event
        self.items = items
        self.completions = completions


class ServingSimulator:
    """Event-driven load simulation over a cluster deployment.

    Exactly one of ``router`` / ``configuration`` selects how requests map
    to ensembles: a tier router serves each request according to its
    ``Tolerance`` / ``Objective`` annotation, while a fixed configuration
    models a conventional deployment (e.g. OSFA as a single-version
    configuration of the most accurate model).

    Args:
        cluster: The deployment whose queues and pools the simulation
            drives.  Its load-balancer policy decides per-job node choice;
            :class:`~repro.service.load_balancer.JoinShortestQueuePolicy`
            is the natural fit under load.
        router: Tier router from the offline rule generator.
        configuration: Fixed ensemble configuration (mutually exclusive
            with ``router``).
        batching: Node-level batching policy; default is unbatched.
        autoscaler: Optional pool autoscaler, evaluated on its configured
            cadence while traffic is in flight.
        faults: Fault schedule injected on the virtual clock; empty for
            a healthy run.  Timed events
            (:class:`~repro.service.simulation.faults.NodeCrash`,
            :class:`~repro.service.simulation.faults.NodeSlowdown`,
            :class:`~repro.service.simulation.faults.GrayFailure`,
            :class:`~repro.service.simulation.faults.TransientFaults`,
            :class:`~repro.service.simulation.faults.RetryStorm`) fire at
            their timestamps; run-long policies
            (:class:`~repro.service.simulation.faults.CascadePolicy`,
            :class:`~repro.service.simulation.faults.ColdStartWave`)
            react to crashes and capacity joins; and
            :class:`~repro.service.simulation.faults.ThunderingHerd`
            transforms workloads generated via :meth:`run`.
        retry: How failed job attempts are re-driven; the default retries
            nothing (one attempt per leg).
        check_invariants: When true, feed an
            :class:`~repro.service.simulation.invariants.InvariantChecker`
            and verify its ledger at drain time.  Pure bookkeeping — the
            simulated behaviour (and report digest) is unchanged.
        control: Optional control plane (duck-typed against
            :class:`~repro.service.control.plane.ControlPlane`):
            consulted per arrival (``admit``), fed per finalized record
            (``observe``), and ticked every ``tick_interval_s`` on the
            virtual clock (``on_tick`` — a returned configuration is
            hot-swapped in as the active fixed configuration).
        record_hooks: Plain ``callable(record, now)`` hooks invoked for
            every record the engine emits (telemetry publishing without
            any engine⇄control coupling).  The control plane's
            ``observe`` is appended automatically.
        trace: Optional trace recorder (duck-typed like ``control``; see
            :class:`repro.obs.record.SimTraceRecorder`).  The legacy
            loop drives its per-event hooks; a columnar drain hands it
            the finished report for post-hoc span reconstruction
            instead, so attaching one never forces the slow path and
            never changes a report digest.
        seed: Seed for arrival sampling and payload choice (transient
            fault draws use a generator derived from it, so healthy and
            faulty runs see identical arrivals).
        engine: Execution engine: ``"columnar"`` (default) defers
            submissions and drains them through the vectorized hot path
            in :mod:`repro.service.simulation.columnar` whenever the run
            is fault-free, open-loop and fixed-configuration over a
            replay cluster — falling back to the legacy event loop
            (bit-identically, see ``fallback_reason``) otherwise;
            ``"legacy"`` pins the original scalar event loop, the
            correctness oracle of the differential test harness.  When
            ``None``, the ``REPRO_SIM_ENGINE`` environment variable
            decides, defaulting to ``"columnar"``.
    """

    def __init__(
        self,
        cluster: ClusterDeployment,
        *,
        router: Optional[TierRouter] = None,
        configuration: Optional[EnsembleConfiguration] = None,
        batching: Optional[BatchingConfig] = None,
        autoscaler: Optional[Autoscaler] = None,
        faults: Sequence[FaultEvent] = (),
        retry: Optional[RetryPolicy] = None,
        check_invariants: bool = False,
        control=None,
        record_hooks: Sequence[Any] = (),
        trace=None,
        seed: int = 0,
        engine: Optional[str] = None,
    ) -> None:
        if engine is None:
            engine = os.environ.get(_ENGINE_ENV) or "columnar"
        if engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose one of {_ENGINES}"
            )
        #: The requested engine ("columnar" may still fall back per run).
        self.engine = engine
        #: Engine that actually drained the run ("columnar"/"legacy"),
        #: set by :meth:`drain`.
        self.engine_used: Optional[str] = None
        #: Why a columnar-requested run fell back to the legacy path.
        self.fallback_reason: Optional[str] = None
        #: Deferred (request, at_time) submissions in columnar mode.
        self._submissions: List[Tuple[ServiceRequest, float]] = []
        #: Bulk workload from :meth:`run` in columnar mode:
        #: ``(request_ids, payloads, tolerance, objective, at_times)``.
        #: Kept as columns — ServiceRequest objects are only materialized
        #: if the run falls back to the legacy engine.
        self._bulk: Optional[
            Tuple[List[str], List[Any], float, Objective, List[float]]
        ] = None
        if (router is None) == (configuration is None):
            raise ValueError("supply exactly one of router / configuration")
        self.cluster = cluster
        # The engine owns the virtual timeline: any busy_until left behind
        # by synchronous replay traffic belongs to a different clock and
        # would deadlock _maybe_start (no completion event exists to wake
        # the node).  Queued work from outside the engine is refused.
        pending = {v: d for v, d in cluster.queue_depths().items() if d}
        if pending:
            raise ValueError(
                f"cluster has queued work {pending}; drain() it before "
                "building a ServingSimulator"
            )
        for version in cluster.load_balancer.versions:
            for node in cluster.load_balancer.nodes_of(version):
                node.busy_until = 0.0
        # Seed the utilization baseline with whatever busy time the nodes
        # already accumulated, so the first autoscaler tick measures only
        # work done inside this simulation, not the cluster's history.
        self._last_busy = {
            version: sum(
                node.busy_seconds
                for node in cluster.load_balancer.nodes_of(version)
            )
            for version in cluster.load_balancer.versions
        }
        self._router = router
        self._configuration = configuration
        self._batching = batching or BatchingConfig()
        self._autoscaler = autoscaler
        self._rng = np.random.default_rng(seed)
        self._loop = EventLoop()
        self._inflight: Dict[str, _InFlight] = {}
        self._records: List[RequestRecord] = []
        self._flush_events: Dict[str, Event] = {}
        self._running: Dict[str, _RunningBatch] = {}
        self._parked: Dict[str, List[QueuedRequest]] = {}
        self._remaining = 0
        self._counter = 0
        self._tick_scheduled = False
        self._drained = False
        self._retry = retry or RetryPolicy()
        self._faults = tuple(faults)
        self._fault_log: List[FaultLogEntry] = []
        self._check = InvariantChecker() if check_invariants else None
        self._control = control
        hooks = tuple(record_hooks)
        if control is not None:
            hooks = hooks + (control.observe,)
        self._record_hooks = hooks
        # Trace recording is deliberately NOT a record hook: hooks force
        # the columnar engine onto its slow path, while a trace recorder
        # is reconstructed post-hoc from RecordColumns (see drain()).
        # Every call site guards on None, so the disabled cost is one
        # attribute test.
        if trace is not None and not hasattr(trace, "on_finalized"):
            from repro.obs.record import SimTraceRecorder

            trace = SimTraceRecorder(trace)
        self._trace = trace
        self._control_tick_scheduled = False
        known = set(cluster.load_balancer.versions)
        for fault in self._faults:
            unknown = set(affected_versions(fault)) - known
            if unknown:
                raise ValueError(
                    f"fault {fault!r} targets unknown version(s) "
                    f"{sorted(unknown)}; deployed versions are {sorted(known)}"
                )
        self._transient_windows = [
            fault for fault in self._faults
            if isinstance(fault, TransientFaults)
        ]
        self._retry_storms = [
            fault for fault in self._faults if isinstance(fault, RetryStorm)
        ]
        self._cascades = [
            fault for fault in self._faults if isinstance(fault, CascadePolicy)
        ]
        self._cold_waves = [
            fault for fault in self._faults if isinstance(fault, ColdStartWave)
        ]
        self._herd_faults = [
            fault for fault in self._faults
            if isinstance(fault, ThunderingHerd)
        ]
        # A dedicated generator keeps fault draws out of the arrival
        # stream: a fault-free run consumes exactly the PR 1 draws, and a
        # run without probabilistic faults creates no fault generator.
        self._fault_rng = (
            np.random.default_rng([seed, 0xFA117])
            if self._transient_windows or self._retry_storms or self._cascades
            else None
        )
        # Storm bad-bucket flags are precomputed from per-storm derived
        # generators, so completion interleaving can never change which
        # buckets are bad (and the shared fault RNG's draw sequence stays
        # a pure function of the completion order, as before).
        self._storm_buckets = [
            np.random.default_rng([seed, 0xB1A57, k]).uniform(
                size=storm.n_buckets
            )
            < storm.bad_fraction
            for k, storm in enumerate(self._retry_storms)
        ]
        #: Per-version virtual time until which a cascade window is open.
        self._cascade_until: Dict[str, float] = {}
        #: node_id -> confidence multiplier while gray or warming up.
        self._deflate: Dict[str, float] = {}
        self._retries_denied = 0
        self._total_retries_planned = 0
        self._inflight_retries = 0
        # Per-node telemetry for gray-failure detection is duck-typed like
        # the rest of the control protocol: planes without observe_node
        # (and plain record hooks) simply never see node latencies.
        self._observe_node = (
            getattr(control, "observe_node", None)
            if control is not None
            else None
        )
        self._schedule_faults()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest, *, at_time: float = 0.0) -> None:
        """Schedule one request's arrival at a virtual timestamp.

        Raises:
            ValueError: If the simulator has already been drained — a
                simulator is single-use (its clock, records and pool state
                belong to one load test); build a fresh one per test.
        """
        if self._drained:
            raise ValueError(
                "this ServingSimulator has already been drained; a simulator "
                "is single-use — build a new one for another load test"
            )
        self._remaining += 1
        if self.engine == "columnar":
            # Defer: the columnar drain consumes submissions directly; a
            # fallback replays them into the event loop at drain time, in
            # this same order, so they take exactly the sequence numbers
            # the legacy engine would have assigned.  The validation the
            # loop would have done at schedule time happens here.
            if at_time < self._loop.now:
                raise ValueError(
                    f"cannot schedule at t={at_time:.6f} "
                    f"before now={self._loop.now:.6f}"
                )
            self._submissions.append((request, at_time))
            return
        self._loop.schedule_at(
            at_time, lambda r=request: self._on_arrival(r), kind="arrival"
        )

    def run(
        self,
        arrivals: ArrivalProcess,
        n_requests: int,
        *,
        tolerance: float = 0.0,
        objective: Objective = Objective.RESPONSE_TIME,
        payload_ids: Optional[Sequence[Any]] = None,
    ) -> LoadTestReport:
        """Generate a workload, submit it, and drain it to a report.

        Args:
            arrivals: Arrival process generating the offered load.
            n_requests: Number of requests to simulate.
            tolerance: ``Tolerance`` annotation on every request.
            objective: ``Objective`` annotation on every request.
            payload_ids: Pool of payloads (measured request ids, for replay
                clusters) sampled uniformly per arrival; defaults to each
                request's own id.
        """
        times = arrivals.times(n_requests, self._rng)
        if self._herd_faults:
            # Thundering herds transform the generated workload *after*
            # sampling: the base process consumes exactly its usual draws,
            # then arrivals inside each hold window slide to the window's
            # end (see ThunderingHerdArrivals).  Requests submitted via
            # submit() bypass run() and are never held.
            times = np.asarray(times, dtype=float)
            for herd in self._herd_faults:
                modulator = ThunderingHerdArrivals(
                    arrivals,
                    start_s=herd.start_s,
                    end_s=herd.end_s,
                    spread_s=herd.spread_s,
                )
                held = modulator.held_count(times)
                times = modulator.apply(times)
                self._loop.schedule_at(
                    herd.end_s,
                    lambda h=herd, c=held: self._on_herd_release(h, c),
                    kind="fault-herd",
                )
        if payload_ids is not None:
            ids = list(payload_ids)
            if not ids:
                raise ValueError("payload_ids must be non-empty when given")
            picks = self._rng.integers(0, len(ids), size=n_requests)
        at_times = (
            times.tolist()
            if isinstance(times, np.ndarray)
            else [float(t) for t in times]
        )
        if self.engine == "columnar" and not self._drained and at_times:
            # Bulk columnar path: the workload stays as columns (ids,
            # payloads, times) and never materializes a ServiceRequest —
            # object construction dominated the submit phase.  Ids are
            # formatted exactly as the per-request path would, and a
            # legacy fallback rebuilds field-identical requests at drain.
            base = self._counter
            count = len(at_times)
            request_ids = _load_ids(base, count)
            self._counter = base + count
            if payload_ids is not None:
                payloads: List[Any] = [
                    ids[p] for p in picks[:count].tolist()
                ]
            else:
                payloads = request_ids
            if min(at_times) < self._loop.now:
                # Mirror submit(): fail on the first offending time, with
                # the earlier submissions already counted.
                for index, at_time in enumerate(at_times):
                    if at_time < self._loop.now:
                        self._counter = base + index + 1
                        self._remaining += index + 1
                        raise ValueError(
                            f"cannot schedule at t={at_time:.6f} "
                            f"before now={self._loop.now:.6f}"
                        )
            self._remaining += count
            self._bulk = (request_ids, payloads, tolerance, objective, at_times)
        else:
            for i, at_time in enumerate(at_times):
                request_id = f"load_{self._counter:06d}"
                self._counter += 1
                payload = (
                    ids[picks[i]] if payload_ids is not None else request_id
                )
                self.submit(
                    ServiceRequest(
                        request_id=request_id,
                        payload=payload,
                        tolerance=tolerance,
                        objective=objective,
                    ),
                    at_time=float(at_time),
                )
        report = self.drain()
        span = float(times[-1] - times[0])
        report.offered_rate = n_requests / span if span > 0.0 else None
        return report

    def _submission_columns(
        self,
    ) -> Tuple[List[str], List[Any], List[float], List[float]]:
        """Deferred submissions as ``(ids, payloads, tolerances, times)``
        columns in submission order — explicit :meth:`submit` calls first,
        then the bulk workload from :meth:`run`, exactly the order the
        legacy engine would have scheduled their arrival events in."""
        ids = [r.request_id for r, _ in self._submissions]
        payloads: List[Any] = [r.payload for r, _ in self._submissions]
        tolerances = [r.tolerance for r, _ in self._submissions]
        times = [t for _, t in self._submissions]
        if self._bulk is not None:
            bulk_ids, bulk_payloads, tolerance, _objective, bulk_times = (
                self._bulk
            )
            if ids:
                ids = ids + bulk_ids
                payloads = payloads + bulk_payloads
                tolerances = tolerances + [tolerance] * len(bulk_ids)
                times = times + bulk_times
            else:
                ids, payloads, times = bulk_ids, bulk_payloads, bulk_times
                tolerances = [tolerance] * len(bulk_ids)
        return ids, payloads, tolerances, times

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def drain(self) -> LoadTestReport:
        """Run the event loop until every submitted request has resolved.

        A request resolves by completing or by failing terminally; jobs
        still parked behind dead pools when the loop empties resolve as
        failed requests (capacity never came back for them).
        """
        if self.engine == "columnar":
            reason = columnar_ineligibility(self)
            if reason is None:
                try:
                    report = run_columnar(self, self._submission_columns())
                except ColumnarFallback as exc:
                    # Data-level ineligibility (duplicate ids, payloads
                    # outside the measurement table) surfaces during the
                    # columnar precomputation, before any state changes.
                    reason = str(exc)
                else:
                    self.engine_used = "columnar"
                    report.engine_used = "columnar"
                    self._drained = True
                    self._remaining = 0
                    self._submissions = []
                    self._bulk = None
                    if self._trace is not None:
                        self._trace.on_columnar_report(report)
                        self._trace.on_run_complete(
                            report.fault_log, report.control_log
                        )
                    return report
            # Fall back to the legacy loop: replay the deferred
            # submissions in submission order, so their events hold the
            # same sequence numbers (hence the same tie-breaks) as if
            # they had been scheduled at submit time.  Bulk workload rows
            # materialize the ServiceRequest objects run() skipped.
            self.fallback_reason = reason
            self.engine_used = "legacy"
            _log.info("columnar drain fell back to legacy loop: %s", reason)
            for request, at_time in self._submissions:
                self._loop.schedule_at(
                    at_time,
                    lambda r=request: self._on_arrival(r),
                    kind="arrival",
                )
            self._submissions = []
            if self._bulk is not None:
                bulk_ids, bulk_payloads, tolerance, objective, bulk_times = (
                    self._bulk
                )
                for request_id, payload, at_time in zip(
                    bulk_ids, bulk_payloads, bulk_times
                ):
                    request = ServiceRequest(
                        request_id=request_id,
                        payload=payload,
                        tolerance=tolerance,
                        objective=objective,
                    )
                    self._loop.schedule_at(
                        at_time,
                        lambda r=request: self._on_arrival(r),
                        kind="arrival",
                    )
                self._bulk = None
        else:
            self.engine_used = "legacy"
        if self._autoscaler is not None and not self._tick_scheduled:
            self._tick_scheduled = True
            self._loop.schedule(
                self._autoscaler.config.evaluation_interval_s,
                self._on_autoscale_tick,
                kind="autoscale",
            )
        if self._control is not None and not self._control_tick_scheduled:
            self._control_tick_scheduled = True
            self._loop.schedule(
                self._control.tick_interval_s,
                self._on_control_tick,
                kind="control",
            )
        self._loop.run(max_events=_MAX_EVENTS)
        self._drained = True
        if self._remaining and self._inflight and self._faults:
            # At loop-empty every queued job has executed and every retry
            # has fired, so what remains is parked behind pools whose
            # capacity never recovered.  A request that already holds a
            # confident fast answer responds with it (the parked accurate
            # leg was only ever a cost commitment); everything else
            # resolves as failed.
            for state in list(self._inflight.values()):
                if state.escalated is False and state.fast_completion is not None:
                    self._abandon_outstanding(
                        state, exclude_version=None, outcome="unserved"
                    )
                    fast = state.fast_completion
                    self._finalize(
                        state,
                        end=fast.finished_at,
                        node_seconds={
                            state.fast_version: fast.amortized_seconds
                        },
                    )
                else:
                    self._finalize_failed(
                        state, end=self._loop.now, outcome="unserved"
                    )
        if self._remaining:
            raise RuntimeError(
                f"event loop drained with {self._remaining} requests unresolved"
            )
        report = LoadTestReport(
            records=list(self._records),
            scaling_events=list(self._autoscaler.events)
            if self._autoscaler is not None
            else [],
            final_pool_sizes=self.cluster.pool_sizes(),
            fault_log=list(self._fault_log),
            control_log=list(self._control.log)
            if self._control is not None
            else [],
        )
        report.engine_used = self.engine_used
        report.fallback_reason = self.fallback_reason
        if self._trace is not None:
            self._trace.on_run_complete(report.fault_log, report.control_log)
        if self._check is not None:
            self._check.verify(report, self.cluster, self._retry)
        return report

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._loop.now

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _plan(self, request: ServiceRequest) -> EnsembleConfiguration:
        if self._configuration is not None:
            return self._configuration
        return self._router.route_request(request)

    def _on_arrival(self, request: ServiceRequest) -> None:
        if self._trace is not None:
            self._trace.on_arrival(request.request_id, self._loop.now)
        configuration = self._plan(request)
        degraded = False
        if self._control is not None:
            decision = self._control.admit(
                request, self._loop.now, planned=configuration
            )
            action = decision.action.value
            if action == "shed":
                if request.request_id in self._inflight:
                    raise ValueError(
                        f"duplicate request id {request.request_id!r}"
                    )
                if self._trace is not None:
                    self._trace.on_admission(
                        request.request_id,
                        "shed",
                        getattr(decision, "reason", "") or "",
                        self._loop.now,
                    )
                self._shed_request(request)
                return
            if action == "degrade" and decision.configuration is not None:
                configuration = decision.configuration
                degraded = True
                if self._trace is not None:
                    self._trace.on_admission(
                        request.request_id,
                        "degrade",
                        configuration.config_id,
                        self._loop.now,
                    )
        state = _InFlight(request, configuration)
        state.degraded = degraded
        state.arrival = self._loop.now
        if request.request_id in self._inflight:
            raise ValueError(f"duplicate request id {request.request_id!r}")
        self._inflight[request.request_id] = state
        if self._check is not None:
            self._check.on_arrival(request.request_id, self._loop.now)
        state.fast_node = self._enqueue_attempt(state, state.fast_version)
        if state.kind in ("conc", "et"):
            state.accurate_node = self._enqueue_attempt(
                state, state.accurate_version
            )
            state.accurate_enqueued = True

    def _shed_request(self, request: ServiceRequest) -> None:
        """Resolve one arrival unserved: admission control dropped it."""
        now = self._loop.now
        if self._check is not None:
            self._check.on_arrival(request.request_id, now)
            self._check.on_shed(request.request_id, now)
        record = RequestRecord(
            request_id=request.request_id,
            payload=request.payload,
            tier=request.tolerance,
            arrival_s=now,
            finished_s=now,
            response_time_s=0.0,
            queue_wait_s=0.0,
            versions_used=(),
            escalated=False,
            invocation_cost=0.0,
            node_seconds={},
            failed=False,
            retries=0,
            shed=True,
        )
        self._records.append(record)
        self._remaining -= 1
        self._emit_record(record)

    def _emit_record(self, record: RequestRecord) -> None:
        """Publish one emitted record to the registered event hooks."""
        now = self._loop.now
        if self._trace is not None:
            # Every terminal outcome funnels through here (completed,
            # failed, shed, parked resolution), so this is the single
            # point where a request's trace is built and collected.
            self._trace.on_finalized(record, now)
        for hook in self._record_hooks:
            hook(record, now)

    def _enqueue_attempt(
        self, state: _InFlight, version: str
    ) -> Optional[ServiceNode]:
        """Start one job attempt: enqueue on a live node, or park.

        Returns the node chosen, or ``None`` when the version's pool has
        no live node and the job parked in the engine until capacity
        returns.
        """
        now = self._loop.now
        attempt = state.attempts.get(version, 0) + 1
        state.attempts[version] = attempt
        state.leg_open[version] = True
        if self._check is not None:
            self._check.on_attempt_started(
                state.request.request_id, version, attempt, now
            )
        parked = self.cluster.load_balancer.live_pool_size(version) == 0
        if self._trace is not None:
            self._trace.on_attempt(
                state.request.request_id,
                version,
                "accurate" if version == state.accurate_version else "fast",
                attempt,
                now,
                parked=parked,
            )
        if parked:
            self._parked.setdefault(version, []).append(
                QueuedRequest(
                    state.request.request_id,
                    state.request.payload,
                    enqueued_at=now,
                )
            )
            return None
        node = self.cluster.submit(version, state.request, now=now)
        self._maybe_start(node)
        return node

    def _maybe_start(self, node: ServiceNode) -> None:
        """Start a batch on an idle node, or arm its flush timer."""
        now = self._loop.now
        if node.queue_depth == 0 or node.busy_until > now:
            # Busy nodes restart from their batch-completion event.
            return
        cfg = self._batching
        head_wait = now - (node.oldest_enqueued_at or now)
        if (
            node.queue_depth >= cfg.max_batch_size
            or cfg.max_wait_s <= 0.0
            or head_wait >= cfg.max_wait_s - 1e-12
        ):
            self._start_batch(node)
        elif node.node_id not in self._flush_events:
            deadline = node.oldest_enqueued_at + cfg.max_wait_s
            self._flush_events[node.node_id] = self._loop.schedule_at(
                deadline, lambda n=node: self._on_flush(n), kind="flush"
            )

    def _on_flush(self, node: ServiceNode) -> None:
        self._flush_events.pop(node.node_id, None)
        if node.queue_depth and node.busy_until <= self._loop.now:
            self._start_batch(node)

    def _start_batch(self, node: ServiceNode) -> None:
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        batch = node.pop_batch(self._batching.max_batch_size)
        completions = node.execute_batch(
            batch, now=self._loop.now, batching=self._batching
        )
        event = self._loop.schedule_at(
            completions[0].finished_at,
            lambda n=node, c=completions: self._on_batch_done(n, c),
            kind="batch-done",
        )
        self._running[node.node_id] = _RunningBatch(
            node, event, batch, completions
        )

    def _on_batch_done(
        self, node: ServiceNode, completions: List[NodeCompletion]
    ) -> None:
        self._running.pop(node.node_id, None)
        factor = self._deflate.get(node.node_id)
        if factor is not None and factor < 1.0:
            # Gray / warming nodes silently lose answer quality: every
            # confidence they report is deflated, which shifts the tier
            # escalation gate — the "failure" shows up as extra
            # escalations and cost, never as an error.
            completions = [
                replace(
                    completion,
                    result=replace(
                        completion.result,
                        confidence=completion.result.confidence * factor,
                    ),
                )
                for completion in completions
            ]
            if self._trace is not None:
                for completion in completions:
                    self._trace.on_deflated(
                        completion.result.request_id,
                        node.node_id,
                        factor,
                        self._loop.now,
                    )
        if self._observe_node is not None:
            now = self._loop.now
            for completion in completions:
                self._observe_node(
                    node.node_id,
                    completion.result.version,
                    completion.service_time_s,
                    now,
                )
        for completion in completions:
            self._on_job_done(completion)
        self._maybe_start(node)

    def _on_job_done(self, completion: NodeCompletion) -> None:
        request_id = completion.result.request_id
        version = completion.result.version
        state = self._inflight.get(request_id)
        if state is None:
            # The request already resolved (an early-terminated accurate
            # job running on, or cleanup after a terminal failure).
            if self._check is not None:
                self._check.on_orphan_finished(
                    request_id, version, completion.finished_at
                )
            return
        eaten = self._fault_eating_completion(version, completion.finished_at)
        if eaten is not None:
            self._attempt_failed(
                state, version, now=self._loop.now, reason=eaten
            )
            return
        state.leg_open[version] = False
        if self._check is not None:
            self._check.on_attempt_finished(
                request_id,
                version,
                state.attempts.get(version, 0),
                completion.finished_at,
                "ok",
                seconds=completion.amortized_seconds,
            )
        if self._trace is not None:
            node = (
                state.accurate_node
                if version == state.accurate_version
                else state.fast_node
            )
            self._trace.on_attempt_done(
                request_id,
                version,
                completion,
                node.node_id if node is not None else None,
            )
        if (
            state.accurate_version is not None
            and version == state.accurate_version
        ):
            state.accurate_completion = completion
        else:
            state.fast_completion = completion
        self._advance(state)

    # ------------------------------------------------------------------
    # fault schedule
    # ------------------------------------------------------------------
    def _schedule_faults(self) -> None:
        storm_index = 0
        for fault in self._faults:
            if isinstance(fault, NodeCrash):
                self._loop.schedule_at(
                    fault.at_s,
                    lambda f=fault: self._on_node_crash(f),
                    kind="fault-crash",
                )
            elif isinstance(fault, NodeSlowdown):
                self._loop.schedule_at(
                    fault.at_s,
                    lambda f=fault: self._on_slowdown(f),
                    kind="fault-slowdown",
                )
            elif isinstance(fault, GrayFailure):
                self._loop.schedule_at(
                    fault.at_s,
                    lambda f=fault: self._on_gray(f),
                    kind="fault-gray",
                )
            elif isinstance(fault, TransientFaults):
                self._loop.schedule_at(
                    fault.start_s,
                    lambda f=fault: self._on_transient_window(f),
                    kind="fault-window",
                )
            elif isinstance(fault, RetryStorm):
                self._loop.schedule_at(
                    fault.start_s,
                    lambda f=fault, k=storm_index: self._on_storm_window(f, k),
                    kind="fault-window",
                )
                storm_index += 1
            # CascadePolicy and ColdStartWave are run-long policies (they
            # react to crashes / capacity joins, not to a timestamp) and
            # ThunderingHerd acts on the arrival side in run(); none of
            # them schedules an onset event.

    def _on_transient_window(self, fault: TransientFaults) -> None:
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "transient-window",
                ",".join(fault.versions) if fault.versions else "*",
                None,
                f"p={fault.failure_probability:g} until t={fault.end_s:g}",
            )
        )

    def _on_storm_window(self, fault: RetryStorm, index: int) -> None:
        n_bad = int(np.count_nonzero(self._storm_buckets[index]))
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "storm-window",
                ",".join(fault.versions) if fault.versions else "*",
                None,
                f"p={fault.failure_probability:g} in {n_bad}/"
                f"{fault.n_buckets} bad bucket(s) until t={fault.end_s:g}",
            )
        )

    def _on_herd_release(self, fault: ThunderingHerd, held: int) -> None:
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "herd",
                "*",
                None,
                f"released {held} held arrival(s) over {fault.spread_s:g}s",
            )
        )

    def _cascade_policy_for(self, version: str) -> Optional[CascadePolicy]:
        for policy in self._cascades:
            if policy.version is None or policy.version == version:
                return policy
        return None

    def _cold_wave_for(self, version: str) -> Optional[ColdStartWave]:
        for wave in self._cold_waves:
            if wave.covers(version):
                return wave
        return None

    def _pool_load(self, version: str) -> float:
        """Mean queued jobs per live node (parked jobs count as queued)."""
        pool = self.cluster.load_balancer.nodes_of(version)
        depth = sum(node.queue_depth for node in pool) + len(
            self._parked.get(version, ())
        )
        return depth / max(1, len(pool))

    def _fault_eating_completion(
        self, version: str, t: float
    ) -> Optional[str]:
        """Failure outcome an active fault assigns this completion, if any.

        Mechanisms are consulted in a fixed order — transient windows,
        retry storms, cascade windows — and within each class the first
        matching fault draws and decides, so the shared fault RNG's draw
        sequence is a pure function of the completion order.
        """
        for window in self._transient_windows:
            if window.affects(version, t):
                if self._fault_rng.uniform() < window.failure_probability:
                    return "transient"
                break
        for index, storm in enumerate(self._retry_storms):
            if storm.affects(version, t):
                if self._storm_buckets[index][storm.bucket_of(t)] and (
                    self._fault_rng.uniform() < storm.failure_probability
                ):
                    return "transient"
                break
        until = self._cascade_until.get(version)
        if until is not None and t < until:
            policy = self._cascade_policy_for(version)
            probability = policy.probability(self._pool_load(version))
            if self._fault_rng.uniform() < probability:
                return "cascade"
        return None

    def _on_node_crash(self, fault: NodeCrash) -> None:
        now = self._loop.now
        balancer = self.cluster.load_balancer
        pool = balancer.nodes_of(fault.version)
        if fault.node_index >= len(pool):
            self._fault_log.append(
                FaultLogEntry(
                    now,
                    "skipped",
                    fault.version,
                    None,
                    f"crash index {fault.node_index} out of range "
                    f"(pool size {len(pool)})",
                )
            )
            return
        node = pool[fault.node_index]
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        running = self._running.pop(node.node_id, None)
        aborted: List[QueuedRequest] = []
        if running is not None:
            running.event.cancel()
            aborted = running.items
            node.kill(now=now, aborted_requests=len(aborted))
        queued = self.cluster.kill_node(fault.version, node, now=now)
        # Reset the utilization baseline to the surviving membership's
        # current busy sum.  Subtracting the victim's busy_seconds (the
        # scale-down bookkeeping) would be wrong here: kill() refunded the
        # unelapsed share of a pre-charged batch, but a tick between batch
        # start and crash already counted the full wall, so the
        # subtraction would leave phantom seconds in the baseline and the
        # next tick would read a degraded pool as idle.  The reset means
        # the next tick measures exactly the work charged since the crash.
        self._last_busy[fault.version] = sum(
            survivor.busy_seconds
            for survivor in balancer.nodes_of(fault.version)
        )
        self._fault_log.append(
            FaultLogEntry(
                now,
                "crash",
                fault.version,
                node.node_id,
                f"pool index {fault.node_index}: {len(aborted)} running "
                f"attempt(s) aborted, {len(queued)} queued migrated",
            )
        )
        policy = self._cascade_policy_for(fault.version)
        if policy is not None:
            # The death stresses the survivors: open (or extend) the
            # pool's cascade window.  Completions inside it fail with a
            # load-conditional probability (_fault_eating_completion).
            until = max(
                self._cascade_until.get(fault.version, 0.0),
                now + policy.window_s,
            )
            self._cascade_until[fault.version] = until
            self._fault_log.append(
                FaultLogEntry(
                    now,
                    "cascade",
                    fault.version,
                    None,
                    f"crash opened cascade window until t={until:g} "
                    f"(base p={policy.base_probability:g}, "
                    f"+{policy.load_factor:g}/queued-per-node, "
                    f"cap {policy.max_probability:g})",
                )
            )
        # Queued work never started: it migrates, same attempt.
        for item in queued:
            self._migrate_item(fault.version, item)
        # Running work died mid-execution: those attempts failed.
        for item in aborted:
            state = self._inflight.get(item.request_id)
            if state is None:
                continue  # orphan job (already accounted as detached)
            self._attempt_failed(
                state, fault.version, now=now, reason="crash"
            )
        if fault.recover_at_s is not None:
            self._loop.schedule_at(
                fault.recover_at_s,
                lambda f=fault: self._on_node_recover(f),
                kind="fault-recover",
            )

    def _on_node_recover(self, fault: NodeCrash) -> None:
        added = self.cluster.add_nodes(fault.version, 1)
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "recover",
                fault.version,
                added[0].node_id,
                "replacement node joined the pool",
            )
        )
        # Cold-start degradation applies before parked work lands on the
        # replacement, so its first batches run at warmup speed.
        self._maybe_cold_start(fault.version, added)
        self._on_capacity_added(fault.version)

    def _on_slowdown(self, fault: NodeSlowdown) -> None:
        now = self._loop.now
        pool = self.cluster.load_balancer.nodes_of(fault.version)
        if fault.node_index >= len(pool):
            self._fault_log.append(
                FaultLogEntry(
                    now,
                    "skipped",
                    fault.version,
                    None,
                    f"slowdown index {fault.node_index} out of range "
                    f"(pool size {len(pool)})",
                )
            )
            return
        node = pool[fault.node_index]
        node.set_speed_scale(fault.speed_factor)
        self._fault_log.append(
            FaultLogEntry(
                now,
                "slowdown",
                fault.version,
                node.node_id,
                f"pool index {fault.node_index}: speed x{fault.speed_factor:g}",
            )
        )
        if fault.until_s is not None:
            self._loop.schedule_at(
                fault.until_s,
                lambda f=fault, n=node: self._on_speed_restore(f, n),
                kind="fault-restore",
            )

    def _on_speed_restore(self, fault: NodeSlowdown, node: ServiceNode) -> None:
        if not node.alive:
            return  # the straggler crashed before its recovery
        node.set_speed_scale(1.0)
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "restore",
                fault.version,
                node.node_id,
                "speed restored to x1",
            )
        )

    def _on_gray(self, fault: GrayFailure) -> None:
        now = self._loop.now
        pool = self.cluster.load_balancer.nodes_of(fault.version)
        if fault.node_index >= len(pool):
            self._fault_log.append(
                FaultLogEntry(
                    now,
                    "skipped",
                    fault.version,
                    None,
                    f"gray index {fault.node_index} out of range "
                    f"(pool size {len(pool)})",
                )
            )
            return
        node = pool[fault.node_index]
        node.set_speed_scale(fault.speed_factor)
        self._deflate[node.node_id] = fault.confidence_factor
        self._fault_log.append(
            FaultLogEntry(
                now,
                "gray",
                fault.version,
                node.node_id,
                f"pool index {fault.node_index}: speed "
                f"x{fault.speed_factor:g}, confidence "
                f"x{fault.confidence_factor:g}, still passing health checks",
            )
        )
        if fault.until_s is not None:
            self._loop.schedule_at(
                fault.until_s,
                lambda f=fault, n=node: self._on_gray_restore(f, n),
                kind="fault-restore",
            )

    def _on_gray_restore(self, fault: GrayFailure, node: ServiceNode) -> None:
        self._deflate.pop(node.node_id, None)
        if not node.alive:
            return  # the gray node crashed before recovering
        node.set_speed_scale(1.0)
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "gray-restore",
                fault.version,
                node.node_id,
                "speed and confidence restored to x1",
            )
        )

    def _maybe_cold_start(
        self, version: str, nodes: Sequence[ServiceNode]
    ) -> None:
        """Degrade nodes that just joined a pool covered by a cold wave."""
        wave = self._cold_wave_for(version)
        if wave is None or not nodes:
            return
        now = self._loop.now
        for node in nodes:
            node.set_speed_scale(wave.speed_factor)
            if wave.confidence_factor < 1.0:
                self._deflate[node.node_id] = wave.confidence_factor
            self._fault_log.append(
                FaultLogEntry(
                    now,
                    "cold-start",
                    version,
                    node.node_id,
                    f"warming for {wave.warmup_s:g}s: speed "
                    f"x{wave.speed_factor:g}, confidence "
                    f"x{wave.confidence_factor:g}",
                )
            )
            self._loop.schedule_at(
                now + wave.warmup_s,
                lambda v=version, n=node: self._on_warmed(v, n),
                kind="fault-warmup",
            )

    def _on_warmed(self, version: str, node: ServiceNode) -> None:
        self._deflate.pop(node.node_id, None)
        if not node.alive:
            return  # the cold node died before finishing warmup
        node.set_speed_scale(1.0)
        self._fault_log.append(
            FaultLogEntry(
                self._loop.now,
                "warmed",
                version,
                node.node_id,
                "warmup complete: speed and confidence restored to x1",
            )
        )

    def _migrate_item(self, version: str, item: QueuedRequest) -> None:
        """Re-place a crashed node's queued item, preserving its attempt."""
        state = self._inflight.get(item.request_id)
        if state is None:
            return  # the request resolved; drop the stale job
        balancer = self.cluster.load_balancer
        if balancer.live_pool_size(version) == 0:
            self._parked.setdefault(version, []).append(item)
            self._note_leg_node(state, version, None)
            if self._trace is not None:
                self._trace.on_migrated(
                    item.request_id, version, self._loop.now, parked=True
                )
            return
        node = balancer.select_node(version)
        node.requeue(item)
        self._note_leg_node(state, version, node)
        if self._trace is not None:
            self._trace.on_migrated(
                item.request_id, version, self._loop.now, parked=False
            )
        # The migrated item may be older than the head that armed the
        # node's flush deadline; re-arm from the current queue state.
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        self._maybe_start(node)

    def _note_leg_node(
        self, state: _InFlight, version: str, node: Optional[ServiceNode]
    ) -> None:
        if version == state.accurate_version:
            state.accurate_node = node
        else:
            state.fast_node = node

    def _on_capacity_added(self, version: str) -> None:
        """Flush jobs parked behind a dead pool onto the new capacity."""
        parked = self._parked.pop(version, None)
        if not parked:
            return
        balancer = self.cluster.load_balancer
        touched: Dict[str, ServiceNode] = {}
        for item in parked:
            state = self._inflight.get(item.request_id)
            if state is None:
                continue
            node = balancer.select_node(version)
            node.requeue(item)
            self._note_leg_node(state, version, node)
            touched[node.node_id] = node
        for node in touched.values():
            pending = self._flush_events.pop(node.node_id, None)
            if pending is not None:
                pending.cancel()
            self._maybe_start(node)

    # ------------------------------------------------------------------
    # retries and terminal failure
    # ------------------------------------------------------------------
    def _attempt_failed(
        self, state: _InFlight, version: str, *, now: float, reason: str
    ) -> None:
        request_id = state.request.request_id
        attempt = state.attempts.get(version, 0)
        state.leg_open[version] = False
        if self._check is not None:
            self._check.on_attempt_finished(
                request_id, version, attempt, now, reason
            )
        if self._trace is not None:
            self._trace.on_attempt_failed(request_id, version, now, reason)
        if attempt < self._retry.max_attempts:
            if self._retry_budget_allows(state):
                state.retry_pending[version] = True
                state.retries_planned += 1
                self._total_retries_planned += 1
                self._inflight_retries += 1
                delay = self._retry.delay_before_retry(attempt)
                if self._trace is not None:
                    self._trace.on_retry_wait(
                        request_id, version, attempt, now, delay
                    )
                self._loop.schedule(
                    delay,
                    lambda r=request_id, v=version: self._on_retry(r, v),
                    kind="retry",
                )
                return
            # A budget denied the retry the policy would have scheduled:
            # record the denial and proceed exactly as if the leg's
            # attempts were exhausted (the degraded fallbacks below still
            # apply — a denied accurate retry is harmless when a confident
            # fast answer is in hand).
            state.retry_denied = True
            self._retries_denied += 1
            if self._check is not None:
                self._check.on_retry_denied(request_id, version, now)
            if self._trace is not None:
                self._trace.on_retry_denied(request_id, version, now)
        # Attempts exhausted.  A confident fast answer makes the loss of
        # the accurate leg harmless (conc/et bill the fast result anyway),
        # and symmetrically a lost fast leg is survivable while a
        # concurrent accurate job can still deliver the answer; only when
        # no leg can respond does the request fail.
        if (
            version == state.accurate_version
            and state.fast_completion is not None
            and state.escalated is False
        ):
            fast = state.fast_completion
            self._finalize(
                state,
                end=fast.finished_at,
                node_seconds={state.fast_version: fast.amortized_seconds},
            )
            return
        if (
            version == state.accurate_version
            and state.kind in ("conc", "et")
            and state.fast_completion is None
            and state.leg_viable(state.fast_version)
        ):
            # The fast job is still in flight; its confidence gate decides
            # the outcome once it lands (a confident fast answer makes the
            # accurate loss harmless, an escalation fails).
            state.accurate_failed = True
            return
        if (
            version == state.fast_version
            and state.kind in ("conc", "et")
            and state.accurate_version is not None
            and not state.accurate_cancelled
            and (
                state.accurate_completion is not None
                or state.leg_viable(state.accurate_version)
            )
        ):
            state.fast_failed = True
            accurate = state.accurate_completion
            if accurate is not None:
                # The accurate result was already in hand, waiting for the
                # fast confidence gate; respond with it at the moment the
                # fast leg is known dead.
                self._finalize_accurate_only(state, end=now)
            return
        self._finalize_failed(state, end=now, exclude_version=version)

    def _retry_budget_allows(self, state: _InFlight) -> bool:
        """Whether the retry budgets permit scheduling one more retry."""
        policy = self._retry
        if (
            policy.retry_budget is not None
            and state.retries_planned >= policy.retry_budget
        ):
            return False
        if (
            policy.max_total_retries is not None
            and self._total_retries_planned >= policy.max_total_retries
        ):
            return False
        if (
            policy.max_inflight_retries is not None
            and self._inflight_retries >= policy.max_inflight_retries
        ):
            return False
        return True

    def _on_retry(self, request_id: str, version: str) -> None:
        # The backoff is over: whatever happens next, this retry no longer
        # occupies an in-flight slot (cancelled retries release theirs
        # here too — their schedule incremented the counter exactly once).
        self._inflight_retries -= 1
        state = self._inflight.get(request_id)
        if state is None:
            return  # the request resolved while the backoff ran
        if not state.retry_pending.get(version, False):
            return  # the retry was cancelled (early termination)
        state.retry_pending[version] = False
        # Counted when the attempt actually starts, so a backoff that
        # never fires (request resolved first) is not reported as a retry.
        state.retries += 1
        node = self._enqueue_attempt(state, version)
        self._note_leg_node(state, version, node)

    def _finalize_failed(
        self,
        state: _InFlight,
        *,
        end: float,
        exclude_version: Optional[str] = None,
        outcome: str = "cancelled",
    ) -> None:
        """Resolve a request as terminally failed, cleaning up its legs."""
        self._abandon_outstanding(
            state, exclude_version=exclude_version, outcome=outcome
        )
        fast = state.fast_completion
        record = RequestRecord(
            request_id=state.request.request_id,
            payload=state.request.payload,
            tier=state.request.tolerance,
            arrival_s=state.arrival,
            finished_s=end,
            response_time_s=end - state.arrival,
            queue_wait_s=(
                fast.started_at - state.arrival if fast is not None else 0.0
            ),
            versions_used=(),
            escalated=bool(state.escalated),
            invocation_cost=0.0,
            node_seconds={},
            failed=True,
            retries=state.retries,
            degraded=state.degraded,
            retry_denied=state.retry_denied,
        )
        self._records.append(record)
        if self._check is not None:
            self._check.on_finalized(
                state.request.request_id, self._loop.now, failed=True
            )
        del self._inflight[state.request.request_id]
        self._remaining -= 1
        self._emit_record(record)

    def _abandon_outstanding(
        self,
        state: _InFlight,
        *,
        exclude_version: Optional[str],
        outcome: str,
    ) -> None:
        """Close every leg of a failing request that is still in flight.

        Queued jobs are cancelled off their node, parked jobs are dropped
        from the engine's holding pen, and running jobs are detached (the
        batch finishes; the orphan completion is discarded).
        """
        request_id = state.request.request_id
        legs = (
            (state.fast_version, state.fast_node),
            (state.accurate_version, state.accurate_node),
        )
        for version, node in legs:
            if version is None or version == exclude_version:
                continue
            if not state.leg_open.get(version, False):
                continue  # leg never started, or its attempt already closed
            state.leg_open[version] = False
            if (
                node is not None
                and node.alive
                and self._cancel_queued_job(node, request_id)
            ):
                if self._check is not None:
                    self._check.on_attempt_finished(
                        request_id,
                        version,
                        state.attempts[version],
                        self._loop.now,
                        outcome,
                    )
                continue
            if self._cancel_parked(version, request_id):
                if self._check is not None:
                    self._check.on_attempt_finished(
                        request_id,
                        version,
                        state.attempts[version],
                        self._loop.now,
                        outcome,
                    )
            elif self._check is not None:
                # Running somewhere: let the batch finish, discard the
                # orphan result.
                self._check.on_attempt_detached(request_id, version)

    # ------------------------------------------------------------------
    # ensemble state machine
    # ------------------------------------------------------------------
    def _finalize_accurate_only(self, state: _InFlight, *, end: float) -> None:
        """Answer with the accurate result after the fast leg died."""
        accurate = state.accurate_completion
        self._finalize(
            state,
            end=max(end, accurate.finished_at),
            node_seconds={
                state.accurate_version: accurate.amortized_seconds
            },
            lead=accurate,
        )

    def _advance(self, state: _InFlight) -> None:
        fast = state.fast_completion
        if state.fast_failed:
            # Degraded conc/et fallback: the fast leg is terminally gone;
            # the accurate completion alone answers the request.
            if state.accurate_completion is not None:
                self._finalize_accurate_only(state, end=self._loop.now)
            return
        if state.kind == "single":
            if fast is not None:
                self._finalize(
                    state,
                    end=fast.finished_at,
                    node_seconds={state.fast_version: fast.amortized_seconds},
                )
            return

        if fast is not None and state.escalated is None:
            state.escalated = should_escalate(
                fast.result.confidence, state.threshold
            )
            if state.escalated and self._trace is not None:
                self._trace.on_escalated(
                    state.request.request_id, self._loop.now
                )

        if state.kind == "seq":
            self._advance_sequential(state)
        else:
            self._advance_concurrent(state)

    def _advance_sequential(self, state: _InFlight) -> None:
        fast = state.fast_completion
        if fast is None:
            return
        if state.escalated is False:
            self._finalize(
                state,
                end=fast.finished_at,
                node_seconds={state.fast_version: fast.amortized_seconds},
            )
        elif not state.accurate_enqueued:
            state.accurate_enqueued = True
            state.accurate_node = self._enqueue_attempt(
                state, state.accurate_version
            )
        elif state.accurate_completion is not None:
            accurate = state.accurate_completion
            self._finalize(
                state,
                end=accurate.finished_at,
                node_seconds={
                    state.fast_version: fast.amortized_seconds,
                    state.accurate_version: accurate.amortized_seconds,
                },
            )

    def _advance_concurrent(self, state: _InFlight) -> None:
        fast = state.fast_completion
        accurate = state.accurate_completion
        if state.accurate_failed and fast is not None:
            # The accurate leg is terminally gone; the fast result alone
            # decides: confident -> answer with it, escalated -> fail.
            if state.escalated:
                self._finalize_failed(state, end=self._loop.now)
            else:
                self._finalize(
                    state,
                    end=fast.finished_at,
                    node_seconds={state.fast_version: fast.amortized_seconds},
                )
            return
        if fast is None:
            # The accurate job finished first; hold until the fast job's
            # confidence decides the outcome.
            return
        if state.escalated:
            if accurate is None:
                return
            self._finalize(
                state,
                end=max(fast.finished_at, accurate.finished_at),
                node_seconds={
                    state.fast_version: fast.amortized_seconds,
                    state.accurate_version: accurate.amortized_seconds,
                },
            )
            return
        # Fast result accepted: respond at the fast finish.
        if state.kind == "et" and accurate is None and not state.accurate_cancelled:
            accurate_version = state.accurate_version
            request_id = state.request.request_id
            # A not-yet-started accurate job is cancelled at no cost,
            # wherever it is waiting: queued on a node, parked behind a
            # dead pool, or a retry still in backoff.
            cancelled_attempt = self._cancel_queued_job(
                state.accurate_node, request_id
            ) or self._cancel_parked(accurate_version, request_id)
            cancelled_retry = False
            if not cancelled_attempt and state.retry_pending.get(
                accurate_version, False
            ):
                state.retry_pending[accurate_version] = False
                cancelled_retry = True
            if cancelled_attempt or cancelled_retry:
                state.accurate_cancelled = True
                if cancelled_attempt:
                    state.leg_open[accurate_version] = False
                    if self._check is not None:
                        self._check.on_attempt_finished(
                            request_id,
                            accurate_version,
                            state.attempts.get(accurate_version, 0),
                            self._loop.now,
                            "cancelled",
                        )
                self._finalize(
                    state,
                    end=fast.finished_at,
                    node_seconds={state.fast_version: fast.amortized_seconds},
                )
                return
            # Already running: let it finish and bill the bounded share.
        if accurate is None:
            return
        accurate_seconds = accurate.amortized_seconds
        if state.kind == "et":
            accurate_seconds = early_termination_cap(
                accurate_seconds, fast.solo_time_s
            )
        self._finalize(
            state,
            end=fast.finished_at,
            node_seconds={
                state.fast_version: fast.amortized_seconds,
                state.accurate_version: accurate_seconds,
            },
        )

    def _cancel_parked(self, version: str, request_id: str) -> bool:
        """Drop a job waiting in the engine's dead-pool holding pen."""
        parked = self._parked.get(version)
        if not parked:
            return False
        for item in parked:
            if item.request_id == request_id:
                parked.remove(item)
                return True
        return False

    def _cancel_queued_job(
        self, node: Optional[ServiceNode], request_id: str
    ) -> bool:
        """Cancel a not-yet-started job, fixing up the node's flush timer.

        The cancelled job may have been the queue head whose enqueue time
        armed the pending flush deadline; firing that stale timer would
        start the surviving batch earlier than ``max_wait_s`` allows for
        the new head.  Cancel the timer and re-arm from the current queue
        state instead.
        """
        if node is None or not node.cancel(request_id):
            return False
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        self._maybe_start(node)
        return True

    def _finalize(
        self,
        state: _InFlight,
        *,
        end: float,
        node_seconds: Dict[str, float],
        lead: Optional[NodeCompletion] = None,
    ) -> None:
        # The completion whose result answers the consumer: the explicit
        # lead (degraded accurate-only fallback), else the accurate result
        # for an escalated request, else the fast one.
        answer = lead
        if answer is None:
            if state.escalated and state.accurate_completion is not None:
                answer = state.accurate_completion
            else:
                answer = state.fast_completion
        lead = lead or state.fast_completion
        escalated = bool(state.escalated)
        cost = self.cluster.cost_of(node_seconds)
        record = RequestRecord(
            request_id=state.request.request_id,
            payload=state.request.payload,
            tier=state.request.tolerance,
            arrival_s=state.arrival,
            finished_s=end,
            response_time_s=end - state.arrival,
            queue_wait_s=lead.started_at - state.arrival,
            versions_used=tuple(node_seconds.keys()),
            escalated=escalated,
            invocation_cost=cost.invocation_cost,
            node_seconds=dict(node_seconds),
            failed=False,
            retries=state.retries,
            result=answer.result.output if answer is not None else None,
            confidence=(
                answer.result.confidence if answer is not None else None
            ),
            degraded=state.degraded,
            retry_denied=state.retry_denied,
        )
        self._records.append(record)
        if self._check is not None:
            self._check.on_finalized(
                state.request.request_id, self._loop.now, failed=False
            )
        del self._inflight[state.request.request_id]
        self._remaining -= 1
        self._emit_record(record)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _on_control_tick(self) -> None:
        swap = self._control.on_tick(self._loop.now)
        if swap is not None:
            self._apply_configuration(swap)
            if self._trace is not None:
                self._trace.on_epoch(self._loop.now, swap.config_id)
        if self._remaining > 0:
            self._loop.schedule(
                self._control.tick_interval_s,
                self._on_control_tick,
                kind="control",
            )
        else:
            self._control_tick_scheduled = False

    def _apply_configuration(self, configuration: EnsembleConfiguration) -> None:
        """Hot-swap the active fixed configuration (adaptor-driven).

        Later arrivals route through the new configuration; requests
        already in flight finish under the one they started with.
        """
        if self._configuration is None:
            raise ValueError(
                "cannot hot-swap a configuration into a router-driven "
                "simulation; the adaptor only anchors on fixed "
                "configurations"
            )
        unknown = set(configuration.versions) - set(
            self.cluster.load_balancer.versions
        )
        if unknown:
            raise ValueError(
                f"hot-swapped configuration {configuration.config_id!r} "
                f"needs undeployed version(s) {sorted(unknown)}"
            )
        self._configuration = configuration

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------
    def _on_autoscale_tick(self) -> None:
        scaler = self._autoscaler
        now = self._loop.now
        balancer = self.cluster.load_balancer
        for version in balancer.versions:
            nodes = balancer.nodes_of(version)
            n_nodes = len(nodes)
            queue_depth = sum(node.queue_depth for node in nodes) + len(
                self._parked.get(version, ())
            )
            busy_now = sum(node.busy_seconds for node in nodes)
            window = scaler.config.evaluation_interval_s
            denominator = n_nodes * window
            utilization = (
                (busy_now - self._last_busy.get(version, 0.0)) / denominator
                if denominator > 0.0
                else 0.0
            )
            self._last_busy[version] = busy_now
            delta = scaler.decide(
                version,
                n_nodes=n_nodes,
                queue_depth=queue_depth,
                utilization=utilization,
                now=now,
            )
            if delta > 0:
                added = self.cluster.add_nodes(version, delta)
                scaler.record(
                    version,
                    old_size=n_nodes,
                    new_size=n_nodes + delta,
                    now=now,
                    reason=scaler.reason_for(
                        delta, queue_depth=queue_depth, n_nodes=n_nodes
                    ),
                )
                self._maybe_cold_start(version, added)
                self._on_capacity_added(version)
            elif delta < 0:
                removed = self.cluster.remove_node(version, now=now)
                if removed is not None:
                    # Keep the utilization baseline consistent with the
                    # surviving membership, else the next tick's busy delta
                    # goes negative by the removed node's lifetime total.
                    self._last_busy[version] -= removed.busy_seconds
                    scaler.record(
                        version,
                        old_size=n_nodes,
                        new_size=n_nodes - 1,
                        now=now,
                        reason="idle",
                    )
        if self._remaining > 0:
            self._loop.schedule(
                scaler.config.evaluation_interval_s,
                self._on_autoscale_tick,
                kind="autoscale",
            )
        else:
            self._tick_scheduled = False
