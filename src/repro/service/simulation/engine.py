"""The discrete-event serving simulator.

:class:`ServingSimulator` layers a virtual-clock event loop over a live
:class:`~repro.service.cluster.ClusterDeployment`: requests arrive under an
offered-load process, a :class:`~repro.core.router.TierRouter` (or one
fixed configuration) decides which ensemble serves each of them, jobs join
per-node FIFO queues through the cluster's ``submit`` interface, nodes
execute them — solo or in sublinear batches — and an optional autoscaler
grows and shrinks the pools while traffic flows.  The output is a
:class:`~repro.service.simulation.report.LoadTestReport` with the tail
latencies and costs the replay benchmarks cannot see.

Ensemble semantics under the virtual clock mirror the replay policies in
:mod:`repro.core.policies`:

* ``single`` — one job; the response is ready when it finishes.
* ``seq`` — the fast job runs first; on low confidence an accurate job is
  enqueued *at the fast job's finish time* and the response waits for it.
* ``conc`` — fast and accurate jobs are enqueued at arrival; a confident
  fast result answers immediately (the accurate job still burns node time),
  otherwise the response waits for both.
* ``et`` — like ``conc``, but when the fast result is accepted the
  accurate job is cancelled: a still-queued job is removed outright (no
  cost), while a job that already started runs on, its billed node-seconds
  capped at the fast job's solo service time (the replay model's bound).

The event loop is single-threaded and deterministic: same seed, same
arrival process, same report.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.router import TierRouter
from repro.service.cluster import ClusterDeployment
from repro.service.node import NodeCompletion, ServiceNode
from repro.service.request import Objective, ServiceRequest
from repro.service.simulation.arrivals import ArrivalProcess
from repro.service.simulation.autoscaler import Autoscaler
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.events import Event, EventLoop
from repro.service.simulation.report import LoadTestReport, RequestRecord

__all__ = ["ServingSimulator"]

#: Safety valve: no sane load test needs more events than this.
_MAX_EVENTS = 10_000_000


class _InFlight:
    """Mutable state of one request between arrival and response."""

    __slots__ = (
        "request",
        "kind",
        "arrival",
        "fast_version",
        "accurate_version",
        "threshold",
        "fast_completion",
        "accurate_completion",
        "escalated",
        "accurate_node",
        "accurate_enqueued",
        "accurate_cancelled",
    )

    def __init__(
        self, request: ServiceRequest, configuration: EnsembleConfiguration
    ) -> None:
        self.request = request
        self.kind = configuration.kind
        self.arrival = 0.0
        policy = configuration.policy
        if self.kind == "single":
            self.fast_version = policy.versions[0]
            self.accurate_version = None
            self.threshold = 0.0
        else:
            self.fast_version = policy.fast_version
            self.accurate_version = policy.accurate_version
            self.threshold = getattr(policy, "confidence_threshold", 0.5)
        self.fast_completion: Optional[NodeCompletion] = None
        self.accurate_completion: Optional[NodeCompletion] = None
        self.escalated: Optional[bool] = None
        self.accurate_node: Optional[ServiceNode] = None
        self.accurate_enqueued = False
        self.accurate_cancelled = False


class ServingSimulator:
    """Event-driven load simulation over a cluster deployment.

    Exactly one of ``router`` / ``configuration`` selects how requests map
    to ensembles: a tier router serves each request according to its
    ``Tolerance`` / ``Objective`` annotation, while a fixed configuration
    models a conventional deployment (e.g. OSFA as a single-version
    configuration of the most accurate model).

    Args:
        cluster: The deployment whose queues and pools the simulation
            drives.  Its load-balancer policy decides per-job node choice;
            :class:`~repro.service.load_balancer.JoinShortestQueuePolicy`
            is the natural fit under load.
        router: Tier router from the offline rule generator.
        configuration: Fixed ensemble configuration (mutually exclusive
            with ``router``).
        batching: Node-level batching policy; default is unbatched.
        autoscaler: Optional pool autoscaler, evaluated on its configured
            cadence while traffic is in flight.
        seed: Seed for arrival sampling and payload choice.
    """

    def __init__(
        self,
        cluster: ClusterDeployment,
        *,
        router: Optional[TierRouter] = None,
        configuration: Optional[EnsembleConfiguration] = None,
        batching: Optional[BatchingConfig] = None,
        autoscaler: Optional[Autoscaler] = None,
        seed: int = 0,
    ) -> None:
        if (router is None) == (configuration is None):
            raise ValueError("supply exactly one of router / configuration")
        self.cluster = cluster
        # The engine owns the virtual timeline: any busy_until left behind
        # by synchronous replay traffic belongs to a different clock and
        # would deadlock _maybe_start (no completion event exists to wake
        # the node).  Queued work from outside the engine is refused.
        pending = {v: d for v, d in cluster.queue_depths().items() if d}
        if pending:
            raise ValueError(
                f"cluster has queued work {pending}; drain() it before "
                "building a ServingSimulator"
            )
        for version in cluster.load_balancer.versions:
            for node in cluster.load_balancer.nodes_of(version):
                node.busy_until = 0.0
        # Seed the utilization baseline with whatever busy time the nodes
        # already accumulated, so the first autoscaler tick measures only
        # work done inside this simulation, not the cluster's history.
        self._last_busy = {
            version: sum(
                node.busy_seconds
                for node in cluster.load_balancer.nodes_of(version)
            )
            for version in cluster.load_balancer.versions
        }
        self._router = router
        self._configuration = configuration
        self._batching = batching or BatchingConfig()
        self._autoscaler = autoscaler
        self._rng = np.random.default_rng(seed)
        self._loop = EventLoop()
        self._inflight: Dict[str, _InFlight] = {}
        self._records: List[RequestRecord] = []
        self._flush_events: Dict[str, Event] = {}
        self._remaining = 0
        self._counter = 0
        self._tick_scheduled = False
        self._drained = False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest, *, at_time: float = 0.0) -> None:
        """Schedule one request's arrival at a virtual timestamp.

        Raises:
            ValueError: If the simulator has already been drained — a
                simulator is single-use (its clock, records and pool state
                belong to one load test); build a fresh one per test.
        """
        if self._drained:
            raise ValueError(
                "this ServingSimulator has already been drained; a simulator "
                "is single-use — build a new one for another load test"
            )
        self._remaining += 1
        self._loop.schedule_at(
            at_time, lambda r=request: self._on_arrival(r), kind="arrival"
        )

    def run(
        self,
        arrivals: ArrivalProcess,
        n_requests: int,
        *,
        tolerance: float = 0.0,
        objective: Objective = Objective.RESPONSE_TIME,
        payload_ids: Optional[Sequence[Any]] = None,
    ) -> LoadTestReport:
        """Generate a workload, submit it, and drain it to a report.

        Args:
            arrivals: Arrival process generating the offered load.
            n_requests: Number of requests to simulate.
            tolerance: ``Tolerance`` annotation on every request.
            objective: ``Objective`` annotation on every request.
            payload_ids: Pool of payloads (measured request ids, for replay
                clusters) sampled uniformly per arrival; defaults to each
                request's own id.
        """
        times = arrivals.times(n_requests, self._rng)
        if payload_ids is not None:
            ids = list(payload_ids)
            if not ids:
                raise ValueError("payload_ids must be non-empty when given")
            picks = self._rng.integers(0, len(ids), size=n_requests)
        for i, at_time in enumerate(times):
            request_id = f"load_{self._counter:06d}"
            self._counter += 1
            payload = ids[picks[i]] if payload_ids is not None else request_id
            self.submit(
                ServiceRequest(
                    request_id=request_id,
                    payload=payload,
                    tolerance=tolerance,
                    objective=objective,
                ),
                at_time=float(at_time),
            )
        report = self.drain()
        span = float(times[-1] - times[0])
        report.offered_rate = n_requests / span if span > 0.0 else None
        return report

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def drain(self) -> LoadTestReport:
        """Run the event loop until every submitted request has responded."""
        if self._autoscaler is not None and not self._tick_scheduled:
            self._tick_scheduled = True
            self._loop.schedule(
                self._autoscaler.config.evaluation_interval_s,
                self._on_autoscale_tick,
                kind="autoscale",
            )
        self._loop.run(max_events=_MAX_EVENTS)
        self._drained = True
        if self._remaining:
            raise RuntimeError(
                f"event loop drained with {self._remaining} requests unresolved"
            )
        return LoadTestReport(
            records=list(self._records),
            scaling_events=list(self._autoscaler.events)
            if self._autoscaler is not None
            else [],
            final_pool_sizes=self.cluster.pool_sizes(),
        )

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._loop.now

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _plan(self, request: ServiceRequest) -> EnsembleConfiguration:
        if self._configuration is not None:
            return self._configuration
        return self._router.route_request(request)

    def _on_arrival(self, request: ServiceRequest) -> None:
        state = _InFlight(request, self._plan(request))
        state.arrival = self._loop.now
        if request.request_id in self._inflight:
            raise ValueError(f"duplicate request id {request.request_id!r}")
        self._inflight[request.request_id] = state
        self._enqueue(state, state.fast_version)
        if state.kind in ("conc", "et"):
            state.accurate_node = self._enqueue(state, state.accurate_version)
            state.accurate_enqueued = True

    def _enqueue(self, state: _InFlight, version: str) -> ServiceNode:
        node = self.cluster.submit(version, state.request, now=self._loop.now)
        self._maybe_start(node)
        return node

    def _maybe_start(self, node: ServiceNode) -> None:
        """Start a batch on an idle node, or arm its flush timer."""
        now = self._loop.now
        if node.queue_depth == 0 or node.busy_until > now:
            # Busy nodes restart from their batch-completion event.
            return
        cfg = self._batching
        head_wait = now - (node.oldest_enqueued_at or now)
        if (
            node.queue_depth >= cfg.max_batch_size
            or cfg.max_wait_s <= 0.0
            or head_wait >= cfg.max_wait_s - 1e-12
        ):
            self._start_batch(node)
        elif node.node_id not in self._flush_events:
            deadline = node.oldest_enqueued_at + cfg.max_wait_s
            self._flush_events[node.node_id] = self._loop.schedule_at(
                deadline, lambda n=node: self._on_flush(n), kind="flush"
            )

    def _on_flush(self, node: ServiceNode) -> None:
        self._flush_events.pop(node.node_id, None)
        if node.queue_depth and node.busy_until <= self._loop.now:
            self._start_batch(node)

    def _start_batch(self, node: ServiceNode) -> None:
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        batch = node.pop_batch(self._batching.max_batch_size)
        completions = node.execute_batch(
            batch, now=self._loop.now, batching=self._batching
        )
        self._loop.schedule_at(
            completions[0].finished_at,
            lambda n=node, c=completions: self._on_batch_done(n, c),
            kind="batch-done",
        )

    def _on_batch_done(
        self, node: ServiceNode, completions: List[NodeCompletion]
    ) -> None:
        for completion in completions:
            self._on_job_done(completion)
        self._maybe_start(node)

    def _on_job_done(self, completion: NodeCompletion) -> None:
        state = self._inflight.get(completion.result.request_id)
        if state is None:
            return
        if (
            state.accurate_version is not None
            and completion.result.version == state.accurate_version
        ):
            state.accurate_completion = completion
        else:
            state.fast_completion = completion
        self._advance(state)

    # ------------------------------------------------------------------
    # ensemble state machine
    # ------------------------------------------------------------------
    def _advance(self, state: _InFlight) -> None:
        fast = state.fast_completion
        if state.kind == "single":
            if fast is not None:
                self._finalize(
                    state,
                    end=fast.finished_at,
                    node_seconds={state.fast_version: fast.amortized_seconds},
                )
            return

        if fast is not None and state.escalated is None:
            state.escalated = fast.result.confidence < state.threshold

        if state.kind == "seq":
            self._advance_sequential(state)
        else:
            self._advance_concurrent(state)

    def _advance_sequential(self, state: _InFlight) -> None:
        fast = state.fast_completion
        if fast is None:
            return
        if state.escalated is False:
            self._finalize(
                state,
                end=fast.finished_at,
                node_seconds={state.fast_version: fast.amortized_seconds},
            )
        elif not state.accurate_enqueued:
            state.accurate_enqueued = True
            state.accurate_node = self._enqueue(state, state.accurate_version)
        elif state.accurate_completion is not None:
            accurate = state.accurate_completion
            self._finalize(
                state,
                end=accurate.finished_at,
                node_seconds={
                    state.fast_version: fast.amortized_seconds,
                    state.accurate_version: accurate.amortized_seconds,
                },
            )

    def _advance_concurrent(self, state: _InFlight) -> None:
        fast = state.fast_completion
        accurate = state.accurate_completion
        if fast is None:
            # The accurate job finished first; hold until the fast job's
            # confidence decides the outcome.
            return
        if state.escalated:
            if accurate is None:
                return
            self._finalize(
                state,
                end=max(fast.finished_at, accurate.finished_at),
                node_seconds={
                    state.fast_version: fast.amortized_seconds,
                    state.accurate_version: accurate.amortized_seconds,
                },
            )
            return
        # Fast result accepted: respond at the fast finish.
        if state.kind == "et" and accurate is None and not state.accurate_cancelled:
            if self._cancel_queued_job(
                state.accurate_node, state.request.request_id
            ):
                state.accurate_cancelled = True
                self._finalize(
                    state,
                    end=fast.finished_at,
                    node_seconds={state.fast_version: fast.amortized_seconds},
                )
                return
            # Already running: let it finish and bill the bounded share.
        if accurate is None:
            return
        accurate_seconds = accurate.amortized_seconds
        if state.kind == "et":
            accurate_seconds = min(accurate_seconds, fast.solo_time_s)
        self._finalize(
            state,
            end=fast.finished_at,
            node_seconds={
                state.fast_version: fast.amortized_seconds,
                state.accurate_version: accurate_seconds,
            },
        )

    def _cancel_queued_job(
        self, node: Optional[ServiceNode], request_id: str
    ) -> bool:
        """Cancel a not-yet-started job, fixing up the node's flush timer.

        The cancelled job may have been the queue head whose enqueue time
        armed the pending flush deadline; firing that stale timer would
        start the surviving batch earlier than ``max_wait_s`` allows for
        the new head.  Cancel the timer and re-arm from the current queue
        state instead.
        """
        if node is None or not node.cancel(request_id):
            return False
        pending = self._flush_events.pop(node.node_id, None)
        if pending is not None:
            pending.cancel()
        self._maybe_start(node)
        return True

    def _finalize(
        self, state: _InFlight, *, end: float, node_seconds: Dict[str, float]
    ) -> None:
        fast = state.fast_completion
        escalated = bool(state.escalated)
        cost = self.cluster.cost_of(node_seconds)
        self._records.append(
            RequestRecord(
                request_id=state.request.request_id,
                payload=state.request.payload,
                tier=state.request.tolerance,
                arrival_s=state.arrival,
                finished_s=end,
                response_time_s=end - state.arrival,
                queue_wait_s=fast.started_at - state.arrival,
                versions_used=tuple(node_seconds.keys()),
                escalated=escalated,
                invocation_cost=cost.invocation_cost,
                node_seconds=dict(node_seconds),
            )
        )
        del self._inflight[state.request.request_id]
        self._remaining -= 1

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------
    def _on_autoscale_tick(self) -> None:
        scaler = self._autoscaler
        now = self._loop.now
        balancer = self.cluster.load_balancer
        for version in balancer.versions:
            nodes = balancer.nodes_of(version)
            n_nodes = len(nodes)
            queue_depth = sum(node.queue_depth for node in nodes)
            busy_now = sum(node.busy_seconds for node in nodes)
            window = scaler.config.evaluation_interval_s
            utilization = (busy_now - self._last_busy.get(version, 0.0)) / (
                n_nodes * window
            )
            self._last_busy[version] = busy_now
            delta = scaler.decide(
                version,
                n_nodes=n_nodes,
                queue_depth=queue_depth,
                utilization=utilization,
                now=now,
            )
            if delta > 0:
                self.cluster.add_nodes(version, delta)
                scaler.record(
                    version,
                    old_size=n_nodes,
                    new_size=n_nodes + delta,
                    now=now,
                    reason=scaler.reason_for(
                        delta, queue_depth=queue_depth, n_nodes=n_nodes
                    ),
                )
            elif delta < 0:
                removed = self.cluster.remove_node(version, now=now)
                if removed is not None:
                    # Keep the utilization baseline consistent with the
                    # surviving membership, else the next tick's busy delta
                    # goes negative by the removed node's lifetime total.
                    self._last_busy[version] -= removed.busy_seconds
                    scaler.record(
                        version,
                        old_size=n_nodes,
                        new_size=n_nodes - 1,
                        now=now,
                        reason="idle",
                    )
        if self._remaining > 0:
            self._loop.schedule(
                scaler.config.evaluation_interval_s,
                self._on_autoscale_tick,
                kind="autoscale",
            )
        else:
            self._tick_scheduled = False
