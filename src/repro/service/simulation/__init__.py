"""Event-driven serving simulation: latency and cost under offered load.

The replay path (:mod:`repro.core.simulator`) answers "what would this
configuration have served per request"; this package answers the paper's
*service* question — what do the Tolerance Tiers policies do to tail
latency and cost when requests queue, batch and contend for a finite pool
of nodes:

* :mod:`repro.service.simulation.events` -- the virtual-clock event loop.
* :mod:`repro.service.simulation.arrivals` -- Poisson, bursty and
  trace-driven arrival processes.
* :mod:`repro.service.simulation.batching` -- node-level request batching
  with a sublinear batch latency model.
* :mod:`repro.service.simulation.autoscaler` -- queue-depth and
  utilization triggered pool autoscaling.
* :mod:`repro.service.simulation.replay` -- measurement-backed service
  versions, so simulated service times come from measured latencies.
* :mod:`repro.service.simulation.engine` -- the discrete-event engine
  tying it together over a :class:`~repro.service.cluster.ClusterDeployment`.
* :mod:`repro.service.simulation.report` -- per-request records and
  p50/p95/p99 aggregates.
"""

from repro.service.simulation.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.service.simulation.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScalingEvent,
)
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.engine import ServingSimulator
from repro.service.simulation.events import Event, EventLoop
from repro.service.simulation.replay import (
    MeasurementReplayVersion,
    build_replay_cluster,
    replay_pools,
)
from repro.service.simulation.report import LoadTestReport, RequestRecord

__all__ = [
    "ArrivalProcess",
    "Autoscaler",
    "AutoscalerConfig",
    "BatchingConfig",
    "BurstyArrivals",
    "Event",
    "EventLoop",
    "LoadTestReport",
    "MeasurementReplayVersion",
    "PoissonArrivals",
    "RequestRecord",
    "ScalingEvent",
    "ServingSimulator",
    "TraceArrivals",
    "build_replay_cluster",
    "replay_pools",
]
