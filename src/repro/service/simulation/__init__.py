"""Event-driven serving simulation: latency and cost under offered load.

The replay path (:mod:`repro.core.simulator`) answers "what would this
configuration have served per request"; this package answers the paper's
*service* question — what do the Tolerance Tiers policies do to tail
latency and cost when requests queue, batch and contend for a finite pool
of nodes, and what happens when that pool degrades:

* :mod:`repro.service.simulation.events` -- the virtual-clock event loop.
* :mod:`repro.service.simulation.arrivals` -- Poisson, bursty, diurnal,
  spike and trace-driven arrival processes.
* :mod:`repro.service.simulation.batching` -- node-level request batching
  with a sublinear batch latency model.
* :mod:`repro.service.simulation.autoscaler` -- queue-depth and
  utilization triggered pool autoscaling (plus dead-pool replacement).
* :mod:`repro.service.simulation.faults` -- declarative fault injection:
  node crash/recovery, stragglers, transient-failure windows, the chaos
  vocabulary (gray failures, cascades, retry storms, cold-start waves,
  thundering herds), and the retry policy — with budgets — that
  re-drives failed attempts.
* :mod:`repro.service.simulation.scenarios` -- :class:`ScenarioSpec`, the
  declarative composition of arrivals + tier mix + autoscaling + faults,
  with six canonical degraded-mode scenarios and five chaos scenarios.
* :mod:`repro.service.simulation.invariants` -- opt-in conservation-law
  checking (request/attempt conservation, billing reconciliation).
* :mod:`repro.service.simulation.replay` -- measurement-backed service
  versions, so simulated service times come from measured latencies.
* :mod:`repro.service.simulation.engine` -- the discrete-event engine
  tying it together over a :class:`~repro.service.cluster.ClusterDeployment`.
* :mod:`repro.service.simulation.report` -- per-request records and
  p50/p95/p99 aggregates, availability/goodput/retry counters, and the
  deterministic report digest the golden-trace tests pin.
* :mod:`repro.service.simulation.seeds` -- the RNG spawn-key registry
  and the seed-stream audit that proves every derived generator
  (engine, faults, storm buckets, admission, region shards) is
  disjoint.
"""

from repro.service.simulation.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    SpikeArrivals,
    ThunderingHerdArrivals,
    TraceArrivals,
)
from repro.service.simulation.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScalingEvent,
)
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.engine import ServingSimulator
from repro.service.simulation.events import Event, EventLoop
from repro.service.simulation.faults import (
    CascadePolicy,
    ColdStartWave,
    FaultLogEntry,
    GrayFailure,
    NodeCrash,
    NodeSlowdown,
    RegionPartition,
    RetryPolicy,
    RetryStorm,
    ThunderingHerd,
    TransientFaults,
    affected_versions,
)
from repro.service.simulation.invariants import (
    InvariantChecker,
    InvariantViolation,
)
from repro.service.simulation.replay import (
    MeasurementReplayVersion,
    build_replay_cluster,
    replay_pools,
)
from repro.service.simulation.report import (
    Divergence,
    LoadTestReport,
    RecordColumns,
    RequestRecord,
    first_divergence,
)
from repro.service.simulation.scenarios import (
    ScenarioSpec,
    canonical_scenarios,
    chaos_scenarios,
    osfa_configuration,
    run_scenario,
    scenario_measurements,
)
from repro.service.simulation.seeds import (
    SeedStreamCollision,
    audit_seed_streams,
    spawn_region_seed,
    streams_for_spec,
)

__all__ = [
    "ArrivalProcess",
    "Autoscaler",
    "AutoscalerConfig",
    "BatchingConfig",
    "BurstyArrivals",
    "CascadePolicy",
    "ColdStartWave",
    "Divergence",
    "DiurnalArrivals",
    "Event",
    "EventLoop",
    "FaultLogEntry",
    "GrayFailure",
    "InvariantChecker",
    "InvariantViolation",
    "LoadTestReport",
    "MeasurementReplayVersion",
    "NodeCrash",
    "NodeSlowdown",
    "PoissonArrivals",
    "RecordColumns",
    "RegionPartition",
    "RequestRecord",
    "RetryPolicy",
    "RetryStorm",
    "ScalingEvent",
    "ScenarioSpec",
    "SeedStreamCollision",
    "ServingSimulator",
    "SpikeArrivals",
    "ThunderingHerd",
    "ThunderingHerdArrivals",
    "TraceArrivals",
    "TransientFaults",
    "affected_versions",
    "audit_seed_streams",
    "build_replay_cluster",
    "canonical_scenarios",
    "chaos_scenarios",
    "first_divergence",
    "osfa_configuration",
    "replay_pools",
    "run_scenario",
    "scenario_measurements",
    "spawn_region_seed",
    "streams_for_spec",
]
