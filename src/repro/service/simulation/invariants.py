"""Opt-in conservation-law checking for the serving simulator.

A discrete-event engine with fault injection has many ways to quietly go
wrong: a crashed batch's requests can vanish, a retry can double-resolve a
request, billed node-seconds can drift from the machine time actually
worked.  :class:`InvariantChecker` is a ledger the engine feeds (when
built with ``check_invariants=True``) from inside its event handlers; at
drain time :meth:`InvariantChecker.verify` reconciles the ledger against
the emitted :class:`~repro.service.simulation.report.LoadTestReport` and
the cluster's books, raising :class:`InvariantViolation` on the first
broken law.

The laws:

1. **Conservation of requests** — every arrived request is finalized
   exactly once: it completes, fails terminally, or is shed by admission
   control (submitted = completed + failed + shed).  No request is lost,
   none is answered twice.
2. **Conservation of attempts** — every started job attempt is closed
   exactly once (completed, failed, cancelled, or explicitly detached);
   attempt numbers per ``(request, version)`` are contiguous from 1; a
   retry only ever follows a failed attempt; no job exceeds the retry
   policy's ``max_attempts``.
3. **Monotone clock** — ledger events arrive in non-decreasing virtual
   time.
4. **Billing reconciliation** — a request is only ever billed node-seconds
   its *successful* job completions actually reported (early termination
   may bill less, never more), and per version the total billed
   node-seconds never exceed the machine time worked across live and
   retired nodes.
5. **Drained means drained** — when the report is emitted, no queue still
   holds work.
6. **Retry budgets bind** — retries actually driven never exceed the
   policy's per-request ``retry_budget`` or run-wide ``max_total_retries``
   when those are set, and a record's ``retry_denied`` flag agrees with
   the ledger of denials the engine reported.
7. **Degradations recover at most once** — in the fault log, per version,
   ``gray-restore`` entries never outnumber ``gray`` onsets and ``warmed``
   entries never outnumber ``cold-start`` onsets (a restore without an
   onset would mean the engine un-degraded a healthy node).

The checker is pure bookkeeping: it draws no randomness and schedules no
events, so enabling it cannot change simulated behaviour (golden digests
are identical with and without it).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

__all__ = ["InvariantChecker", "InvariantViolation"]

#: Absolute slack for float accumulation across thousands of records.
_TOL = 1e-6

#: Attempt outcomes the engine may report.
_OUTCOMES = frozenset(
    {"ok", "transient", "crash", "cascade", "cancelled", "unserved", "detached"}
)
#: Outcomes after which a retry (a further attempt) is legal.
_RETRYABLE = frozenset({"transient", "crash", "cascade"})

#: Fault-log pairs whose restores must never outnumber their onsets.
_PAIRED_FAULT_KINDS = (("gray", "gray-restore"), ("cold-start", "warmed"))


class InvariantViolation(AssertionError):
    """A simulation conservation law was broken."""


class InvariantChecker:
    """Event ledger + end-of-run reconciliation for one simulation."""

    def __init__(self) -> None:
        self._last_time = 0.0
        self._arrived: Dict[str, float] = {}
        self._finalized: Dict[str, bool] = {}
        self._shed: Set[str] = set()
        self._started: Dict[Tuple[str, str], int] = {}
        self._closed: Dict[Tuple[str, str], int] = {}
        self._last_outcome: Dict[Tuple[str, str], str] = {}
        self._ok_seconds: Dict[Tuple[str, str], float] = {}
        self._detached: Set[Tuple[str, str]] = set()
        self._retry_denied: Set[str] = set()
        self._denials = 0

    # ------------------------------------------------------------------
    # ledger hooks (called by the engine, in event order)
    # ------------------------------------------------------------------
    def tick(self, t: float) -> None:
        """Record a clock observation; the virtual clock must not rewind."""
        if t < self._last_time - 1e-12:
            raise InvariantViolation(
                f"virtual clock went backwards: {self._last_time:.9f} -> "
                f"{t:.9f}"
            )
        self._last_time = max(self._last_time, t)

    def on_arrival(self, request_id: str, t: float) -> None:
        """One request arrived."""
        self.tick(t)
        if request_id in self._arrived:
            raise InvariantViolation(f"request {request_id!r} arrived twice")
        self._arrived[request_id] = t

    def on_attempt_started(
        self, request_id: str, version: str, attempt: int, t: float
    ) -> None:
        """A job attempt for one ``(request, version)`` leg began."""
        self.tick(t)
        key = (request_id, version)
        expected = self._started.get(key, 0) + 1
        if attempt != expected:
            raise InvariantViolation(
                f"{key}: attempt {attempt} started but {expected} expected "
                "(attempt numbers must be contiguous from 1)"
            )
        if attempt > 1:
            open_attempts = self._started.get(key, 0) - self._closed.get(key, 0)
            if open_attempts != 0:
                raise InvariantViolation(
                    f"{key}: retry started while attempt still open"
                )
            last = self._last_outcome.get(key)
            if last not in _RETRYABLE:
                raise InvariantViolation(
                    f"{key}: retry followed outcome {last!r}, not a failure"
                )
        self._started[key] = attempt

    def on_attempt_finished(
        self,
        request_id: str,
        version: str,
        attempt: int,
        t: float,
        outcome: str,
        *,
        seconds: float = 0.0,
    ) -> None:
        """A started attempt closed with one of the known outcomes."""
        self.tick(t)
        if outcome not in _OUTCOMES:
            raise InvariantViolation(f"unknown attempt outcome {outcome!r}")
        key = (request_id, version)
        if attempt != self._started.get(key, 0):
            raise InvariantViolation(
                f"{key}: attempt {attempt} closed but "
                f"{self._started.get(key, 0)} was the last started"
            )
        closed = self._closed.get(key, 0) + 1
        if closed > self._started.get(key, 0):
            raise InvariantViolation(
                f"{key}: more attempts closed than started"
            )
        self._closed[key] = closed
        self._last_outcome[key] = outcome
        if outcome == "ok":
            self._ok_seconds[key] = self._ok_seconds.get(key, 0.0) + seconds

    def on_attempt_detached(self, request_id: str, version: str) -> None:
        """Close an attempt whose job runs on after its request resolved.

        Early termination and terminal-failure cleanup can leave a job
        executing whose result nobody will read; the attempt is accounted
        for here and the eventual orphan completion is informational.
        """
        key = (request_id, version)
        self._detached.add(key)
        self.on_attempt_finished(
            request_id,
            version,
            self._started.get(key, 0),
            self._last_time,
            "detached",
        )

    def on_orphan_finished(
        self, request_id: str, version: str, t: float
    ) -> None:
        """A job completed for an already-resolved request."""
        self.tick(t)
        key = (request_id, version)
        if key not in self._detached:
            raise InvariantViolation(
                f"{key}: orphan completion for an attempt never detached"
            )

    def on_retry_denied(self, request_id: str, version: str, t: float) -> None:
        """A retry budget refused the retry the policy wanted to schedule."""
        self.tick(t)
        key = (request_id, version)
        if self._started.get(key, 0) < 1:
            raise InvariantViolation(
                f"{key}: retry denied before any attempt started"
            )
        self._retry_denied.add(request_id)
        self._denials += 1

    def on_shed(self, request_id: str, t: float) -> None:
        """Admission control dropped one arrived request unserved.

        A shed is a terminal resolution of its own kind: it must follow
        an arrival, must not follow (or precede) any job attempt, and
        the request must never also complete or fail.
        """
        self.tick(t)
        if request_id not in self._arrived:
            raise InvariantViolation(
                f"request {request_id!r} shed but never arrived"
            )
        if request_id in self._finalized or request_id in self._shed:
            raise InvariantViolation(
                f"request {request_id!r} shed after already resolving"
            )
        started = [key for key in self._started if key[0] == request_id]
        if started:
            raise InvariantViolation(
                f"request {request_id!r} shed after starting attempts "
                f"{started}; admission happens before any job runs"
            )
        self._shed.add(request_id)

    def on_finalized(self, request_id: str, t: float, *, failed: bool) -> None:
        """One request resolved (answered or terminally failed)."""
        self.tick(t)
        if request_id not in self._arrived:
            raise InvariantViolation(
                f"request {request_id!r} finalized but never arrived"
            )
        if request_id in self._finalized or request_id in self._shed:
            raise InvariantViolation(
                f"request {request_id!r} finalized twice"
            )
        self._finalized[request_id] = failed

    # ------------------------------------------------------------------
    # end-of-run reconciliation
    # ------------------------------------------------------------------
    def verify(self, report, cluster, retry: Optional[object] = None) -> None:
        """Reconcile the ledger against the report and the cluster's books.

        Args:
            report: The emitted
                :class:`~repro.service.simulation.report.LoadTestReport`.
            cluster: The simulated
                :class:`~repro.service.cluster.ClusterDeployment`.
            retry: The engine's
                :class:`~repro.service.simulation.faults.RetryPolicy`, for
                the ``max_attempts`` bound (``None`` skips that check).

        Raises:
            InvariantViolation: On the first broken law.
        """
        # 1. conservation of requests: submitted = completed + failed + shed
        resolved = set(self._finalized) | self._shed
        missing = set(self._arrived) - resolved
        if missing:
            raise InvariantViolation(
                f"{len(missing)} request(s) arrived but never resolved, "
                f"e.g. {sorted(missing)[:3]}"
            )
        extra = resolved - set(self._arrived)
        if extra:
            raise InvariantViolation(
                f"request(s) resolved without arriving: {sorted(extra)[:3]}"
            )
        reported = {r.request_id for r in report.records}
        if reported != resolved:
            raise InvariantViolation(
                "report records do not match the resolved-request ledger"
            )
        if len(report.records) != len(reported):
            raise InvariantViolation("duplicate request ids in the report")

        # 2. conservation of attempts
        for key, started in self._started.items():
            closed = self._closed.get(key, 0)
            if closed != started:
                raise InvariantViolation(
                    f"{key}: {started} attempt(s) started but {closed} closed"
                )
            if retry is not None and started > retry.max_attempts:
                raise InvariantViolation(
                    f"{key}: {started} attempts exceed "
                    f"max_attempts={retry.max_attempts}"
                )

        # 6. retry budgets bind
        denied_in_report = {
            record.request_id
            for record in report.records
            if getattr(record, "retry_denied", False)
        }
        if denied_in_report != self._retry_denied:
            raise InvariantViolation(
                "retry_denied flags in the report disagree with the "
                f"ledger ({len(denied_in_report)} flagged vs "
                f"{len(self._retry_denied)} denied)"
            )
        budget = getattr(retry, "retry_budget", None)
        total_budget = getattr(retry, "max_total_retries", None)
        if budget is not None or total_budget is not None:
            total_retries = 0
            for record in report.records:
                retries = getattr(record, "retries", 0)
                total_retries += retries
                if budget is not None and retries > budget:
                    raise InvariantViolation(
                        f"record {record.request_id!r} drove {retries} "
                        f"retries past retry_budget={budget}"
                    )
            if total_budget is not None and total_retries > total_budget:
                raise InvariantViolation(
                    f"{total_retries} retries driven across the run exceed "
                    f"max_total_retries={total_budget}"
                )

        # 4. billing reconciliation (per record, then per version)
        for record in report.records:
            if getattr(record, "shed", False) != (
                record.request_id in self._shed
            ):
                raise InvariantViolation(
                    f"record {record.request_id!r}: shed flag disagrees "
                    "with the ledger"
                )
            if record.request_id in self._shed:
                if record.failed or record.node_seconds or record.invocation_cost:
                    raise InvariantViolation(
                        f"shed record {record.request_id!r} must carry no "
                        "failure flag, node-seconds or billed cost"
                    )
                continue
            if record.failed != self._finalized[record.request_id]:
                raise InvariantViolation(
                    f"record {record.request_id!r}: failed flag disagrees "
                    "with the ledger"
                )
            if record.finished_s < record.arrival_s - 1e-12:
                raise InvariantViolation(
                    f"record {record.request_id!r} finished before it arrived"
                )
            for version, seconds in record.node_seconds.items():
                if seconds < -1e-12:
                    raise InvariantViolation(
                        f"record {record.request_id!r} billed negative "
                        f"node-seconds for {version!r}"
                    )
                earned = self._ok_seconds.get(
                    (record.request_id, version), 0.0
                )
                if seconds > earned + _TOL:
                    raise InvariantViolation(
                        f"record {record.request_id!r} billed {seconds:.9f}s "
                        f"of {version!r} but successful completions only "
                        f"reported {earned:.9f}s"
                    )
        billed = report.total_node_seconds
        worked = cluster.total_busy_seconds()
        for version, seconds in billed.items():
            if seconds > worked.get(version, 0.0) + _TOL:
                raise InvariantViolation(
                    f"version {version!r}: billed {seconds:.9f} node-seconds "
                    f"but only {worked.get(version, 0.0):.9f} were worked"
                )

        # 5. drained means drained
        pending = {v: d for v, d in cluster.queue_depths().items() if d}
        if pending:
            raise InvariantViolation(
                f"report emitted with work still queued: {pending}"
            )

        # 7. degradations recover at most once (fault-log pairing)
        for onset_kind, restore_kind in _PAIRED_FAULT_KINDS:
            onsets: Dict[str, int] = {}
            restores: Dict[str, int] = {}
            for entry in getattr(report, "fault_log", ()):
                if entry.kind == onset_kind:
                    onsets[entry.version] = onsets.get(entry.version, 0) + 1
                elif entry.kind == restore_kind:
                    restores[entry.version] = (
                        restores.get(entry.version, 0) + 1
                    )
            for version, count in restores.items():
                if count > onsets.get(version, 0):
                    raise InvariantViolation(
                        f"version {version!r}: {count} {restore_kind!r} "
                        f"entries but only {onsets.get(version, 0)} "
                        f"{onset_kind!r} onset(s)"
                    )
