"""Pool autoscaling driven by queue depth and utilization.

The simulator evaluates each pool on a fixed cadence.  A pool scales *up*
when its backlog per node crosses ``scale_up_queue_depth`` or its busy
fraction over the last window crosses ``scale_up_utilization``; it scales
*down* when it is simultaneously drained (no backlog) and under-utilized.
Scale-downs only ever remove idle nodes (the load balancer refuses to
evict a node with queued or running work) and never shrink a pool below
``min_nodes``.  A per-pool cooldown stops the controller from flapping on
one transient spike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Autoscaler", "AutoscalerConfig", "ScalingEvent"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Controller parameters shared by every pool.

    Attributes:
        min_nodes: Floor no pool may shrink below.
        max_nodes: Ceiling no pool may grow above.
        scale_up_queue_depth: Mean queued requests per node that triggers a
            scale-up.
        scale_up_utilization: Busy fraction over the evaluation window that
            triggers a scale-up.
        scale_down_utilization: Busy fraction below which an idle pool
            sheds one node.
        evaluation_interval_s: Virtual seconds between controller runs.
        cooldown_s: Minimum virtual seconds between two scaling actions on
            the same pool.
    """

    min_nodes: int = 1
    max_nodes: int = 8
    scale_up_queue_depth: float = 4.0
    scale_up_utilization: float = 0.85
    scale_down_utilization: float = 0.25
    evaluation_interval_s: float = 1.0
    cooldown_s: float = 3.0

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be at least 1")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if self.scale_up_queue_depth <= 0.0:
            raise ValueError("scale_up_queue_depth must be positive")
        if not 0.0 < self.scale_up_utilization <= 1.0:
            raise ValueError("scale_up_utilization must be in (0, 1]")
        if not 0.0 <= self.scale_down_utilization < self.scale_up_utilization:
            raise ValueError(
                "scale_down_utilization must be in [0, scale_up_utilization)"
            )
        if self.evaluation_interval_s <= 0.0:
            raise ValueError("evaluation_interval_s must be positive")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be non-negative")


@dataclass(frozen=True)
class ScalingEvent:
    """One scaling action the controller took (or recommended).

    Attributes:
        time_s: Virtual time of the decision.
        version: Pool that scaled.
        old_size: Node count before.
        new_size: Node count after.
        reason: Which trigger fired (``"queue-depth"``, ``"utilization"``,
            ``"dead-pool"`` or ``"idle"``).
    """

    time_s: float
    version: str
    old_size: int
    new_size: int
    reason: str


class Autoscaler:
    """Stateful per-pool scaling controller.

    Args:
        config: Shared controller parameters.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self._last_action_at: Dict[str, float] = {}
        self.events: List[ScalingEvent] = []

    def decide(
        self,
        version: str,
        *,
        n_nodes: int,
        queue_depth: int,
        utilization: float,
        now: float,
    ) -> int:
        """Decide the node-count delta for one pool at one instant.

        Args:
            version: Pool being evaluated.
            n_nodes: Current pool size.
            queue_depth: Requests queued (not yet started) across the pool.
            utilization: Pool busy fraction over the last evaluation
                window, in ``[0, 1]``-ish (transients may exceed 1).
            now: Current virtual time.

        Returns:
            ``+1`` to grow, ``-1`` to shrink, ``0`` to hold.  The caller
        actuates the change and must call :meth:`record` if it did.
        """
        cfg = self.config
        if n_nodes == 0:
            # Fault injection can kill a whole pool.  A dead pool with
            # waiting work is replaced unconditionally — neither a backlog
            # threshold nor the cooldown should keep a service at zero
            # capacity (the cooldown exists to damp flapping, and a pool
            # at zero with queued work is not flapping, it is down).
            return 1 if queue_depth > 0 else 0
        last = self._last_action_at.get(version)
        if last is not None and now - last < cfg.cooldown_s:
            return 0
        backlog_per_node = queue_depth / max(n_nodes, 1)
        if n_nodes < cfg.max_nodes and (
            backlog_per_node >= cfg.scale_up_queue_depth
            or utilization >= cfg.scale_up_utilization
        ):
            return 1
        if (
            n_nodes > cfg.min_nodes
            and queue_depth == 0
            and utilization <= cfg.scale_down_utilization
        ):
            return -1
        return 0

    def reason_for(
        self, delta: int, *, queue_depth: int, n_nodes: int
    ) -> str:
        """Human-readable trigger name for a non-zero decision."""
        if delta > 0:
            if n_nodes == 0:
                return "dead-pool"
            backlog = queue_depth / max(n_nodes, 1)
            if backlog >= self.config.scale_up_queue_depth:
                return "queue-depth"
            return "utilization"
        return "idle"

    def record(
        self,
        version: str,
        *,
        old_size: int,
        new_size: int,
        now: float,
        reason: str,
    ) -> None:
        """Log an actuated scaling action and start the pool's cooldown."""
        self._last_action_at[version] = now
        self.events.append(
            ScalingEvent(
                time_s=now,
                version=version,
                old_size=old_size,
                new_size=new_size,
                reason=reason,
            )
        )
