"""Declarative fault injection for the serving simulator.

The PR 1 engine only exercised healthy clusters under clean arrival
processes; the paper's tiered-serving argument, however, rests on behavior
near saturation — which in production is where machines die, straggle and
flake.  This module provides the *vocabulary* of degraded-mode events the
engine can inject on its virtual clock:

* :class:`NodeCrash` — a node dies at a timestamp: its queued requests are
  requeued onto surviving nodes, its running batch is aborted (the work
  done until the crash stays on the IaaS bill, but produces no results;
  the affected attempts are retried under the :class:`RetryPolicy`), and
  the node may be replaced by a fresh one at a recovery timestamp.
* :class:`NodeSlowdown` — a straggler: one node's effective speed factor
  is degraded for a window, so everything it serves takes longer.
* :class:`TransientFaults` — a flaky window: job completions on affected
  versions fail with a fixed probability (drawn from a dedicated, seeded
  fault RNG so fault-free runs consume no extra randomness), triggering
  retries or terminal request failure.

All fault types are frozen dataclasses so a
:class:`~repro.service.simulation.scenarios.ScenarioSpec` composed of them
is hashable, comparable and serialisable.  Applying the same schedule to
the same seeded simulation always reproduces the same
:class:`~repro.service.simulation.report.LoadTestReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "FaultEvent",
    "FaultLogEntry",
    "NodeCrash",
    "NodeSlowdown",
    "RetryPolicy",
    "TransientFaults",
]


@dataclass(frozen=True)
class NodeCrash:
    """One node of a version's pool dies at a virtual timestamp.

    Attributes:
        at_s: Virtual time of the crash.
        version: Pool the node belongs to.
        node_index: Index of the victim within the pool *at crash time*
            (pools mutate under autoscaling); an index beyond the current
            pool is recorded as a no-op in the fault log.
        recover_at_s: When given, a fresh replacement node (built to the
            pool's specification) joins the pool at this time.
    """

    at_s: float
    version: str
    node_index: int = 0
    recover_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0.0:
            raise ValueError("at_s must be non-negative")
        if self.node_index < 0:
            raise ValueError("node_index must be non-negative")
        if self.recover_at_s is not None and self.recover_at_s <= self.at_s:
            raise ValueError("recover_at_s must lie after at_s")


@dataclass(frozen=True)
class NodeSlowdown:
    """A straggler: one node's speed is degraded for a window.

    Attributes:
        at_s: Virtual time the slowdown begins.
        version: Pool the node belongs to.
        node_index: Index of the straggler within the pool at onset time.
        speed_factor: Multiplier on the node's effective speed in
            ``(0, inf)``; ``0.25`` makes everything it serves 4x slower.
            The degradation applies to batches *started* while it is in
            effect (a batch already running keeps its finish time).
        until_s: When given, the node's speed is restored at this time.
    """

    at_s: float
    version: str
    node_index: int = 0
    speed_factor: float = 0.25
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0.0:
            raise ValueError("at_s must be non-negative")
        if self.node_index < 0:
            raise ValueError("node_index must be non-negative")
        if self.speed_factor <= 0.0:
            raise ValueError("speed_factor must be positive")
        if self.until_s is not None and self.until_s <= self.at_s:
            raise ValueError("until_s must lie after at_s")


@dataclass(frozen=True)
class TransientFaults:
    """A flaky window: completions fail with a fixed probability.

    Attributes:
        start_s: Virtual time the window opens.
        end_s: Virtual time the window closes.
        failure_probability: Probability in ``[0, 1]`` that a job finishing
            inside the window (on an affected version) fails instead of
            returning its result.  The node time is still spent — failed
            work burns capacity, exactly as a timeout or a 5xx does.
        versions: Affected version names; ``None`` affects every version.
    """

    start_s: float
    end_s: float
    failure_probability: float
    versions: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError("start_s must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must lie after start_s")
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ValueError("failure_probability must be in [0, 1]")

    def affects(self, version: str, time_s: float) -> bool:
        """Whether a completion of ``version`` at ``time_s`` is in scope."""
        if not self.start_s <= time_s < self.end_s:
            return False
        return self.versions is None or version in self.versions


#: Any schedulable fault.
FaultEvent = Union[NodeCrash, NodeSlowdown, TransientFaults]


@dataclass(frozen=True)
class RetryPolicy:
    """How the load balancer re-drives failed job attempts.

    A job attempt fails when its node crashes mid-batch or a transient
    fault window eats its completion.  While the request has attempts left
    for that version, a new attempt is enqueued (onto a *surviving* node —
    dead nodes leave the pool) after a backoff delay; once attempts are
    exhausted, the request fails terminally unless it is already
    answerable without the failed leg (a confident fast result makes an
    accurate-leg failure harmless under ``conc``/``et``).

    Attributes:
        max_attempts: Total tries per ``(request, version)`` job, including
            the first; ``1`` disables retries.
        backoff_s: Delay before the first retry.
        backoff_factor: Multiplier applied to the delay per further retry
            (``backoff_s * backoff_factor ** (attempt - 1)``).
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def delay_before_retry(self, failed_attempt: int) -> float:
        """Backoff before re-driving after ``failed_attempt`` (1-based)."""
        if failed_attempt < 1:
            raise ValueError("failed_attempt is 1-based")
        return self.backoff_s * self.backoff_factor ** (failed_attempt - 1)


@dataclass(frozen=True)
class FaultLogEntry:
    """One fault the engine actually applied (or skipped), for the report.

    Attributes:
        time_s: Virtual time the entry was logged.
        kind: ``"crash"``, ``"recover"``, ``"slowdown"``, ``"restore"``,
            ``"transient-window"`` or ``"skipped"``.
        version: Affected pool.
        node_id: Affected node, when the fault targets one.
        detail: Free-form human-readable context.
    """

    time_s: float
    kind: str
    version: str
    node_id: Optional[str] = None
    detail: str = ""
