"""Declarative fault injection for the serving simulator.

The PR 1 engine only exercised healthy clusters under clean arrival
processes; the paper's tiered-serving argument, however, rests on behavior
near saturation — which in production is where machines die, straggle and
flake.  This module provides the *vocabulary* of degraded-mode events the
engine can inject on its virtual clock:

* :class:`NodeCrash` — a node dies at a timestamp: its queued requests are
  requeued onto surviving nodes, its running batch is aborted (the work
  done until the crash stays on the IaaS bill, but produces no results;
  the affected attempts are retried under the :class:`RetryPolicy`), and
  the node may be replaced by a fresh one at a recovery timestamp.
* :class:`NodeSlowdown` — a straggler: one node's effective speed factor
  is degraded for a window, so everything it serves takes longer.
* :class:`TransientFaults` — a flaky window: job completions on affected
  versions fail with a fixed probability (drawn from a dedicated, seeded
  fault RNG so fault-free runs consume no extra randomness), triggering
  retries or terminal request failure.

The chaos vocabulary extends that with the failure shapes a serving stack
must degrade through *gracefully* rather than merely survive:

* :class:`GrayFailure` — a slow-but-alive node: it keeps passing health
  checks (it is never evicted, never stops serving) while its latency
  inflates and its answers silently lose confidence.  The nastiest
  production failure mode, because nothing crashes.
* :class:`CascadePolicy` — crash propagation: a node death in an affected
  pool opens a cascade window during which peer completions fail with a
  load-conditional probability (the more backed up the survivors, the
  likelier the overload spreads).
* :class:`RetryStorm` — a *correlated* transient window: precomputed
  bad/good time buckets concentrate failures into bursts, so aggressive
  client retries pile onto already-failing capacity.  Pair it with the
  :class:`RetryPolicy` budgets below to both reproduce and contain the
  storm.
* :class:`ColdStartWave` — every node that joins a pool after the run
  starts (autoscaler scale-up, crash replacement) serves at degraded
  speed and confidence for a warmup window before reaching steady state.
* :class:`ThunderingHerd` — an outage window on the *arrival* side:
  requests that would have arrived inside it are held and released as one
  synchronized surge when the window ends (see
  :class:`~repro.service.simulation.arrivals.ThunderingHerdArrivals`).
* :class:`RegionPartition` — a severed inter-region failover link: for a
  window, traffic in one region cannot spill over to a peer (or to any
  peer).  Unlike the rest of the vocabulary this is a *topology* fault:
  it is consumed by the region router's failover plan
  (:mod:`repro.service.regions`), never by a single engine shard, so it
  belongs in ``MultiRegionSpec.partitions`` rather than a scenario's
  fault schedule.

All fault types are frozen dataclasses so a
:class:`~repro.service.simulation.scenarios.ScenarioSpec` composed of them
is hashable, comparable and serialisable.  Applying the same schedule to
the same seeded simulation always reproduces the same
:class:`~repro.service.simulation.report.LoadTestReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "CascadePolicy",
    "ColdStartWave",
    "FaultEvent",
    "FaultLogEntry",
    "GrayFailure",
    "NodeCrash",
    "NodeSlowdown",
    "RegionPartition",
    "RetryPolicy",
    "RetryStorm",
    "ThunderingHerd",
    "TransientFaults",
    "affected_versions",
]


def _require_finite(label: str, value: float) -> None:
    """Reject NaN/inf timestamps and rates with a clear error."""
    if not math.isfinite(value):
        raise ValueError(f"{label} must be finite, got {value!r}")


def _require_timestamp(label: str, value: float) -> None:
    _require_finite(label, value)
    if value < 0.0:
        raise ValueError(f"{label} must be non-negative")


def _require_window(start_label: str, start: float, end_label: str, end: float) -> None:
    _require_timestamp(start_label, start)
    _require_finite(end_label, end)
    if end <= start:
        raise ValueError(f"{end_label} must lie after {start_label}")


def _require_rate(label: str, value: float) -> None:
    _require_finite(label, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{label} must be in [0, 1]")


@dataclass(frozen=True)
class NodeCrash:
    """One node of a version's pool dies at a virtual timestamp.

    Attributes:
        at_s: Virtual time of the crash.
        version: Pool the node belongs to.
        node_index: Index of the victim within the pool *at crash time*
            (pools mutate under autoscaling); an index beyond the current
            pool is recorded as a no-op in the fault log.
        recover_at_s: When given, a fresh replacement node (built to the
            pool's specification) joins the pool at this time.
    """

    at_s: float
    version: str
    node_index: int = 0
    recover_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require_timestamp("at_s", self.at_s)
        if self.node_index < 0:
            raise ValueError("node_index must be non-negative")
        if self.recover_at_s is not None:
            _require_finite("recover_at_s", self.recover_at_s)
            if self.recover_at_s <= self.at_s:
                raise ValueError("recover_at_s must lie after at_s")


@dataclass(frozen=True)
class NodeSlowdown:
    """A straggler: one node's speed is degraded for a window.

    Attributes:
        at_s: Virtual time the slowdown begins.
        version: Pool the node belongs to.
        node_index: Index of the straggler within the pool at onset time.
        speed_factor: Multiplier on the node's effective speed in
            ``(0, inf)``; ``0.25`` makes everything it serves 4x slower.
            The degradation applies to batches *started* while it is in
            effect (a batch already running keeps its finish time).
        until_s: When given, the node's speed is restored at this time.
    """

    at_s: float
    version: str
    node_index: int = 0
    speed_factor: float = 0.25
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require_timestamp("at_s", self.at_s)
        if self.node_index < 0:
            raise ValueError("node_index must be non-negative")
        _require_finite("speed_factor", self.speed_factor)
        if self.speed_factor <= 0.0:
            raise ValueError("speed_factor must be positive")
        if self.until_s is not None:
            _require_finite("until_s", self.until_s)
            if self.until_s <= self.at_s:
                raise ValueError("until_s must lie after at_s")


@dataclass(frozen=True)
class TransientFaults:
    """A flaky window: completions fail with a fixed probability.

    Attributes:
        start_s: Virtual time the window opens.
        end_s: Virtual time the window closes.
        failure_probability: Probability in ``[0, 1]`` that a job finishing
            inside the window (on an affected version) fails instead of
            returning its result.  The node time is still spent — failed
            work burns capacity, exactly as a timeout or a 5xx does.
        versions: Affected version names; ``None`` affects every version.
    """

    start_s: float
    end_s: float
    failure_probability: float
    versions: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        _require_window("start_s", self.start_s, "end_s", self.end_s)
        _require_rate("failure_probability", self.failure_probability)

    def affects(self, version: str, time_s: float) -> bool:
        """Whether a completion of ``version`` at ``time_s`` is in scope."""
        if not self.start_s <= time_s < self.end_s:
            return False
        return self.versions is None or version in self.versions


@dataclass(frozen=True)
class GrayFailure:
    """A slow-but-alive node: passes health checks, serves garbage slowly.

    The node is never evicted and never refuses work — the load balancer
    keeps routing to it, which is exactly what makes gray failures the
    hardest production fault to catch.  While the failure is active the
    node's effective speed is multiplied by ``speed_factor`` (latency
    inflation) and every answer it produces has its confidence multiplied
    by ``confidence_factor`` (silent quality loss — under a tiered policy
    this shows up as extra escalations, not as errors).

    Attributes:
        at_s: Virtual time the gray failure begins.
        version: Pool the node belongs to.
        node_index: Index of the victim within the pool at onset time; an
            index beyond the current pool is logged as a no-op.
        speed_factor: Multiplier on the node's effective speed in
            ``(0, 1]`` — applies to batches started while gray.
        confidence_factor: Multiplier in ``[0, 1]`` applied to the
            confidence of every result the node produces while gray.
        until_s: When given, the node recovers (speed and quality) at
            this time.
    """

    at_s: float
    version: str
    node_index: int = 0
    speed_factor: float = 0.5
    confidence_factor: float = 0.8
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require_timestamp("at_s", self.at_s)
        if self.node_index < 0:
            raise ValueError("node_index must be non-negative")
        _require_finite("speed_factor", self.speed_factor)
        if not 0.0 < self.speed_factor <= 1.0:
            raise ValueError("speed_factor must be in (0, 1]")
        _require_rate("confidence_factor", self.confidence_factor)
        if self.until_s is not None:
            _require_finite("until_s", self.until_s)
            if self.until_s <= self.at_s:
                raise ValueError("until_s must lie after at_s")


@dataclass(frozen=True)
class CascadePolicy:
    """Crash propagation: a node death stresses its pool's survivors.

    A run-long policy, not a timed event: whenever a node in an affected
    pool crashes, a cascade window ``[crash, crash + window_s)`` opens on
    that pool.  Completions finishing inside the window fail with
    probability ``min(max_probability, base_probability + load_factor *
    load)`` where ``load`` is the mean queue depth per surviving node —
    the more backed up the pool, the likelier the overload propagates.
    Draws come from the engine's dedicated fault RNG, so cascade-free
    runs consume no extra randomness.

    Attributes:
        version: Pool the policy watches; ``None`` watches every pool.
        window_s: Length of the cascade window a crash opens.
        base_probability: Failure probability floor inside a window.
        load_factor: Additional failure probability per unit of mean
            queue depth per surviving node.
        max_probability: Failure probability ceiling.
    """

    version: Optional[str] = None
    window_s: float = 5.0
    base_probability: float = 0.2
    load_factor: float = 0.05
    max_probability: float = 0.9

    def __post_init__(self) -> None:
        _require_finite("window_s", self.window_s)
        if self.window_s <= 0.0:
            raise ValueError("window_s must be positive")
        _require_rate("base_probability", self.base_probability)
        _require_rate("max_probability", self.max_probability)
        if self.base_probability > self.max_probability:
            raise ValueError(
                "base_probability must not exceed max_probability"
            )
        _require_finite("load_factor", self.load_factor)
        if self.load_factor < 0.0:
            raise ValueError("load_factor must be non-negative")

    def probability(self, load: float) -> float:
        """Failure probability at ``load`` mean queued jobs per survivor."""
        return min(
            self.max_probability,
            self.base_probability + self.load_factor * max(0.0, load),
        )


@dataclass(frozen=True)
class RetryStorm:
    """A correlated transient window: failures arrive in bursts.

    Where :class:`TransientFaults` fails completions independently,
    a retry storm divides its window into buckets of ``bucket_s`` and
    marks a ``bad_fraction`` of them *bad* (from an RNG derived from the
    run seed, precomputed at engine construction so completion
    interleaving cannot change which buckets are bad).  Completions in a
    bad bucket fail with ``failure_probability``; completions in good
    buckets always succeed.  The result is the storm shape: bursts of
    correlated failures whose retries land together on the next bucket —
    amplifying load exactly when capacity is already failing.

    Attributes:
        start_s: Virtual time the storm window opens.
        end_s: Virtual time the storm window closes.
        failure_probability: Failure probability inside a *bad* bucket.
        bucket_s: Width of the correlation buckets.
        bad_fraction: Fraction of buckets (in probability) marked bad.
        versions: Affected version names; ``None`` affects every version.
    """

    start_s: float
    end_s: float
    failure_probability: float = 0.9
    bucket_s: float = 0.5
    bad_fraction: float = 0.5
    versions: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        _require_window("start_s", self.start_s, "end_s", self.end_s)
        _require_rate("failure_probability", self.failure_probability)
        _require_rate("bad_fraction", self.bad_fraction)
        _require_finite("bucket_s", self.bucket_s)
        if self.bucket_s <= 0.0:
            raise ValueError("bucket_s must be positive")

    @property
    def n_buckets(self) -> int:
        """Number of correlation buckets covering the window."""
        return int(math.ceil((self.end_s - self.start_s) / self.bucket_s))

    def bucket_of(self, time_s: float) -> Optional[int]:
        """Bucket index containing ``time_s``, or ``None`` outside."""
        if not self.start_s <= time_s < self.end_s:
            return None
        return min(
            self.n_buckets - 1,
            int((time_s - self.start_s) / self.bucket_s),
        )

    def affects(self, version: str, time_s: float) -> bool:
        """Whether a completion of ``version`` at ``time_s`` is in scope."""
        if not self.start_s <= time_s < self.end_s:
            return False
        return self.versions is None or version in self.versions


@dataclass(frozen=True)
class ColdStartWave:
    """Freshly provisioned nodes serve degraded for a warmup window.

    A run-long policy: every node that joins an affected pool *after the
    run starts* — an autoscaler scale-up, a crash replacement — serves at
    ``speed_factor`` of its steady-state speed, with answer confidence
    multiplied by ``confidence_factor``, for ``warmup_s`` after joining.
    Capacity that arrives cold is exactly when thundering herds hurt
    most; this event makes that visible.

    Attributes:
        warmup_s: Warmup window length after a node joins its pool.
        speed_factor: Speed multiplier in ``(0, 1]`` while warming.
        confidence_factor: Confidence multiplier in ``[0, 1]`` applied to
            results produced while warming (``1.0`` degrades speed only).
        version: Pool the wave covers; ``None`` covers every pool.
    """

    warmup_s: float
    speed_factor: float = 0.5
    confidence_factor: float = 1.0
    version: Optional[str] = None

    def __post_init__(self) -> None:
        _require_finite("warmup_s", self.warmup_s)
        if self.warmup_s <= 0.0:
            raise ValueError("warmup_s must be positive")
        _require_finite("speed_factor", self.speed_factor)
        if not 0.0 < self.speed_factor <= 1.0:
            raise ValueError("speed_factor must be in (0, 1]")
        _require_rate("confidence_factor", self.confidence_factor)

    def covers(self, version: str) -> bool:
        """Whether nodes joining ``version``'s pool warm up under this wave."""
        return self.version is None or self.version == version


@dataclass(frozen=True)
class ThunderingHerd:
    """An arrival-side outage: held traffic returns as one synchronized surge.

    Requests that would have arrived inside ``[start_s, end_s)`` (clients
    blocked behind an outage, a cache flush, a mobile push) are *held* and
    released together at ``end_s``, compressed into a burst of width
    ``spread_s`` that preserves their original order.  The engine applies
    the transform to generated workloads via
    :class:`~repro.service.simulation.arrivals.ThunderingHerdArrivals`;
    no RNG draws are added, so the same seed yields the same base
    arrivals with and without the herd.

    Attributes:
        start_s: Virtual time the hold window opens.
        end_s: Virtual time held traffic is released.
        spread_s: Width of the release burst (``0`` releases every held
            arrival at exactly ``end_s``).
    """

    start_s: float
    end_s: float
    spread_s: float = 0.05

    def __post_init__(self) -> None:
        _require_window("start_s", self.start_s, "end_s", self.end_s)
        _require_finite("spread_s", self.spread_s)
        if self.spread_s < 0.0:
            raise ValueError("spread_s must be non-negative")


@dataclass(frozen=True)
class RegionPartition:
    """A severed inter-region failover link for a window.

    While the partition is open, the region router's failover plan may
    not spill ``region``'s traffic to ``peer`` (or to *any* peer when
    ``peer`` is ``None``); with ``bidirectional`` (the default) the
    reverse link is severed too.  Requests that needed the link stay in
    their home region and take whatever fate its pools offer — the
    boundary-event stream records the denial.

    This is a topology fault consumed by
    :class:`~repro.service.regions.RegionRouter`, not by an engine
    shard: placing one in a :class:`ScenarioSpec` fault schedule is an
    error (see :func:`affected_versions`).

    Attributes:
        region: Region whose outbound failover link is severed.
        peer: The peer region cut off, or ``None`` for all peers.
        start_s: Virtual time the partition opens.
        end_s: Virtual time the link heals.
        bidirectional: Also sever the reverse (``peer`` -> ``region``)
            link.  With ``peer=None`` this makes the region fully
            isolated: no outbound spillover from it *and* no inbound
            spillover onto it; ``bidirectional=False`` with ``peer=None``
            only blocks its outbound links.
    """

    region: str
    peer: Optional[str] = None
    start_s: float = 0.0
    end_s: float = float("inf")
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if not self.region:
            raise ValueError("a region partition needs a region name")
        if self.peer == self.region:
            raise ValueError("a region cannot be partitioned from itself")
        _require_timestamp("start_s", self.start_s)
        if self.end_s <= self.start_s:
            raise ValueError("end_s must lie after start_s")

    def severs(self, src: str, dst: str, at_s: float) -> bool:
        """Whether the ``src -> dst`` link is down at virtual time ``at_s``."""
        if not self.start_s <= at_s < self.end_s:
            return False
        if self.region == src and self.peer in (None, dst):
            return True
        return bool(
            self.bidirectional
            and self.region == dst
            and self.peer in (None, src)
        )


#: Any schedulable fault.
FaultEvent = Union[
    NodeCrash,
    NodeSlowdown,
    TransientFaults,
    GrayFailure,
    CascadePolicy,
    RetryStorm,
    ColdStartWave,
    ThunderingHerd,
]


def affected_versions(fault: FaultEvent) -> Tuple[str, ...]:
    """Version names a fault event targets (empty = none / every pool).

    The engine validates these against the deployed versions at
    construction, so a typoed pool name fails fast instead of silently
    simulating a healthy run.
    """
    if isinstance(fault, (TransientFaults, RetryStorm)):
        return fault.versions or ()
    if isinstance(fault, (CascadePolicy, ColdStartWave)):
        return (fault.version,) if fault.version is not None else ()
    if isinstance(fault, ThunderingHerd):
        return ()
    if isinstance(fault, RegionPartition):
        raise ValueError(
            "RegionPartition severs inter-region links; it belongs in "
            "MultiRegionSpec.partitions, not in an engine fault schedule"
        )
    return (fault.version,)


@dataclass(frozen=True)
class RetryPolicy:
    """How the load balancer re-drives failed job attempts.

    A job attempt fails when its node crashes mid-batch or a transient
    fault window eats its completion.  While the request has attempts left
    for that version, a new attempt is enqueued (onto a *surviving* node —
    dead nodes leave the pool) after a backoff delay; once attempts are
    exhausted, the request fails terminally unless it is already
    answerable without the failed leg (a confident fast result makes an
    accurate-leg failure harmless under ``conc``/``et``).

    The budget fields bound retry *amplification*: under a retry storm an
    unbounded policy multiplies offered load exactly when capacity is
    already failing.  Every budget defaults to unbounded, so existing
    scenarios (and their golden digests) are untouched; when a budget
    denies a retry the request proceeds as if its attempts were exhausted
    and the denial is recorded (``RequestRecord.retry_denied``, the
    report's ``n_retry_denied``, and the invariant ledger).

    Attributes:
        max_attempts: Total tries per ``(request, version)`` job, including
            the first; ``1`` disables retries.
        backoff_s: Delay before the first retry.
        backoff_factor: Multiplier applied to the delay per further retry
            (``backoff_s * backoff_factor ** (attempt - 1)``).
        retry_budget: Per-request cap on retries scheduled across all of
            the request's legs; ``None`` is unbounded.
        max_inflight_retries: Global cap on retries concurrently waiting
            out their backoff; at the cap a would-be retry is denied.
            ``None`` is unbounded.
        max_total_retries: Global run-wide retry budget; once spent, no
            further retry is ever scheduled.  ``None`` is unbounded.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    retry_budget: Optional[int] = None
    max_inflight_retries: Optional[int] = None
    max_total_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        for label, value in (
            ("retry_budget", self.retry_budget),
            ("max_inflight_retries", self.max_inflight_retries),
            ("max_total_retries", self.max_total_retries),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{label} must be non-negative")

    def delay_before_retry(self, failed_attempt: int) -> float:
        """Backoff before re-driving after ``failed_attempt`` (1-based)."""
        if failed_attempt < 1:
            raise ValueError("failed_attempt is 1-based")
        return self.backoff_s * self.backoff_factor ** (failed_attempt - 1)


@dataclass(frozen=True)
class FaultLogEntry:
    """One fault the engine actually applied (or skipped), for the report.

    Attributes:
        time_s: Virtual time the entry was logged.
        kind: ``"crash"``, ``"recover"``, ``"slowdown"``, ``"restore"``,
            ``"transient-window"``, ``"gray"``, ``"gray-restore"``,
            ``"cascade"``, ``"storm-window"``, ``"cold-start"``,
            ``"warmed"``, ``"herd"`` or ``"skipped"``.
        version: Affected pool.
        node_id: Affected node, when the fault targets one.
        detail: Free-form human-readable context.
    """

    time_s: float
    kind: str
    version: str
    node_id: Optional[str] = None
    detail: str = ""
