"""Seed-stream accounting: every RNG stream the stack derives, audited.

The simulator family derives several generators from one scenario seed —
the engine's arrival/payload stream, the fault generator, per-storm
bucket generators, the control plane's admission generator, and (with
regions) one spawned root seed per shard.  Determinism rests on those
streams being *disjoint*: two consumers sharing a spawn key would see
correlated draws, and a scenario's behaviour would silently depend on
which consumer drew first.

This module is the single registry of the spawn-key constants, an
enumerator that lists every stream a :class:`ScenarioSpec` will open,
and :func:`audit_seed_streams`, which raises when any two streams share
a key.  The regions subsystem calls :func:`spawn_region_seed` to derive
per-shard root seeds and re-audits the union of every shard's streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

__all__ = [
    "ADMISSION_STREAM",
    "FAULT_STREAM",
    "REGION_STREAM",
    "STORM_STREAM",
    "SeedStreamCollision",
    "audit_seed_streams",
    "scenario_stream_keys",
    "spawn_region_seed",
]

#: Spawn-key constants.  These mirror the literals at the RNG
#: construction sites (engine/plane); the audit tests pin that they stay
#: in sync, so a new stream must be registered here to land.
FAULT_STREAM = 0xFA117  #: engine fault generator ``[seed, FAULT_STREAM]``
STORM_STREAM = 0xB1A57  #: per-storm buckets ``[seed, STORM_STREAM, k]``
ADMISSION_STREAM = 0xAD41  #: admission control ``[seed, ADMISSION_STREAM]``
REGION_STREAM = 0x9E610  #: region shard roots ``[seed, REGION_STREAM, i]``

#: Stream key: the integer tuple handed to ``np.random.default_rng`` /
#: ``np.random.SeedSequence``.  A bare engine seed is the 1-tuple
#: ``(seed,)``.
StreamKey = Tuple[int, ...]


class SeedStreamCollision(ValueError):
    """Two RNG consumers derived the same stream key."""


def spawn_region_seed(seed: int, index: int) -> int:
    """Derive the root seed for region shard ``index`` of a multi-region run.

    The shard seed is the first 64-bit word of
    ``SeedSequence([seed, REGION_STREAM, index])`` — a *value*, not a key
    tuple, because the shard then re-derives its own engine/fault/storm/
    admission streams from it exactly as a standalone scenario would.
    That makes a shard's run bit-identical to a plain single-region
    scenario carrying the same root seed, which is what the 1-region
    equivalence test pins.
    """
    sequence = np.random.SeedSequence([seed, REGION_STREAM, index])
    return int(sequence.generate_state(1, np.uint64)[0])


def scenario_stream_keys(
    *,
    seed: int,
    n_storms: int = 0,
    has_probabilistic_faults: bool = False,
    has_control: bool = False,
    prefix: str = "",
) -> Dict[str, StreamKey]:
    """Every RNG stream one engine run opens, as ``name -> key``.

    Mirrors the construction sites: the engine's arrival/payload
    generator is always opened; the fault generator only when
    probabilistic faults (transient windows, storms, cascades) are
    present; one bucket generator per retry storm; the admission
    generator only for closed-loop runs.
    """
    streams: Dict[str, StreamKey] = {f"{prefix}engine": (seed,)}
    if has_probabilistic_faults or n_storms:
        streams[f"{prefix}faults"] = (seed, FAULT_STREAM)
    for k in range(n_storms):
        streams[f"{prefix}storm[{k}]"] = (seed, STORM_STREAM, k)
    if has_control:
        streams[f"{prefix}admission"] = (seed, ADMISSION_STREAM)
    return streams


def streams_for_spec(spec, *, prefix: str = "") -> Dict[str, StreamKey]:
    """:func:`scenario_stream_keys` for a concrete :class:`ScenarioSpec`."""
    from repro.service.simulation.faults import (
        CascadePolicy,
        RetryStorm,
        TransientFaults,
    )

    faults = tuple(spec.faults or ())
    n_storms = sum(isinstance(f, RetryStorm) for f in faults)
    probabilistic = any(
        isinstance(f, (TransientFaults, RetryStorm, CascadePolicy))
        for f in faults
    )
    return scenario_stream_keys(
        seed=spec.seed,
        n_storms=n_storms,
        has_probabilistic_faults=probabilistic,
        has_control=spec.control is not None,
        prefix=prefix,
    )


def audit_seed_streams(
    streams: Mapping[str, StreamKey] | Iterable[Tuple[str, StreamKey]],
) -> Dict[str, StreamKey]:
    """Assert every named stream holds a distinct key.

    Returns the mapping unchanged on success so call sites can audit
    inline (``streams = audit_seed_streams(build_streams(...))``).
    Raises :class:`SeedStreamCollision` naming both colliding consumers
    otherwise.
    """
    items = (
        list(streams.items())
        if isinstance(streams, Mapping)
        else list(streams)
    )
    seen: Dict[StreamKey, str] = {}
    for name, key in items:
        key = tuple(int(part) for part in key)
        other = seen.get(key)
        if other is not None:
            raise SeedStreamCollision(
                f"RNG stream collision: {other!r} and {name!r} both "
                f"derive from spawn key {key}"
            )
        seen[key] = name
    return dict(items)
