"""The columnar hot path of the serving simulator.

The legacy engine is a general discrete-event machine: every request is a
heap-allocated ``_InFlight`` object, every event a closure over an
``Event`` record, every completion a frozen ``NodeCompletion`` dataclass,
and every finalized request a ``RequestRecord`` priced through the full
``PricingModel`` call chain.  That generality is exactly right for the
fault/retry/control state space — and needless for the overwhelmingly
common case that dominates wall time: a fault-free, fixed-configuration,
open-loop load test over a measurement-replay cluster.

``run_columnar`` re-executes that common case with the *same* event
semantics but none of the object machinery:

* request state lives in parallel lists indexed by submission order
  (``ServingSimulator.run`` feeds them as bulk columns without ever
  constructing a ``ServiceRequest``),
* the event heap holds plain tuples (three event kinds — flush,
  single-job completion, batch completion — cover the whole fault-free
  state space; arrivals are a pre-sorted stream merged in without ever
  touching the heap),
* node state is a handful of slots on a shadow struct, written back to
  the real :class:`~repro.service.node.ServiceNode` objects at the end,
* per-request latency/billing/confidence columns are composed with
  vectorized numpy expressions after the loop, and the report is built
  from :class:`~repro.service.simulation.report.RecordColumns` without
  materializing a single ``RequestRecord`` up front.

**Bit-exactness is the contract, not an aspiration.**  Every arithmetic
expression here mirrors the legacy engine's scalar float operations in
the same order (IEEE-754 makes ``a*b``/``a+b`` on float64 identical
whether issued from Python scalars or numpy element-wise kernels), event
ties break exactly as the legacy loop's monotonic sequence numbers break
them (arrivals hold the smallest sequence numbers because the legacy
engine schedules them before any runtime event exists), and quirks such
as the ``oldest_enqueued_at or now`` head-wait guard are reproduced
verbatim.  The differential test harness
(``tests/service/test_engine_differential.py``) holds the two engines to
digest-for-digest equality over the canonical scenarios and a fuzzed
scenario space.

``columnar_ineligibility`` is the gate: anything the fast path does not
model — tier routers, faults, autoscaling, a control plane, non-replay
versions, custom selection policies — returns a human-readable reason
and the engine falls back to the legacy path, which remains the scalar
correctness oracle (the same playbook as ``core/outcome_matrix.py`` for
the rule generator).  Data-dependent conditions (duplicate ids, payloads
outside the measurement table) surface as :class:`ColumnarFallback`
during precomputation, before any real state is touched, and fall back
the same way.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import List, Optional

import numpy as np

from repro.core.errors import PolicyConfigurationError
from repro.core.executor import require_confidence_threshold
from repro.service.load_balancer import (
    JoinShortestQueuePolicy,
    LeastBusyPolicy,
    RoundRobinPolicy,
)
from repro.service.simulation.replay import MeasurementReplayVersion
from repro.service.simulation.report import (
    LoadTestReport,
    RecordColumns,
    RequestRecord,
)

__all__ = ["ColumnarFallback", "columnar_ineligibility", "run_columnar"]

#: Heap events are ``(time, tag, node, info)`` with
#: ``tag = (seq << 2) | code``: packing the event code into the
#: monotonic sequence number keeps heap ordering identical to the legacy
#: ``(time, seq)`` tuples (tags are unique and increase with ``seq``)
#: while saving one tuple slot per event in the hot loop.
_FLUSH = 0
_ONE_DONE = 1
_BATCH_DONE = 2

_SUPPORTED_POLICIES = (
    RoundRobinPolicy,
    JoinShortestQueuePolicy,
    LeastBusyPolicy,
)


class ColumnarFallback(Exception):
    """The columnar precomputation hit a case only the legacy engine
    models faithfully (duplicate ids, unmeasured payloads); the engine
    catches this and re-drains through the legacy path."""


class _ShadowNode:
    """Mutable per-node state of the columnar loop.

    Mirrors exactly the fields of :class:`~repro.service.node.ServiceNode`
    the fault-free event flow reads or writes; the accumulated values are
    written back to the real node when the run drains, so post-run
    introspection (utilization, billing reconciliation, reuse of the
    cluster) sees what the legacy engine would have left behind.
    """

    __slots__ = (
        "real",
        "queue",
        "busy_until",
        "busy_seconds",
        "served",
        "factor",
        "flush_seq",
    )

    def __init__(self, real) -> None:
        self.real = real
        #: Queue entries are ``(submission_index, leg, enqueued_at)``.
        self.queue = deque()
        self.busy_until = 0.0
        self.busy_seconds = real.busy_seconds
        self.served = real.requests_served
        self.factor = real.effective_speed_factor
        #: Sequence number of the armed flush event, ``-1`` when none.
        #: Cancellation is lazy, as in the legacy loop: a popped flush
        #: whose sequence number no longer matches is a stale timer.
        self.flush_seq = -1


def columnar_ineligibility(sim) -> Optional[str]:
    """Why this simulator cannot take the columnar path (``None`` = it can).

    The reasons are deliberately conservative: everything outside the
    modelled state space falls back to the legacy engine, which *is* the
    semantics.  The returned string is surfaced as
    ``ServingSimulator.fallback_reason`` for tests and debugging.
    """
    if sim._router is not None:
        return "router-driven routing"
    if sim._faults:
        # Name the fault classes so a chaos scenario's fallback is
        # attributable: "fault schedule present (GrayFailure, RetryStorm)".
        kinds = sorted({type(fault).__name__ for fault in sim._faults})
        return f"fault schedule present ({', '.join(kinds)})"
    if sim._autoscaler is not None:
        return "autoscaler attached"
    if sim._control is not None:
        return "control plane attached"
    if not sim._submissions and sim._bulk is None:
        return "no requests submitted"
    configuration = sim._configuration
    policy = configuration.policy
    if configuration.kind == "single":
        legs = (policy.versions[0],)
    else:
        try:
            require_confidence_threshold(policy)
        except PolicyConfigurationError:
            return "invalid confidence threshold"
        if policy.fast_version == policy.accurate_version:
            return "degenerate policy (fast == accurate version)"
        legs = (policy.fast_version, policy.accurate_version)
    balancer = sim.cluster.load_balancer
    deployed = set(balancer.versions)
    for version in legs:
        if version not in deployed:
            return f"policy version {version!r} not deployed"
        pool = balancer.nodes_of(version)
        if not pool:
            return f"empty pool for version {version!r}"
        for node in pool:
            if not node.alive:
                return "dead node in pool"
            if not isinstance(node.version, MeasurementReplayVersion):
                return "non-replay service version"
    if type(balancer._policy) not in _SUPPORTED_POLICIES:
        return (
            "unsupported selection policy "
            f"{type(balancer._policy).__name__}"
        )
    return None


def run_columnar(sim, columns) -> LoadTestReport:
    """Drain a columnar-eligible simulator and build its report.

    ``columns`` is the engine's ``(request_ids, payloads, tolerances,
    at_times)`` submission columns, in submission order.  Call only after
    :func:`columnar_ineligibility` returned ``None``; data-level
    ineligibility (duplicate ids, unmeasured payloads) raises
    :class:`ColumnarFallback` before any simulator or cluster state is
    touched.  With invariant checking or record hooks attached the loop
    emits real :class:`RequestRecord` objects at the exact points the
    legacy engine would (telemetry and the checker see an identical
    stream); without them all record materialization is deferred to the
    columnar report.
    """
    cluster = sim.cluster
    balancer = cluster.load_balancer
    configuration = sim._configuration
    policy = configuration.policy
    kind = configuration.kind
    checker = sim._check
    hooks = sim._record_hooks
    slow = bool(hooks) or checker is not None

    if kind == "single":
        fast_version, accurate_version = policy.versions[0], None
        threshold = 0.0
    else:
        fast_version = policy.fast_version
        accurate_version = policy.accurate_version
        threshold = require_confidence_threshold(policy)

    request_ids, payloads, tolerances, times = columns
    n = len(request_ids)
    if len(set(request_ids)) != n:
        raise ColumnarFallback("duplicate request ids")

    # ------------------------------------------------------------------
    # per-leg replay precomputation
    # ------------------------------------------------------------------
    # MeasurementReplayVersion.handle does, per job:
    #     compute_seconds = float(latency_s[row, col]) * baseline_scale
    # and the node divides by its effective speed factor.  float64
    # element-wise multiply is bit-identical to the scalar product, so the
    # whole column is composed up front; the per-node division happens at
    # batch execution (node speed factors may differ within a pool).
    def _leg_columns(version: str):
        replay = balancer.nodes_of(version)[0].version
        ms = replay._measurements
        col = replay._column
        rows_of = replay._rows
        try:
            rows = np.fromiter(
                (rows_of[p] for p in payloads), dtype=np.int64, count=n
            )
        except (KeyError, TypeError):
            raise ColumnarFallback(
                "payload outside the measurement table"
            ) from None
        compute_s = ms.latency_s[rows, col] * replay._baseline_scale
        confidence = ms.confidence[rows, col]
        return compute_s.tolist(), confidence

    compute_fast, conf_fast_np = _leg_columns(fast_version)
    if accurate_version is not None:
        compute_acc, conf_acc_np = _leg_columns(accurate_version)
        # should_escalate is a strict `confidence < threshold`.
        escalates: List[bool] = (conf_fast_np < threshold).tolist()
    else:
        compute_acc = escalates = None  # type: ignore[assignment]
    if slow:
        conf_fast: List[float] = conf_fast_np.tolist()
        conf_acc: List[float] = (
            conf_acc_np.tolist() if accurate_version is not None else None
        )

    # ------------------------------------------------------------------
    # shadow cluster
    # ------------------------------------------------------------------
    pool_fast = [_ShadowNode(node) for node in balancer.nodes_of(fast_version)]
    shadows = list(pool_fast)
    if accurate_version is not None:
        pool_acc = [
            _ShadowNode(node) for node in balancer.nodes_of(accurate_version)
        ]
        shadows += pool_acc
    else:
        pool_acc = []

    # Node selection compiles to one zero-argument closure per leg, with
    # the pool (and, for the dominant two-node pools, the nodes
    # themselves) bound at build time.  Each closure reproduces the
    # corresponding legacy policy's scan exactly: first-best wins, later
    # nodes only on a strict improvement.
    selection = balancer._policy
    rr_states: List[tuple] = []

    def _compile_select(pool, version):
        if isinstance(selection, RoundRobinPolicy):
            n_pool = len(pool)
            state = [selection._cursor.get(version, 0)]
            rr_states.append((version, state))

            def sel_rr():
                index = state[0]
                if index >= n_pool:
                    index = 0
                state[0] = (index + 1) % n_pool
                return pool[index]

            return sel_rr
        if len(pool) == 1:
            only = pool[0]
            return lambda: only
        jsq = isinstance(selection, JoinShortestQueuePolicy)
        if len(pool) == 2:
            first, second = pool
            if jsq:

                def sel_jsq2():
                    depth_first = len(first.queue)
                    depth_second = len(second.queue)
                    if depth_second < depth_first or (
                        depth_second == depth_first
                        and second.busy_until < first.busy_until
                    ):
                        return second
                    return first

                return sel_jsq2

            def sel_lb2():
                if second.busy_seconds < first.busy_seconds:
                    return second
                return first

            return sel_lb2
        if jsq:

            def sel_jsq():
                best = pool[0]
                best_depth = len(best.queue)
                best_busy = best.busy_until
                for node in pool:
                    depth = len(node.queue)
                    if depth < best_depth or (
                        depth == best_depth and node.busy_until < best_busy
                    ):
                        best = node
                        best_depth = depth
                        best_busy = node.busy_until
                return best

            return sel_jsq

        def sel_lb():
            best = pool[0]
            best_busy = best.busy_seconds
            for node in pool:
                if node.busy_seconds < best_busy:
                    best = node
                    best_busy = node.busy_seconds
            return best

        return sel_lb

    select_fast = _compile_select(pool_fast, fast_version)
    select_accurate = (
        _compile_select(pool_acc, accurate_version)
        if accurate_version is not None
        else None
    )

    # The dominant shape — two-node pools under join-shortest-queue —
    # additionally gets its scan inlined at the two hottest call sites in
    # the event loop (arrival fast-leg, sequential escalation), saving a
    # closure call per selection.  Pool membership is static here:
    # eligibility already excluded autoscalers and fault schedules.
    _jsq = isinstance(selection, JoinShortestQueuePolicy)
    fast_a = fast_b = acc_a = acc_b = None
    if _jsq and len(pool_fast) == 2:
        fast_a, fast_b = pool_fast
    if _jsq and len(pool_acc) == 2:
        acc_a, acc_b = pool_acc

    # ------------------------------------------------------------------
    # loop state
    # ------------------------------------------------------------------
    batching = sim._batching
    max_batch = batching.max_batch_size
    max_wait = batching.max_wait_s
    # _maybe_start's epsilon guard, precomposed.
    wait_threshold = max_wait - 1e-12
    batch_time = batching.batch_service_time

    # Arrivals never enter the heap: the legacy engine schedules them all
    # before any runtime event exists, so they hold sequence numbers
    # 0..n-1 and win every time tie.  A stable sort by arrival time gives
    # exactly that order; runtime events count from n.
    order = sorted(range(n), key=times.__getitem__)
    sorted_times = [times[i] for i in order]

    heap: list = []
    seq = n - 1

    fast_done: List[Optional[tuple]] = [None] * n
    acc_done: List[Optional[tuple]] = [None] * n
    acc_node: List[Optional[_ShadowNode]] = [None] * n
    acc_cancelled = bytearray(n)

    #: Finalized rows, in completion order:
    #: (sub, end, escalated, fast_seconds, accurate_seconds, fast_start);
    #: accurate_seconds is -1.0 for "leg not billed" (never negative).
    out: List[tuple] = []
    records: List[RequestRecord] = []

    # ------------------------------------------------------------------
    # event flow (each helper mirrors one legacy engine method)
    # ------------------------------------------------------------------
    def start_batch(node, now):
        # _start_batch for a multi-item batch (callers execute the
        # single-job shape inline): cancel any armed flush, pop up to
        # max_batch items, execute, schedule one completion event at the
        # common finish.  Every caller guarantees the node is idle
        # (busy_until <= now), so the batch starts exactly at `now` — as
        # the legacy node's max(now, busy_until) would resolve.
        nonlocal seq
        node.flush_seq = -1
        queue = node.queue
        k = len(queue)
        if k > max_batch:
            k = max_batch
        factor = node.factor
        items = [queue.popleft() for _ in range(k)]
        solos = [
            (compute_fast[item[0]] if item[1] == 0 else compute_acc[item[0]])
            / factor
            for item in items
        ]
        wall = batch_time(solos)
        finish = now + wall
        node.busy_until = finish
        node.busy_seconds += wall
        node.served += k
        seq += 1
        heappush(
            heap,
            (finish, (seq << 2) | _BATCH_DONE, node, (items, solos, now, wall)),
        )

    def maybe_start(node, now):
        # _maybe_start for a known-idle node with a non-empty queue,
        # including the `oldest_enqueued_at or now` quirk (an enqueue
        # time of exactly 0.0 reads as "no wait").  Callers inline the
        # idle/non-empty guards — they usually fail, and a closure call
        # per failed check is the hot loop's dominant overhead.  The
        # single-job batch (the overwhelmingly common shape) executes
        # right here rather than through start_batch.
        nonlocal seq
        queue = node.queue
        head_enqueued = queue[0][2]
        depth = len(queue)
        if (
            depth >= max_batch
            or max_wait <= 0.0
            or now - (head_enqueued or now) >= wait_threshold
        ):
            if depth == 1 or max_batch == 1:
                node.flush_seq = -1
                sub, leg, _enq = queue.popleft()
                solo = (
                    compute_fast[sub] if leg == 0 else compute_acc[sub]
                ) / node.factor
                finish = now + solo
                node.busy_until = finish
                node.busy_seconds += solo
                node.served += 1
                seq += 1
                heappush(
                    heap,
                    (finish, (seq << 2) | _ONE_DONE, node, (sub, leg, solo, now)),
                )
            else:
                start_batch(node, now)
        elif node.flush_seq < 0:
            seq += 1
            tag = seq << 2  # | _FLUSH
            node.flush_seq = tag
            heappush(heap, (head_enqueued + max_wait, tag, node, None))

    def enqueue_accurate(sub, now):
        # _enqueue_attempt for the accurate leg, on a live pool
        # (parking is unreachable fault-free).
        if checker is not None:
            checker.on_attempt_started(
                request_ids[sub], accurate_version, 1, now
            )
        node = select_accurate()
        node.queue.append((sub, 1, now))
        acc_node[sub] = node
        if node.busy_until <= now:
            maybe_start(node, now)

    def cancel_queued(node, sub, now):
        # _cancel_queued_job: remove the queued accurate job, drop the
        # (possibly stale) flush timer, re-arm from the new queue state.
        queue = node.queue
        for item in queue:
            if item[0] == sub and item[1] == 1:
                queue.remove(item)
                break
        else:
            return False
        node.flush_seq = -1
        if queue and node.busy_until <= now:
            maybe_start(node, now)
        return True

    def emit(sub, end, escalated, fast_s, acc_s, fast_start, now):
        # The slow half of _finalize: a real RequestRecord for the
        # invariant checker and the record hooks, built with the same
        # pricing call chain the legacy engine uses.
        if acc_s >= 0.0:
            node_seconds = {fast_version: fast_s, accurate_version: acc_s}
        else:
            node_seconds = {fast_version: fast_s}
        cost = cluster.cost_of(node_seconds)
        arrival = times[sub]
        record = RequestRecord(
            request_id=request_ids[sub],
            payload=payloads[sub],
            tier=tolerances[sub],
            arrival_s=arrival,
            finished_s=end,
            response_time_s=end - arrival,
            queue_wait_s=fast_start - arrival,
            versions_used=tuple(node_seconds.keys()),
            escalated=escalated,
            invocation_cost=cost.invocation_cost,
            node_seconds=node_seconds,
            failed=False,
            retries=0,
            result=payloads[sub],
            confidence=conf_acc[sub] if escalated else conf_fast[sub],
        )
        records.append(record)
        if checker is not None:
            checker.on_finalized(request_ids[sub], now, failed=False)
        for hook in hooks:
            hook(record, now)

    def deliver(sub, leg, start, finish, amortized, solo, now):
        # _on_job_done + _advance for the fault-free state machine.
        if checker is not None:
            checker.on_attempt_finished(
                request_ids[sub],
                fast_version if leg == 0 else accurate_version,
                1,
                finish,
                "ok",
                seconds=amortized,
            )
        if kind == "single":
            out.append((sub, finish, False, amortized, -1.0, start))
            if slow:
                emit(sub, finish, False, amortized, -1.0, start, now)
            return
        if kind == "seq":
            if leg == 0:
                if escalates[sub]:
                    fast_done[sub] = (start, finish, amortized, solo)
                    enqueue_accurate(sub, now)
                else:
                    out.append((sub, finish, False, amortized, -1.0, start))
                    if slow:
                        emit(sub, finish, False, amortized, -1.0, start, now)
            else:
                fast = fast_done[sub]
                out.append((sub, finish, True, fast[2], amortized, fast[0]))
                if slow:
                    emit(sub, finish, True, fast[2], amortized, fast[0], now)
            return
        # conc / et
        if leg == 0:
            fast_done[sub] = (start, finish, amortized, solo)
            accurate = acc_done[sub]
            if escalates[sub]:
                if accurate is not None:
                    acc_finish = accurate[1]
                    end = finish if finish >= acc_finish else acc_finish
                    out.append((sub, end, True, amortized, accurate[2], start))
                    if slow:
                        emit(sub, end, True, amortized, accurate[2], start, now)
                return
            if kind == "et" and accurate is None and not acc_cancelled[sub]:
                if cancel_queued(acc_node[sub], sub, now):
                    acc_cancelled[sub] = True
                    if checker is not None:
                        checker.on_attempt_finished(
                            request_ids[sub],
                            accurate_version,
                            1,
                            now,
                            "cancelled",
                        )
                    out.append((sub, finish, False, amortized, -1.0, start))
                    if slow:
                        emit(sub, finish, False, amortized, -1.0, start, now)
                    return
                # Already running: let it finish, bill the capped share.
            if accurate is None:
                return
            acc_seconds = accurate[2]
            if kind == "et" and solo < acc_seconds:
                # early_termination_cap: min(accurate, fast solo time)
                acc_seconds = solo
            out.append((sub, finish, False, amortized, acc_seconds, start))
            if slow:
                emit(sub, finish, False, amortized, acc_seconds, start, now)
            return
        # accurate leg of conc/et
        acc_done[sub] = (start, finish, amortized, solo)
        fast = fast_done[sub]
        if fast is None:
            return
        fast_finish = fast[1]
        if escalates[sub]:
            end = fast_finish if fast_finish >= finish else finish
            out.append((sub, end, True, fast[2], amortized, fast[0]))
            if slow:
                emit(sub, end, True, fast[2], amortized, fast[0], now)
        else:
            acc_seconds = amortized
            if kind == "et" and fast[3] < acc_seconds:
                acc_seconds = fast[3]
            out.append((sub, fast_finish, False, fast[2], acc_seconds, fast[0]))
            if slow:
                emit(
                    sub, fast_finish, False, fast[2], acc_seconds, fast[0], now
                )

    both_legs_at_arrival = kind in ("conc", "et")
    # Specialized single-job delivery for the two sequential-flow kinds
    # in fast mode (no checker, no hooks): the same transitions as
    # deliver(), with the call and its branch ladder inlined into the
    # event loop below.
    inline_seq = kind == "seq" and not slow
    inline_single = kind == "single" and not slow
    out_append = out.append

    # ------------------------------------------------------------------
    # the loop (arrival handling inlined — it is the hottest edge)
    # ------------------------------------------------------------------
    pointer = 0
    while pointer < n or heap:
        if pointer < n and (not heap or sorted_times[pointer] <= heap[0][0]):
            now = sorted_times[pointer]
            sub = order[pointer]
            pointer += 1
            if checker is not None:
                checker.on_arrival(request_ids[sub], now)
                checker.on_attempt_started(request_ids[sub], fast_version, 1, now)
            if fast_a is not None:
                depth_a = len(fast_a.queue)
                depth_b = len(fast_b.queue)
                if depth_b < depth_a or (
                    depth_b == depth_a
                    and fast_b.busy_until < fast_a.busy_until
                ):
                    node = fast_b
                else:
                    node = fast_a
            else:
                node = select_fast()
            node.queue.append((sub, 0, now))
            if node.busy_until <= now:
                maybe_start(node, now)
            if both_legs_at_arrival:
                enqueue_accurate(sub, now)
            continue
        event = heappop(heap)
        now = event[0]
        tag = event[1]
        node = event[2]
        code = tag & 3
        if code == _ONE_DONE:
            sub, leg, solo, start = event[3]
            # amortized == wall / 1 == solo (x / 1 is exact)
            if inline_seq:
                if leg == 0:
                    if escalates[sub]:
                        fast_done[sub] = (start, now, solo, solo)
                        if acc_a is not None:
                            depth_a = len(acc_a.queue)
                            depth_b = len(acc_b.queue)
                            if depth_b < depth_a or (
                                depth_b == depth_a
                                and acc_b.busy_until < acc_a.busy_until
                            ):
                                acc = acc_b
                            else:
                                acc = acc_a
                        else:
                            acc = select_accurate()
                        acc.queue.append((sub, 1, now))
                        if acc.busy_until <= now:
                            maybe_start(acc, now)
                    else:
                        out_append((sub, now, False, solo, -1.0, start))
                else:
                    fast = fast_done[sub]
                    out_append((sub, now, True, fast[2], solo, fast[0]))
            elif inline_single:
                out_append((sub, now, False, solo, -1.0, start))
            else:
                deliver(sub, leg, start, now, solo, solo, now)
            if node.queue:
                maybe_start(node, now)
        elif code == _FLUSH:
            if tag != node.flush_seq:
                continue  # stale timer, lazily cancelled
            node.flush_seq = -1
            queue = node.queue
            if queue and node.busy_until <= now:
                # Flush fires mostly on one waiting job — inline it, as
                # maybe_start does (same singleton transition).
                if len(queue) == 1 or max_batch == 1:
                    sub, leg, _enq = queue.popleft()
                    solo = (
                        compute_fast[sub] if leg == 0 else compute_acc[sub]
                    ) / node.factor
                    finish = now + solo
                    node.busy_until = finish
                    node.busy_seconds += solo
                    node.served += 1
                    seq += 1
                    heappush(
                        heap,
                        (
                            finish,
                            (seq << 2) | _ONE_DONE,
                            node,
                            (sub, leg, solo, now),
                        ),
                    )
                else:
                    start_batch(node, now)
        else:
            items, solos, start, wall = event[3]
            k = len(items)
            amortized = wall / k
            for index in range(k):
                item = items[index]
                deliver(
                    item[0], item[1], start, now, amortized,
                    solos[index], now,
                )
            if node.queue:
                maybe_start(node, now)

    if len(out) != n:
        raise RuntimeError(
            f"event loop drained with {n - len(out)} requests unresolved"
        )

    # ------------------------------------------------------------------
    # write-back: the real cluster must end exactly as legacy leaves it
    # ------------------------------------------------------------------
    for shadow in shadows:
        real = shadow.real
        real.busy_until = shadow.busy_until
        real._busy_seconds = shadow.busy_seconds
        real._requests_served = shadow.served
    for version, state in rr_states:
        selection._cursor[version] = state[0]

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    if slow:
        report = LoadTestReport(
            records=records,
            final_pool_sizes=cluster.pool_sizes(),
        )
    else:
        n_out = len(out)
        o_sub, o_end, o_esc, o_fast, o_acc, o_fstart = zip(*out)
        sub_idx = np.fromiter(o_sub, dtype=np.int64, count=n_out)
        finished = np.fromiter(o_end, dtype=np.float64, count=n_out)
        escalated = np.fromiter(o_esc, dtype=bool, count=n_out)
        fast_seconds = np.fromiter(o_fast, dtype=np.float64, count=n_out)
        acc_seconds = np.fromiter(o_acc, dtype=np.float64, count=n_out)
        fast_starts = np.fromiter(o_fstart, dtype=np.float64, count=n_out)
        arrivals = np.asarray(times, dtype=np.float64)[sub_idx]
        tiers = np.asarray(tolerances, dtype=np.float64)[sub_idx]
        # PricingModel.request_cost, vectorized with the same operation
        # order: cost_v = seconds_v * price_v; iaas = fast + accurate
        # (the legacy left fold starts at integer 0, and 0 + x == x,
        # x + 0.0 == x exactly for the non-negative costs here);
        # invocation = fee + markup * iaas.
        pricing = cluster.pricing
        iaas = fast_seconds * pricing.instance_for(
            fast_version
        ).price_per_second
        if accurate_version is not None:
            price_acc = pricing.instance_for(accurate_version).price_per_second
            iaas = iaas + np.where(
                acc_seconds >= 0.0, acc_seconds * price_acc, 0.0
            )
            confidence = np.where(
                escalated,
                conf_acc_np[sub_idx],
                conf_fast_np[sub_idx],
            )
        else:
            confidence = conf_fast_np[sub_idx]
        invocation = pricing.per_request_fee + pricing.markup * iaas
        report_columns = RecordColumns(
            request_ids=[request_ids[i] for i in o_sub],
            payloads=[payloads[i] for i in o_sub],
            tier=tiers,
            arrival_s=arrivals,
            finished_s=finished,
            response_time_s=finished - arrivals,
            queue_wait_s=fast_starts - arrivals,
            escalated=escalated,
            invocation_cost=invocation,
            fast_version=fast_version,
            accurate_version=accurate_version,
            node_seconds_fast=fast_seconds,
            node_seconds_accurate=acc_seconds,
            confidence=confidence,
        )
        report = LoadTestReport.from_columns(
            report_columns, final_pool_sizes=cluster.pool_sizes()
        )

    if checker is not None:
        checker.verify(report, cluster, sim._retry)
    return report
