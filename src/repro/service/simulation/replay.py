"""Measurement-backed service versions for load simulation.

The discrete-event engine needs per-request service times and confidences
for every version a request might touch.  Rather than re-running models
under the virtual clock, versions are *replayed* from a
:class:`~repro.service.measurement.MeasurementSet`: a request's payload
names a measured request id, and the version reports exactly the error,
latency and confidence that were measured for that ``(request, version)``
cell.  This is the same replay substrate the rule generator simulates over
(:mod:`repro.core.simulator`), lifted into the live-serving protocol so
queueing, batching and autoscaling can happen around it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.service.cluster import ClusterDeployment, NodePool
from repro.service.load_balancer import JoinShortestQueuePolicy
from repro.service.measurement import MeasurementSet
from repro.service.node import VersionResult

__all__ = ["MeasurementReplayVersion", "build_replay_cluster", "replay_pools"]


class MeasurementReplayVersion:
    """A :class:`~repro.service.node.ServiceVersion` replaying measurements.

    The request payload must be a measured request id (the convention the
    seed's replay mode already uses); the handler looks up that row and
    reports the measured error/latency/confidence.  Measured latencies were
    recorded *on the version's measured instance type*, so they are scaled
    back to baseline compute-seconds here; a node then divides by its own
    instance's speed factor, and a pool deployed on the measured instance
    type reproduces the measured latency exactly.

    Args:
        measurements: The measurement table to replay.
        version: Which version column this service version serves.
    """

    def __init__(self, measurements: MeasurementSet, version: str) -> None:
        self.name = version
        self._column = measurements.version_index(version)
        # The id->row map depends only on the measurement set's row order,
        # so every version (and every rebuild of the same cluster) shares
        # one dict cached on the set — rebuilding it per version dominated
        # cluster construction for large tables.
        ids = measurements.request_ids
        cached = measurements.__dict__.get("_replay_rows")
        if cached is not None and cached[0] is ids:
            rows = cached[1]
        else:
            rows = {rid: i for i, rid in enumerate(ids)}
            measurements.__dict__["_replay_rows"] = (ids, rows)
        self._rows: Dict[str, int] = rows
        self._measurements = measurements
        self._baseline_scale = measurements.instance_for(version).speed_factor

    def handle(self, request_id: str, payload) -> VersionResult:
        """Replay the measured outcome for the payload's request id."""
        try:
            row = self._rows[payload]
        except (KeyError, TypeError):
            raise KeyError(
                f"payload {payload!r} does not name a measured request id"
            ) from None
        ms = self._measurements
        return VersionResult(
            request_id=request_id,
            version=self.name,
            output=payload,
            error=float(ms.error[row, self._column]),
            confidence=float(ms.confidence[row, self._column]),
            compute_seconds=float(ms.latency_s[row, self._column])
            * self._baseline_scale,
        )


def replay_pools(
    measurements: MeasurementSet,
    pool_sizes: Mapping[str, int],
) -> Dict[str, NodePool]:
    """Build replay node pools for a subset of a set's versions.

    Args:
        measurements: The measurement table to replay.
        pool_sizes: Node count per version to deploy; versions absent from
            the mapping get no pool.
    """
    if not pool_sizes:
        raise ValueError("pool_sizes must name at least one version")
    return {
        version: NodePool(
            version=MeasurementReplayVersion(measurements, version),
            instance_type=measurements.instance_for(version),
            n_nodes=n_nodes,
        )
        for version, n_nodes in pool_sizes.items()
    }


def build_replay_cluster(
    measurements: MeasurementSet,
    pool_sizes: Mapping[str, int],
    *,
    per_request_fee: float = 0.0,
    markup: float = 3.0,
    selection_policy=None,
) -> ClusterDeployment:
    """Deploy a measurement-replay cluster ready for load simulation.

    Args:
        measurements: The measurement table to replay.
        pool_sizes: Node count per version to deploy.
        per_request_fee: Platform fee billed per invocation.
        markup: Consumer-billing markup over raw IaaS cost.
        selection_policy: Within-pool node selection; defaults to
            join-shortest-queue, the sensible choice under load.
    """
    return ClusterDeployment(
        replay_pools(measurements, pool_sizes),
        per_request_fee=per_request_fee,
        markup=markup,
        selection_policy=selection_policy or JoinShortestQueuePolicy(),
    )
