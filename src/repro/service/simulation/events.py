"""Virtual-clock discrete-event machinery.

A tiny, dependency-free event loop: callers schedule callbacks at virtual
timestamps and :meth:`EventLoop.run` fires them in time order, advancing
:attr:`EventLoop.now` as it goes.  Ties break by scheduling order, which
keeps simulations deterministic for a fixed seed.  Events can be cancelled
lazily (a batch-timeout flush that lost its race against a full batch just
becomes a no-op when popped).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "EventLoop"]


class Event:
    """One scheduled callback.

    Attributes:
        time: Virtual firing time.
        kind: Free-form label for debugging/inspection.
        cancelled: When true the event is skipped on pop.
    """

    __slots__ = ("time", "kind", "action", "cancelled")

    def __init__(self, time: float, kind: str, action: Callable[[], None]) -> None:
        self.time = time
        self.kind = kind
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventLoop:
    """A min-heap of events under a monotonically advancing virtual clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    def schedule_at(
        self, time: float, action: Callable[[], None], *, kind: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``.

        Raises:
            ValueError: If ``time`` lies in the virtual past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        event = Event(time, kind, action)
        heapq.heappush(self._heap, (time, next(self._seq), event))
        return event

    def schedule(
        self, delay: float, action: Callable[[], None], *, kind: str = ""
    ) -> Event:
        """Schedule ``action`` after a non-negative virtual ``delay``."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, action, kind=kind)

    def step(self) -> bool:
        """Fire the next non-cancelled event; returns false when empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.action()
            return True
        return False

    def run(
        self, *, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the heap empties (or a bound is hit).

        Args:
            until: Stop before firing any event scheduled after this time.
            max_events: Safety valve on the number of events fired.

        Returns:
            The number of events fired.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            if until is not None and self._heap[0][0] > until:
                break
            if self.step():
                fired += 1
        return fired
