"""Declarative degraded-mode scenarios for the serving simulator.

A :class:`ScenarioSpec` composes everything one load test needs — an
arrival process, a tier mix (node pools plus the ensemble configuration or
router serving them), batching, an autoscaler config, a retry policy and a
timed fault schedule — into one frozen, comparable value.
:func:`run_scenario` inflates a spec against a measurement table and runs
it; the determinism contract is that the same spec, the same measurements
and the same seed always produce a byte-identical
:class:`~repro.service.simulation.report.LoadTestReport` digest.  That
contract is what the golden-trace regression tests in
``tests/service/golden/`` pin down (see ``docs/SCENARIOS.md``).

:func:`canonical_scenarios` ships the six degraded modes every serving
stack should survive — healthy baseline, flash-crowd spike, diurnal wave,
node crash with recovery, straggler, and a flaky window with retries —
defined over :func:`scenario_measurements`, a deterministic two-version
toy measurement set small enough for tests and benchmarks to run in
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.configuration import EnsembleConfiguration
from repro.core.policies import SequentialPolicy, SingleVersionPolicy
from repro.core.router import TierRouter
from repro.service.control.plane import ControlPlane, ControlSpec
from repro.service.measurement import MeasurementSet
from repro.service.request import Objective
from repro.service.simulation.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    PoissonArrivals,
    SpikeArrivals,
)
from repro.service.simulation.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.simulation.batching import BatchingConfig
from repro.service.simulation.engine import ServingSimulator
from repro.service.simulation.faults import (
    CascadePolicy,
    ColdStartWave,
    FaultEvent,
    GrayFailure,
    NodeCrash,
    NodeSlowdown,
    RetryPolicy,
    RetryStorm,
    ThunderingHerd,
    TransientFaults,
)
from repro.service.simulation.replay import build_replay_cluster
from repro.service.simulation.report import LoadTestReport

__all__ = [
    "ScenarioSpec",
    "canonical_scenarios",
    "chaos_scenarios",
    "osfa_configuration",
    "run_scenario",
    "scenario_measurements",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible load-test scenario.

    Attributes:
        name: Scenario identifier (used in reports and golden files).
        arrivals: Offered-load arrival process.
        n_requests: Number of requests to simulate.
        pools: Node count per service version — the tier mix's capacity.
        configuration: Fixed ensemble configuration serving every request
            (mutually exclusive with ``router``).
        router: Tier router serving requests by their annotations.
        tolerance: ``Tolerance`` annotation on every generated request.
        objective: ``Objective`` annotation on every generated request.
        batching: Node-level batching policy (unbatched when ``None``).
        autoscaler_config: When given, a fresh
            :class:`~repro.service.simulation.autoscaler.Autoscaler` with
            this config runs during the scenario.
        retry: How failed job attempts are re-driven.
        faults: Timed fault schedule; empty for a healthy scenario.
        control: When given, the scenario runs closed-loop: a fresh
            :class:`~repro.service.control.plane.ControlPlane` built
            from this spec watches the run's telemetry, sheds or
            degrades arrivals under SLO breach, and (when configured)
            adapts the tier policy online.  ``None`` keeps the run
            open-loop and bit-identical to the pre-control-plane engine.
        seed: Seed for the arrival/payload stream (and, derived from it,
            the transient-fault and admission draws).
    """

    name: str
    arrivals: ArrivalProcess
    n_requests: int
    pools: Mapping[str, int]
    configuration: Optional[EnsembleConfiguration] = None
    router: Optional[TierRouter] = None
    tolerance: float = 0.0
    objective: Objective = Objective.RESPONSE_TIME
    batching: Optional[BatchingConfig] = None
    autoscaler_config: Optional[AutoscalerConfig] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    faults: Tuple[FaultEvent, ...] = ()
    control: Optional[ControlSpec] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if (self.configuration is None) == (self.router is None):
            raise ValueError(
                "supply exactly one of configuration / router"
            )
        if self.n_requests < 1:
            raise ValueError("n_requests must be at least 1")
        if not self.pools:
            raise ValueError("pools must name at least one version")
        for version, n_nodes in self.pools.items():
            if n_nodes < 1:
                raise ValueError(
                    f"pool {version!r} needs at least one node"
                )


def run_scenario(
    spec: ScenarioSpec,
    measurements: MeasurementSet,
    *,
    check_invariants: bool = False,
    selection_policy=None,
    engine=None,
    trace=None,
) -> LoadTestReport:
    """Inflate a scenario against a measurement table and run it.

    Builds a fresh measurement-replay cluster sized to ``spec.pools``, a
    fresh autoscaler when the spec configures one, and a fresh
    :class:`~repro.service.simulation.engine.ServingSimulator` seeded from
    the spec — so repeated calls are independent and bit-identical.

    Args:
        spec: The scenario to run.
        measurements: Measurement table whose versions the spec's pools
            and faults reference.
        check_invariants: Verify the engine's conservation laws at drain
            time (see :mod:`repro.service.simulation.invariants`).
        selection_policy: Within-pool node selection override, forwarded
            to :func:`~repro.service.simulation.replay.build_replay_cluster`
            (join-shortest-queue by default).
        engine: Execution engine override, forwarded to
            :class:`~repro.service.simulation.engine.ServingSimulator`
            (``None`` keeps the simulator's own default resolution).
        trace: Optional trace sink: a
            :class:`~repro.obs.trace.TraceCollector` (wrapped in a
            :class:`~repro.obs.record.SimTraceRecorder` automatically)
            or an already-built recorder.  Strictly opt-in — the report
            and its digest are bit-identical with or without one.
    """
    cluster = build_replay_cluster(
        measurements, dict(spec.pools), selection_policy=selection_policy
    )
    autoscaler = (
        Autoscaler(spec.autoscaler_config)
        if spec.autoscaler_config is not None
        else None
    )
    control = (
        ControlPlane.from_spec(
            spec.control,
            measurements=measurements,
            configuration=spec.configuration,
            router=spec.router,
            seed=spec.seed,
            deployed_versions=tuple(spec.pools),
        )
        if spec.control is not None
        else None
    )
    recorder = trace
    if trace is not None and not hasattr(trace, "on_finalized"):
        from repro.obs.record import SimTraceRecorder

        recorder = SimTraceRecorder(trace)
    simulator = ServingSimulator(
        cluster,
        router=spec.router,
        configuration=spec.configuration,
        batching=spec.batching,
        autoscaler=autoscaler,
        faults=spec.faults,
        retry=spec.retry,
        check_invariants=check_invariants,
        control=control,
        trace=recorder,
        seed=spec.seed,
        engine=engine,
    )
    return simulator.run(
        spec.arrivals,
        spec.n_requests,
        tolerance=spec.tolerance,
        objective=spec.objective,
        payload_ids=measurements.request_ids,
    )


def scenario_measurements(
    *, n_requests: int = 50, seed: int = 7
) -> MeasurementSet:
    """A deterministic two-version toy measurement table.

    Mirrors the shape the paper's services share: a ``fast`` version
    (50 ms, noisy confidence, some error) and a ``slow`` accurate version
    (400 ms, confident, near-zero error), both on the baseline CPU
    instance.  Small enough that the canonical scenarios, the golden
    traces and the resilience benchmark all run in seconds.
    """
    rng = np.random.default_rng(seed)
    ids = tuple(f"r{i:03d}" for i in range(n_requests))
    fast_confidence = rng.uniform(0.2, 1.0, n_requests)
    return MeasurementSet(
        service="scenario-toy",
        request_ids=ids,
        versions=("fast", "slow"),
        error=np.column_stack(
            [
                rng.uniform(0.1, 0.3, n_requests),
                rng.uniform(0.0, 0.05, n_requests),
            ]
        ),
        latency_s=np.column_stack(
            [np.full(n_requests, 0.05), np.full(n_requests, 0.4)]
        ),
        confidence=np.column_stack(
            [fast_confidence, np.full(n_requests, 0.95)]
        ),
        version_instances={"fast": "cpu.medium", "slow": "cpu.medium"},
    )


def _tiered_configuration() -> EnsembleConfiguration:
    """The canonical tier mix: sequential fast-then-accurate at 0.6."""
    return EnsembleConfiguration(
        "scenario_seq", SequentialPolicy("fast", "slow", 0.6)
    )


def osfa_configuration() -> EnsembleConfiguration:
    """The conventional deployment: every request on the accurate version."""
    return EnsembleConfiguration(
        "scenario_osfa", SingleVersionPolicy("slow")
    )


def canonical_scenarios() -> Dict[str, ScenarioSpec]:
    """The six canonical degraded-mode scenarios, keyed by name.

    All are defined over :func:`scenario_measurements` and the
    ``seq(fast, slow, 0.6)`` tier mix; each isolates one failure mode:

    ``baseline``
        Healthy pools under steady Poisson load — the control run, and
        the scenario whose behaviour must stay bit-identical to a plain
        (pre-fault-subsystem) engine run.
    ``spike``
        A 6x flash crowd for 10 virtual seconds.
    ``diurnal``
        A slow day/night wave served by an autoscaled deployment.
    ``node-crash``
        One of two accurate nodes dies mid-batch and is replaced 10
        seconds later; its queued work migrates to the survivor and the
        aborted attempts retry.
    ``straggler``
        One fast node runs 5x slow for a window.
    ``flaky``
        A transient-fault window eats 30 % of fast completions; retries
        with backoff re-drive them.
    """
    tiered = _tiered_configuration
    retry = RetryPolicy(max_attempts=3, backoff_s=0.05)
    return {
        "baseline": ScenarioSpec(
            name="baseline",
            arrivals=PoissonArrivals(3.0),
            n_requests=120,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            seed=11,
        ),
        "spike": ScenarioSpec(
            name="spike",
            arrivals=SpikeArrivals(
                2.0,
                spike_start_s=10.0,
                spike_duration_s=10.0,
                spike_multiplier=6.0,
            ),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            seed=12,
        ),
        "diurnal": ScenarioSpec(
            name="diurnal",
            arrivals=DiurnalArrivals(3.0, amplitude=0.6, period_s=40.0),
            n_requests=150,
            pools={"fast": 1, "slow": 1},
            configuration=tiered(),
            autoscaler_config=AutoscalerConfig(
                min_nodes=1,
                max_nodes=4,
                scale_up_queue_depth=2.0,
                evaluation_interval_s=0.5,
                cooldown_s=1.0,
            ),
            seed=13,
        ),
        "node-crash": ScenarioSpec(
            name="node-crash",
            arrivals=PoissonArrivals(5.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            retry=retry,
            faults=(
                NodeCrash(
                    at_s=6.0, version="slow", node_index=0, recover_at_s=16.0
                ),
            ),
            seed=14,
        ),
        "straggler": ScenarioSpec(
            name="straggler",
            arrivals=PoissonArrivals(3.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            faults=(
                NodeSlowdown(
                    at_s=5.0,
                    version="fast",
                    node_index=0,
                    speed_factor=0.2,
                    until_s=20.0,
                ),
            ),
            seed=15,
        ),
        "flaky": ScenarioSpec(
            name="flaky",
            arrivals=PoissonArrivals(3.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            retry=retry,
            faults=(
                TransientFaults(
                    start_s=5.0,
                    end_s=20.0,
                    failure_probability=0.3,
                    versions=("fast",),
                ),
            ),
            seed=16,
        ),
    }


def chaos_scenarios() -> Dict[str, ScenarioSpec]:
    """The five chaos scenarios, keyed by name — one per new fault type.

    Defined over the same toy measurements and ``seq(fast, slow, 0.6)``
    tier mix as :func:`canonical_scenarios` (which they deliberately do
    not touch: the canonical six stay bit-identical to their goldens).
    Each scenario exercises one failure shape a serving stack must
    degrade through *gracefully*:

    ``gray-failure``
        One fast node turns slow-but-alive for 20 virtual seconds: 3.3x
        latency, confidences silently halved.  Nothing crashes; the
        damage shows up as tail inflation and extra escalations.
    ``cascade``
        An accurate node dies and its death stresses the survivor: for a
        window after the crash, completions on the pool fail with a
        load-conditional probability.
    ``retry-storm``
        A correlated-failure window on the fast tier plus an aggressive
        retry policy — contained by a per-request retry budget and a
        global in-flight-retry cap.
    ``cold-start``
        A flash crowd forces the autoscaler to spawn nodes that serve at
        half speed (and slightly deflated confidence) for a warmup
        window — capacity arrives exactly when it is least useful.
    ``thundering-herd``
        Arrivals inside a 6-second outage window are held and released
        as one synchronized surge.
    """
    tiered = _tiered_configuration
    return {
        "gray-failure": ScenarioSpec(
            name="gray-failure",
            arrivals=PoissonArrivals(3.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            faults=(
                GrayFailure(
                    at_s=5.0,
                    version="fast",
                    node_index=0,
                    speed_factor=0.3,
                    confidence_factor=0.5,
                    until_s=25.0,
                ),
            ),
            seed=21,
        ),
        "cascade": ScenarioSpec(
            name="cascade",
            arrivals=PoissonArrivals(5.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.05),
            faults=(
                NodeCrash(
                    at_s=6.0, version="slow", node_index=0, recover_at_s=20.0
                ),
                CascadePolicy(
                    version="slow",
                    window_s=8.0,
                    base_probability=0.25,
                    load_factor=0.1,
                    max_probability=0.85,
                ),
            ),
            seed=22,
        ),
        "retry-storm": ScenarioSpec(
            name="retry-storm",
            arrivals=PoissonArrivals(4.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            retry=RetryPolicy(
                max_attempts=4,
                backoff_s=0.02,
                retry_budget=2,
                max_inflight_retries=12,
            ),
            faults=(
                RetryStorm(
                    start_s=5.0,
                    end_s=20.0,
                    failure_probability=0.85,
                    bucket_s=0.5,
                    bad_fraction=0.6,
                    versions=("fast",),
                ),
            ),
            seed=23,
        ),
        "cold-start": ScenarioSpec(
            name="cold-start",
            arrivals=SpikeArrivals(
                2.0,
                spike_start_s=8.0,
                spike_duration_s=10.0,
                spike_multiplier=6.0,
            ),
            n_requests=150,
            pools={"fast": 1, "slow": 1},
            configuration=tiered(),
            autoscaler_config=AutoscalerConfig(
                min_nodes=1,
                max_nodes=4,
                scale_up_queue_depth=2.0,
                evaluation_interval_s=0.5,
                cooldown_s=1.0,
            ),
            faults=(
                ColdStartWave(
                    warmup_s=6.0,
                    speed_factor=0.4,
                    confidence_factor=0.8,
                ),
            ),
            seed=24,
        ),
        "thundering-herd": ScenarioSpec(
            name="thundering-herd",
            arrivals=PoissonArrivals(4.0),
            n_requests=150,
            pools={"fast": 2, "slow": 2},
            configuration=tiered(),
            faults=(
                ThunderingHerd(start_s=8.0, end_s=14.0, spread_s=0.25),
            ),
            seed=25,
        ),
    }
