"""Load-test results: per-request records and tail-latency aggregates.

The replay benchmarks report *means* because they ignore contention; under
offered load the interesting numbers are the tail percentiles (p95/p99
response time), the queueing share of latency, throughput, and what the
traffic cost.  :class:`LoadTestReport` aggregates the per-request
:class:`RequestRecord` stream the engine emits, plus the autoscaler's
actions, into exactly those numbers.

Fault-injection scenarios add the degraded-mode views: which requests
failed terminally (availability), how many job attempts were re-driven
(retries), the *goodput* — successful responses per second, the number an
SLO actually cares about — and the log of faults the engine applied.
Latency percentiles are computed over successful requests only; a request
that never got an answer has no response time to rank.

:meth:`LoadTestReport.digest` condenses an entire run — arrival times,
routing decisions, completion order, retries, costs — into one SHA-256
hex string.  Because the engine is bit-deterministic for a fixed seed and
scenario, the digest is the regression currency of the golden-trace test
harness: two runs of the same scenario must digest identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.simulation.autoscaler import ScalingEvent
from repro.service.simulation.faults import FaultLogEntry

__all__ = ["LoadTestReport", "RequestRecord"]


@dataclass(frozen=True)
class RequestRecord:
    """One simulated request's life, from arrival to response.

    Attributes:
        request_id: Simulator-assigned request identifier.
        payload: The measured request id the request replayed.
        tier: Requested tolerance.
        arrival_s: Virtual arrival time.
        finished_s: Virtual time the response became available (for a
            failed request: the time failure became terminal).
        response_time_s: End-to-end latency including queueing.
        queue_wait_s: Time the request's first job waited before starting
            (``0.0`` for a request that failed before any job finished).
        versions_used: Versions that consumed billed node time for the
            request.
        escalated: Whether the ensemble escalated to the accurate version.
        invocation_cost: Amount billed to the consumer (``0.0`` for a
            failed request — failures are not billed).
        node_seconds: Node-seconds consumed per version (amortized over
            batches).
        failed: True when the request failed terminally (attempts
            exhausted, or capacity never recovered).
        retries: Number of re-driven job attempts across the request's
            versions (``0`` on a healthy run).
        shed: True when admission control dropped the request before any
            job ran (closed-loop runs only).  A shed request is neither
            a success nor a terminal failure: the conservation law is
            submitted = completed + failed + shed.
        degraded: True when admission control force-degraded the request
            to the fast tier (it was answered, by a cheaper ensemble
            than routing planned).
        result: The answering version's output (``None`` for a failed
            request).  Excluded from :meth:`LoadTestReport.digest` —
            outputs can be arbitrary objects; behaviour is pinned by the
            routing/billing fields above.
        confidence: The answering version's confidence (``None`` for a
            failed request).
    """

    request_id: str
    payload: object
    tier: float
    arrival_s: float
    finished_s: float
    response_time_s: float
    queue_wait_s: float
    versions_used: Tuple[str, ...]
    escalated: bool
    invocation_cost: float
    node_seconds: Dict[str, float] = field(default_factory=dict)
    failed: bool = False
    retries: int = 0
    result: object = None
    confidence: Optional[float] = None
    shed: bool = False
    degraded: bool = False


@dataclass
class LoadTestReport:
    """Aggregate view of one simulated load test.

    Attributes:
        records: Per-request records, in completion order.
        scaling_events: Actions the autoscaler took (empty without one).
        final_pool_sizes: Node count per version when the test drained.
        offered_rate: Mean offered arrival rate, when known.
        fault_log: Faults the engine applied (empty for a healthy run).
        control_log: Control-plane actions — SLO transitions, policy
            swaps, rollbacks (empty for an open-loop run).
    """

    records: List[RequestRecord]
    scaling_events: List[ScalingEvent] = field(default_factory=list)
    final_pool_sizes: Dict[str, int] = field(default_factory=dict)
    offered_rate: Optional[float] = None
    fault_log: List[FaultLogEntry] = field(default_factory=list)
    control_log: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a load test report needs at least one record")
        self._latencies = np.asarray(
            [
                r.response_time_s
                for r in self.records
                if not r.failed and not r.shed
            ],
            dtype=float,
        )

    # ------------------------------------------------------------------
    # latency (over successful requests)
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of successful response time.

        Returns ``nan`` when every request failed — there is no latency
        distribution to rank.
        """
        if self._latencies.size == 0:
            return float("nan")
        return float(np.percentile(self._latencies, q))

    @property
    def p50_latency_s(self) -> float:
        """Median response time."""
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile response time."""
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile response time."""
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean response time of successful requests."""
        if self._latencies.size == 0:
            return float("nan")
        return float(self._latencies.mean())

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean time a request's first job sat queued before starting."""
        waits = [
            r.queue_wait_s
            for r in self.records
            if not r.failed and not r.shed
        ]
        if not waits:
            return float("nan")
        return float(np.mean(waits))

    # ------------------------------------------------------------------
    # throughput / cost / behaviour
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of resolved requests (successes and terminal failures)."""
        return len(self.records)

    @property
    def n_failed(self) -> int:
        """Number of requests that failed terminally."""
        return sum(1 for r in self.records if r.failed)

    @property
    def n_shed(self) -> int:
        """Number of requests shed by admission control."""
        return sum(1 for r in self.records if r.shed)

    @property
    def n_degraded(self) -> int:
        """Number of answered requests force-degraded to the fast tier."""
        return sum(1 for r in self.records if r.degraded and not r.failed)

    @property
    def availability(self) -> float:
        """Fraction of requests that got an answer.

        Shed requests got none, so they count against availability
        exactly as terminal failures do (submitted = completed +
        failed + shed).
        """
        return 1.0 - (self.n_failed + self.n_shed) / self.n_requests

    @property
    def total_retries(self) -> int:
        """Job attempts re-driven across all requests."""
        return sum(r.retries for r in self.records)

    @property
    def makespan_s(self) -> float:
        """Virtual time from first arrival to last response."""
        first = min(r.arrival_s for r in self.records)
        last = max(r.finished_s for r in self.records)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Resolved requests per virtual second."""
        span = self.makespan_s
        return self.n_requests / span if span > 0.0 else float("inf")

    @property
    def goodput_rps(self) -> float:
        """Successful responses per virtual second (what an SLO counts)."""
        span = self.makespan_s
        successes = self.n_requests - self.n_failed - self.n_shed
        return successes / span if span > 0.0 else float("inf")

    @property
    def total_invocation_cost(self) -> float:
        """Sum billed to consumers across all requests."""
        return float(sum(r.invocation_cost for r in self.records))

    @property
    def mean_invocation_cost(self) -> float:
        """Mean billed cost per resolved request."""
        return self.total_invocation_cost / self.n_requests

    @property
    def total_node_seconds(self) -> Dict[str, float]:
        """Node-seconds billed per version across all requests."""
        totals: Dict[str, float] = {}
        for record in self.records:
            for version, seconds in record.node_seconds.items():
                totals[version] = totals.get(version, 0.0) + seconds
        return totals

    @property
    def escalation_rate(self) -> float:
        """Fraction of requests the ensemble escalated."""
        return float(np.mean([r.escalated for r in self.records]))

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (for tables/JSON)."""
        return {
            "n_requests": self.n_requests,
            "offered_rate_rps": self.offered_rate or float("nan"),
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "availability": self.availability,
            "n_failed": self.n_failed,
            "n_shed": self.n_shed,
            "n_degraded": self.n_degraded,
            "total_retries": self.total_retries,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_latency_s": self.mean_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "mean_invocation_cost": self.mean_invocation_cost,
            "escalation_rate": self.escalation_rate,
            "n_scaling_events": len(self.scaling_events),
            "n_fault_events": len(self.fault_log),
            "n_control_events": len(self.control_log),
        }

    # ------------------------------------------------------------------
    # determinism
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 digest of the run's observable behaviour.

        Covers, per request in completion order: identity, payload, tier,
        arrival and finish times, routing (versions billed), escalation,
        failure, retry count, billed cost and per-version node-seconds
        (with shed/degraded markers on closed-loop records) — plus the
        final pool sizes, the fault log and the control log.  Floats are
        rendered
        at 12 significant digits, which is far below the engine's
        bit-determinism and far above any legitimate behavioural change.
        """
        h = hashlib.sha256()
        for r in self.records:
            seconds = ",".join(
                f"{version}={r.node_seconds[version]:.12e}"
                for version in sorted(r.node_seconds)
            )
            # Shed/degraded markers append only when set, so an
            # open-loop run's digest is byte-identical to the
            # pre-control-plane format (the golden traces stand).
            flags = ("|shed" if r.shed else "") + (
                "|degraded" if r.degraded else ""
            )
            h.update(
                (
                    f"{r.request_id}|{r.payload}|{r.tier:.12e}|"
                    f"{r.arrival_s:.12e}|{r.finished_s:.12e}|"
                    f"{','.join(r.versions_used)}|{int(r.escalated)}|"
                    f"{int(r.failed)}|{r.retries}|"
                    f"{r.invocation_cost:.12e}|{seconds}{flags}\n"
                ).encode()
            )
        for version in sorted(self.final_pool_sizes):
            h.update(f"pool:{version}={self.final_pool_sizes[version]}\n".encode())
        for entry in self.fault_log:
            # node_id is deliberately excluded: node ids come from a
            # process-global counter, so they differ between two runs in
            # the same process even when behaviour is identical.
            h.update(
                (
                    f"fault:{entry.time_s:.12e}|{entry.kind}|{entry.version}|"
                    f"{entry.detail}\n"
                ).encode()
            )
        for entry in self.control_log:
            h.update(
                (
                    f"control:{entry.time_s:.12e}|{entry.kind}|"
                    f"{entry.detail}\n"
                ).encode()
            )
        return h.hexdigest()
