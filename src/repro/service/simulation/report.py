"""Load-test results: per-request records and tail-latency aggregates.

The replay benchmarks report *means* because they ignore contention; under
offered load the interesting numbers are the tail percentiles (p95/p99
response time), the queueing share of latency, throughput, and what the
traffic cost.  :class:`LoadTestReport` aggregates the per-request
:class:`RequestRecord` stream the engine emits, plus the autoscaler's
actions, into exactly those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.simulation.autoscaler import ScalingEvent

__all__ = ["LoadTestReport", "RequestRecord"]


@dataclass(frozen=True)
class RequestRecord:
    """One simulated request's life, from arrival to response.

    Attributes:
        request_id: Simulator-assigned request identifier.
        payload: The measured request id the request replayed.
        tier: Requested tolerance.
        arrival_s: Virtual arrival time.
        finished_s: Virtual time the response became available.
        response_time_s: End-to-end latency including queueing.
        queue_wait_s: Time the request's first job waited before starting.
        versions_used: Versions that consumed node time for the request.
        escalated: Whether the ensemble escalated to the accurate version.
        invocation_cost: Amount billed to the consumer.
        node_seconds: Node-seconds consumed per version (amortized over
            batches).
    """

    request_id: str
    payload: object
    tier: float
    arrival_s: float
    finished_s: float
    response_time_s: float
    queue_wait_s: float
    versions_used: Tuple[str, ...]
    escalated: bool
    invocation_cost: float
    node_seconds: Dict[str, float] = field(default_factory=dict)


@dataclass
class LoadTestReport:
    """Aggregate view of one simulated load test.

    Attributes:
        records: Per-request records, in completion order.
        scaling_events: Actions the autoscaler took (empty without one).
        final_pool_sizes: Node count per version when the test drained.
        offered_rate: Mean offered arrival rate, when known.
    """

    records: List[RequestRecord]
    scaling_events: List[ScalingEvent] = field(default_factory=list)
    final_pool_sizes: Dict[str, int] = field(default_factory=dict)
    offered_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a load test report needs at least one record")
        self._latencies = np.asarray(
            [r.response_time_s for r in self.records], dtype=float
        )

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of end-to-end response time."""
        return float(np.percentile(self._latencies, q))

    @property
    def p50_latency_s(self) -> float:
        """Median response time."""
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile response time."""
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile response time."""
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean response time."""
        return float(self._latencies.mean())

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean time a request's first job sat queued before starting."""
        return float(np.mean([r.queue_wait_s for r in self.records]))

    # ------------------------------------------------------------------
    # throughput / cost / behaviour
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of completed requests."""
        return len(self.records)

    @property
    def makespan_s(self) -> float:
        """Virtual time from first arrival to last response."""
        first = min(r.arrival_s for r in self.records)
        last = max(r.finished_s for r in self.records)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second."""
        span = self.makespan_s
        return self.n_requests / span if span > 0.0 else float("inf")

    @property
    def total_invocation_cost(self) -> float:
        """Sum billed to consumers across all requests."""
        return float(sum(r.invocation_cost for r in self.records))

    @property
    def mean_invocation_cost(self) -> float:
        """Mean billed cost per request."""
        return self.total_invocation_cost / self.n_requests

    @property
    def total_node_seconds(self) -> Dict[str, float]:
        """Node-seconds consumed per version across all requests."""
        totals: Dict[str, float] = {}
        for record in self.records:
            for version, seconds in record.node_seconds.items():
                totals[version] = totals.get(version, 0.0) + seconds
        return totals

    @property
    def escalation_rate(self) -> float:
        """Fraction of requests the ensemble escalated."""
        return float(np.mean([r.escalated for r in self.records]))

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (for tables/JSON)."""
        return {
            "n_requests": self.n_requests,
            "offered_rate_rps": self.offered_rate or float("nan"),
            "throughput_rps": self.throughput_rps,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_latency_s": self.mean_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "mean_invocation_cost": self.mean_invocation_cost,
            "escalation_rate": self.escalation_rate,
            "n_scaling_events": len(self.scaling_events),
        }
