"""Load-test results: per-request records and tail-latency aggregates.

The replay benchmarks report *means* because they ignore contention; under
offered load the interesting numbers are the tail percentiles (p95/p99
response time), the queueing share of latency, throughput, and what the
traffic cost.  :class:`LoadTestReport` aggregates the per-request
:class:`RequestRecord` stream the engine emits, plus the autoscaler's
actions, into exactly those numbers.

Fault-injection scenarios add the degraded-mode views: which requests
failed terminally (availability), how many job attempts were re-driven
(retries), the *goodput* — successful responses per second, the number an
SLO actually cares about — and the log of faults the engine applied.
Latency percentiles are computed over successful requests only; a request
that never got an answer has no response time to rank.

:meth:`LoadTestReport.digest` condenses an entire run — arrival times,
routing decisions, completion order, retries, costs — into one SHA-256
hex string.  Because the engine is bit-deterministic for a fixed seed and
scenario, the digest is the regression currency of the golden-trace test
harness: two runs of the same scenario must digest identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.simulation.autoscaler import ScalingEvent
from repro.service.simulation.faults import FaultLogEntry

__all__ = [
    "Divergence",
    "LoadTestReport",
    "RecordColumns",
    "RequestRecord",
    "first_divergence",
]


@dataclass(frozen=True)
class RequestRecord:
    """One simulated request's life, from arrival to response.

    Attributes:
        request_id: Simulator-assigned request identifier.
        payload: The measured request id the request replayed.
        tier: Requested tolerance.
        arrival_s: Virtual arrival time.
        finished_s: Virtual time the response became available (for a
            failed request: the time failure became terminal).
        response_time_s: End-to-end latency including queueing.
        queue_wait_s: Time the request's first job waited before starting
            (``0.0`` for a request that failed before any job finished).
        versions_used: Versions that consumed billed node time for the
            request.
        escalated: Whether the ensemble escalated to the accurate version.
        invocation_cost: Amount billed to the consumer (``0.0`` for a
            failed request — failures are not billed).
        node_seconds: Node-seconds consumed per version (amortized over
            batches).
        failed: True when the request failed terminally (attempts
            exhausted, or capacity never recovered).
        retries: Number of re-driven job attempts across the request's
            versions (``0`` on a healthy run).
        shed: True when admission control dropped the request before any
            job ran (closed-loop runs only).  A shed request is neither
            a success nor a terminal failure: the conservation law is
            submitted = completed + failed + shed.
        degraded: True when admission control force-degraded the request
            to the fast tier (it was answered, by a cheaper ensemble
            than routing planned).
        retry_denied: True when a retry budget
            (:class:`~repro.service.simulation.faults.RetryPolicy`'s
            ``retry_budget`` / ``max_inflight_retries`` /
            ``max_total_retries``) refused a retry this request's policy
            would otherwise have scheduled.
        result: The answering version's output (``None`` for a failed
            request).  Excluded from :meth:`LoadTestReport.digest` —
            outputs can be arbitrary objects; behaviour is pinned by the
            routing/billing fields above.
        confidence: The answering version's confidence (``None`` for a
            failed request).
    """

    request_id: str
    payload: object
    tier: float
    arrival_s: float
    finished_s: float
    response_time_s: float
    queue_wait_s: float
    versions_used: Tuple[str, ...]
    escalated: bool
    invocation_cost: float
    node_seconds: Dict[str, float] = field(default_factory=dict)
    failed: bool = False
    retries: int = 0
    result: object = None
    confidence: Optional[float] = None
    shed: bool = False
    degraded: bool = False
    retry_denied: bool = False


@dataclass
class LoadTestReport:
    """Aggregate view of one simulated load test.

    Attributes:
        records: Per-request records, in completion order.
        scaling_events: Actions the autoscaler took (empty without one).
        final_pool_sizes: Node count per version when the test drained.
        offered_rate: Mean offered arrival rate, when known.
        fault_log: Faults the engine applied (empty for a healthy run).
        control_log: Control-plane actions — SLO transitions, policy
            swaps, rollbacks (empty for an open-loop run).
        engine_used: Which engine produced the records ("columnar" or
            "legacy"), when the serving simulator stamped it.
        fallback_reason: Why a columnar-requested run fell back to the
            legacy loop (``None`` when no fallback happened).  Like
            ``engine_used`` this describes *how* the run executed, not
            *what* it produced, so neither field enters the digest.
    """

    records: List[RequestRecord]
    scaling_events: List[ScalingEvent] = field(default_factory=list)
    final_pool_sizes: Dict[str, int] = field(default_factory=dict)
    offered_rate: Optional[float] = None
    fault_log: List[FaultLogEntry] = field(default_factory=list)
    control_log: List[object] = field(default_factory=list)
    engine_used: Optional[str] = None
    fallback_reason: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a load test report needs at least one record")
        self._latencies = np.asarray(
            [
                r.response_time_s
                for r in self.records
                if not r.failed and not r.shed
            ],
            dtype=float,
        )

    # ------------------------------------------------------------------
    # latency (over successful requests)
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of successful response time.

        Returns ``nan`` when every request failed — there is no latency
        distribution to rank.
        """
        if self._latencies.size == 0:
            return float("nan")
        return float(np.percentile(self._latencies, q))

    @property
    def p50_latency_s(self) -> float:
        """Median response time."""
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile response time."""
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile response time."""
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean response time of successful requests."""
        if self._latencies.size == 0:
            return float("nan")
        return float(self._latencies.mean())

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean time a request's first job sat queued before starting."""
        waits = [
            r.queue_wait_s
            for r in self.records
            if not r.failed and not r.shed
        ]
        if not waits:
            return float("nan")
        return float(np.mean(waits))

    # ------------------------------------------------------------------
    # throughput / cost / behaviour
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of resolved requests (successes and terminal failures)."""
        return len(self.records)

    @property
    def n_failed(self) -> int:
        """Number of requests that failed terminally."""
        return sum(1 for r in self.records if r.failed)

    @property
    def n_shed(self) -> int:
        """Number of requests shed by admission control."""
        return sum(1 for r in self.records if r.shed)

    @property
    def n_degraded(self) -> int:
        """Number of answered requests force-degraded to the fast tier."""
        return sum(1 for r in self.records if r.degraded and not r.failed)

    @property
    def availability(self) -> float:
        """Fraction of requests that got an answer.

        Shed requests got none, so they count against availability
        exactly as terminal failures do (submitted = completed +
        failed + shed).
        """
        return 1.0 - (self.n_failed + self.n_shed) / self.n_requests

    @property
    def n_retry_denied(self) -> int:
        """Number of requests that had a retry denied by a budget."""
        return sum(1 for r in self.records if r.retry_denied)

    @property
    def total_retries(self) -> int:
        """Job attempts re-driven across all requests."""
        return sum(r.retries for r in self.records)

    @property
    def retry_amplification(self) -> float:
        """Job attempts driven per resolved request (``1.0`` = no retries).

        The storm-containment number: an unbounded retry policy under a
        retry storm multiplies offered load by this factor exactly when
        capacity is already failing.
        """
        return 1.0 + self.total_retries / self.n_requests

    @property
    def makespan_s(self) -> float:
        """Virtual time from first arrival to last response."""
        first = min(r.arrival_s for r in self.records)
        last = max(r.finished_s for r in self.records)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Resolved requests per virtual second."""
        span = self.makespan_s
        return self.n_requests / span if span > 0.0 else float("inf")

    @property
    def goodput_rps(self) -> float:
        """Successful responses per virtual second (what an SLO counts)."""
        span = self.makespan_s
        successes = self.n_requests - self.n_failed - self.n_shed
        return successes / span if span > 0.0 else float("inf")

    @property
    def total_invocation_cost(self) -> float:
        """Sum billed to consumers across all requests."""
        return float(sum(r.invocation_cost for r in self.records))

    @property
    def mean_invocation_cost(self) -> float:
        """Mean billed cost per resolved request."""
        return self.total_invocation_cost / self.n_requests

    @property
    def total_node_seconds(self) -> Dict[str, float]:
        """Node-seconds billed per version across all requests."""
        totals: Dict[str, float] = {}
        for record in self.records:
            for version, seconds in record.node_seconds.items():
                totals[version] = totals.get(version, 0.0) + seconds
        return totals

    @property
    def escalation_rate(self) -> float:
        """Fraction of requests the ensemble escalated."""
        return float(np.mean([r.escalated for r in self.records]))

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (for tables/JSON)."""
        return {
            "n_requests": self.n_requests,
            "offered_rate_rps": self.offered_rate or float("nan"),
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "availability": self.availability,
            "n_failed": self.n_failed,
            "n_shed": self.n_shed,
            "n_degraded": self.n_degraded,
            "n_retry_denied": self.n_retry_denied,
            "total_retries": self.total_retries,
            "retry_amplification": self.retry_amplification,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_latency_s": self.mean_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "mean_invocation_cost": self.mean_invocation_cost,
            "escalation_rate": self.escalation_rate,
            "n_scaling_events": len(self.scaling_events),
            "n_fault_events": len(self.fault_log),
            "n_control_events": len(self.control_log),
        }

    # ------------------------------------------------------------------
    # columnar construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        columns: "RecordColumns",
        *,
        scaling_events: Optional[List[ScalingEvent]] = None,
        final_pool_sizes: Optional[Dict[str, int]] = None,
        offered_rate: Optional[float] = None,
        fault_log: Optional[List[FaultLogEntry]] = None,
        control_log: Optional[List[object]] = None,
    ) -> "LoadTestReport":
        """Build a report directly from dense per-request columns.

        The columnar engine finishes a run holding arrays, not
        :class:`RequestRecord` objects; materializing ~10^5 frozen
        dataclasses just to aggregate them again would throw away most of
        the speedup.  This constructor wires the arrays straight into the
        aggregate machinery (``_latencies`` comes from a masked array
        view) and exposes ``records`` as a lazy sequence that
        materializes a :class:`RequestRecord` only when someone actually
        indexes or iterates it — ``digest()``, ``summary()`` and every
        existing consumer see the exact per-record values the legacy
        engine would have produced.
        """
        if len(columns) == 0:
            raise ValueError("a load test report needs at least one record")
        report = cls.__new__(cls)
        report.records = _ColumnarRecords(columns)
        report.scaling_events = list(scaling_events) if scaling_events else []
        report.final_pool_sizes = (
            dict(final_pool_sizes) if final_pool_sizes else {}
        )
        report.offered_rate = offered_rate
        report.fault_log = list(fault_log) if fault_log else []
        report.control_log = list(control_log) if control_log else []
        report.engine_used = None
        report.fallback_reason = None
        ok = ~(columns.failed | columns.shed)
        report._latencies = np.asarray(
            columns.response_time_s[ok], dtype=float
        )
        return report

    # ------------------------------------------------------------------
    # determinism
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 digest of the run's observable behaviour.

        Covers, per request in completion order: identity, payload, tier,
        arrival and finish times, routing (versions billed), escalation,
        failure, retry count, billed cost and per-version node-seconds
        (with shed/degraded markers on closed-loop records) — plus the
        final pool sizes, the fault log and the control log.  Floats are
        rendered
        at 12 significant digits, which is far below the engine's
        bit-determinism and far above any legitimate behavioural change.
        """
        h = hashlib.sha256()
        for r in self.records:
            seconds = ",".join(
                f"{version}={r.node_seconds[version]:.12e}"
                for version in sorted(r.node_seconds)
            )
            # Shed/degraded/retry-denied markers append only when set, so
            # an open-loop, budget-free run's digest is byte-identical to
            # the pre-control-plane format (the golden traces stand).
            flags = (
                ("|shed" if r.shed else "")
                + ("|degraded" if r.degraded else "")
                + ("|retry-denied" if r.retry_denied else "")
            )
            h.update(
                (
                    f"{r.request_id}|{r.payload}|{r.tier:.12e}|"
                    f"{r.arrival_s:.12e}|{r.finished_s:.12e}|"
                    f"{','.join(r.versions_used)}|{int(r.escalated)}|"
                    f"{int(r.failed)}|{r.retries}|"
                    f"{r.invocation_cost:.12e}|{seconds}{flags}\n"
                ).encode()
            )
        for version in sorted(self.final_pool_sizes):
            h.update(f"pool:{version}={self.final_pool_sizes[version]}\n".encode())
        for entry in self.fault_log:
            # node_id is deliberately excluded: node ids come from a
            # process-global counter, so they differ between two runs in
            # the same process even when behaviour is identical.
            h.update(
                (
                    f"fault:{entry.time_s:.12e}|{entry.kind}|{entry.version}|"
                    f"{entry.detail}\n"
                ).encode()
            )
        for entry in self.control_log:
            h.update(
                (
                    f"control:{entry.time_s:.12e}|{entry.kind}|"
                    f"{entry.detail}\n"
                ).encode()
            )
        return h.hexdigest()


class RecordColumns:
    """Dense per-request state, one array per :class:`RequestRecord` field.

    The columnar engine's end-of-run product: request identity and payload
    stay Python lists (they are arbitrary objects), every numeric field is
    a float64/bool/int64 array in completion order.  A two-leg ensemble
    bills at most two versions per request, so node-seconds are two dense
    columns — ``node_seconds_accurate`` holds ``-1.0`` where the accurate
    leg consumed no billed time (node-seconds are never negative, so the
    sentinel is unambiguous).
    """

    __slots__ = (
        "request_ids",
        "payloads",
        "tier",
        "arrival_s",
        "finished_s",
        "response_time_s",
        "queue_wait_s",
        "escalated",
        "invocation_cost",
        "fast_version",
        "accurate_version",
        "node_seconds_fast",
        "node_seconds_accurate",
        "confidence",
        "failed",
        "retries",
        "shed",
        "degraded",
        "retry_denied",
    )

    def __init__(
        self,
        *,
        request_ids: List[str],
        payloads: List[object],
        tier: np.ndarray,
        arrival_s: np.ndarray,
        finished_s: np.ndarray,
        response_time_s: np.ndarray,
        queue_wait_s: np.ndarray,
        escalated: np.ndarray,
        invocation_cost: np.ndarray,
        fast_version: str,
        accurate_version: Optional[str],
        node_seconds_fast: np.ndarray,
        node_seconds_accurate: np.ndarray,
        confidence: np.ndarray,
        failed: Optional[np.ndarray] = None,
        retries: Optional[np.ndarray] = None,
        shed: Optional[np.ndarray] = None,
        degraded: Optional[np.ndarray] = None,
        retry_denied: Optional[np.ndarray] = None,
    ) -> None:
        n = len(request_ids)
        self.request_ids = request_ids
        self.payloads = payloads
        self.tier = tier
        self.arrival_s = arrival_s
        self.finished_s = finished_s
        self.response_time_s = response_time_s
        self.queue_wait_s = queue_wait_s
        self.escalated = escalated
        self.invocation_cost = invocation_cost
        self.fast_version = fast_version
        self.accurate_version = accurate_version
        self.node_seconds_fast = node_seconds_fast
        self.node_seconds_accurate = node_seconds_accurate
        self.confidence = confidence
        self.failed = failed if failed is not None else np.zeros(n, dtype=bool)
        self.retries = (
            retries if retries is not None else np.zeros(n, dtype=np.int64)
        )
        self.shed = shed if shed is not None else np.zeros(n, dtype=bool)
        self.degraded = (
            degraded if degraded is not None else np.zeros(n, dtype=bool)
        )
        # Retry budgets only matter on faulty runs, which always fall
        # back to the legacy engine — the columnar path never denies a
        # retry, so the default column is all-False.
        self.retry_denied = (
            retry_denied
            if retry_denied is not None
            else np.zeros(n, dtype=bool)
        )

    def __len__(self) -> int:
        return len(self.request_ids)

    def record(self, index: int) -> RequestRecord:
        """Materialize one row as the :class:`RequestRecord` the legacy
        engine would have emitted (all floats converted back to Python
        floats, so formatting and hashing behave identically)."""
        accurate = float(self.node_seconds_accurate[index])
        if self.accurate_version is not None and accurate >= 0.0:
            versions_used: Tuple[str, ...] = (
                self.fast_version,
                self.accurate_version,
            )
            node_seconds = {
                self.fast_version: float(self.node_seconds_fast[index]),
                self.accurate_version: accurate,
            }
        else:
            versions_used = (self.fast_version,)
            node_seconds = {
                self.fast_version: float(self.node_seconds_fast[index])
            }
        return RequestRecord(
            request_id=self.request_ids[index],
            payload=self.payloads[index],
            tier=float(self.tier[index]),
            arrival_s=float(self.arrival_s[index]),
            finished_s=float(self.finished_s[index]),
            response_time_s=float(self.response_time_s[index]),
            queue_wait_s=float(self.queue_wait_s[index]),
            versions_used=versions_used,
            escalated=bool(self.escalated[index]),
            invocation_cost=float(self.invocation_cost[index]),
            node_seconds=node_seconds,
            failed=bool(self.failed[index]),
            retries=int(self.retries[index]),
            result=self.payloads[index],
            confidence=float(self.confidence[index]),
            shed=bool(self.shed[index]),
            degraded=bool(self.degraded[index]),
            retry_denied=bool(self.retry_denied[index]),
        )


class _ColumnarRecords(Sequence):
    """Lazy ``records`` sequence over :class:`RecordColumns`.

    Aggregates that only need arrays never pay for record objects; code
    that iterates ``report.records`` (the digest, the invariant checker,
    tests) gets real :class:`RequestRecord` instances, built on first
    access and cached.
    """

    __slots__ = ("_columns", "_cache")

    def __init__(self, columns: RecordColumns) -> None:
        self._columns = columns
        self._cache: List[Optional[RequestRecord]] = [None] * len(columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        record = self._cache[index]
        if record is None:
            record = self._columns.record(index)
            self._cache[index] = record
        return record

    def __iter__(self) -> Iterator[RequestRecord]:
        for i in range(len(self)):
            yield self[i]


@dataclass(frozen=True)
class Divergence:
    """First observable difference between two reports.

    ``where`` names the stream (``record``, ``pool``, ``fault``,
    ``control`` or ``length``), ``index`` the position in that stream,
    ``field`` the diverging record field (record stream only).
    """

    where: str
    index: Optional[int]
    field: Optional[str]
    left: object
    right: object

    def describe(self, left_name: str = "left", right_name: str = "right") -> str:
        place = f"{self.where}[{self.index}]" if self.index is not None else self.where
        if self.field:
            place += f".{self.field}"
        return (
            f"first divergence at {place}:\n"
            f"  {left_name:>8}: {self.left!r}\n"
            f"  {right_name:>8}: {self.right!r}"
        )


#: Record fields the digest covers, compared in digest order.
_DIGEST_RECORD_FIELDS = (
    "request_id",
    "payload",
    "tier",
    "arrival_s",
    "finished_s",
    "versions_used",
    "escalated",
    "failed",
    "retries",
    "invocation_cost",
    "node_seconds",
    "shed",
    "degraded",
    "retry_denied",
)

_FLOAT_RECORD_FIELDS = frozenset({"tier", "arrival_s", "finished_s", "invocation_cost"})


def _render_field(name: str, value: object) -> str:
    """Render a record field exactly as :meth:`LoadTestReport.digest` does,
    so ``first_divergence`` flags precisely what the digest flags."""
    if name in _FLOAT_RECORD_FIELDS:
        return f"{value:.12e}"
    if name == "node_seconds":
        return ",".join(f"{v}={value[v]:.12e}" for v in sorted(value))
    if name == "versions_used":
        return ",".join(value)
    if name in ("escalated", "failed", "shed", "degraded", "retry_denied"):
        return str(int(value))
    return str(value)


def first_divergence(
    left: LoadTestReport, right: LoadTestReport
) -> Optional[Divergence]:
    """Locate the first digest-visible difference between two reports.

    Walks the record stream field by field (in digest rendering, so a
    sub-last-significant-digit float wiggle that the digest would not see
    is not reported), then the pool sizes, the fault log and the control
    log.  Returns ``None`` when the two reports digest identically.
    """
    n = min(len(left.records), len(right.records))
    for i in range(n):
        record_l, record_r = left.records[i], right.records[i]
        for name in _DIGEST_RECORD_FIELDS:
            value_l = getattr(record_l, name)
            value_r = getattr(record_r, name)
            if _render_field(name, value_l) != _render_field(name, value_r):
                return Divergence("record", i, name, value_l, value_r)
    if len(left.records) != len(right.records):
        return Divergence(
            "length", None, "n_records", len(left.records), len(right.records)
        )
    if left.final_pool_sizes != right.final_pool_sizes:
        return Divergence(
            "pool", None, None, left.final_pool_sizes, right.final_pool_sizes
        )
    for i, (entry_l, entry_r) in enumerate(
        zip(left.fault_log, right.fault_log)
    ):
        key_l = (f"{entry_l.time_s:.12e}", entry_l.kind, entry_l.version, entry_l.detail)
        key_r = (f"{entry_r.time_s:.12e}", entry_r.kind, entry_r.version, entry_r.detail)
        if key_l != key_r:
            return Divergence("fault", i, None, entry_l, entry_r)
    if len(left.fault_log) != len(right.fault_log):
        return Divergence(
            "length", None, "n_faults", len(left.fault_log), len(right.fault_log)
        )
    for i, (entry_l, entry_r) in enumerate(
        zip(left.control_log, right.control_log)
    ):
        key_l = (f"{entry_l.time_s:.12e}", entry_l.kind, entry_l.detail)
        key_r = (f"{entry_r.time_s:.12e}", entry_r.kind, entry_r.detail)
        if key_l != key_r:
            return Divergence("control", i, None, entry_l, entry_r)
    if len(left.control_log) != len(right.control_log):
        return Divergence(
            "length",
            None,
            "n_control",
            len(left.control_log),
            len(right.control_log),
        )
    return None
