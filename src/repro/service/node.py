"""Service nodes and the service-version protocol they host.

A *service version* is one concrete model configuration (an ASR beam-search
configuration, a CNN, or a calibrated profile) that knows how to process a
request payload and report what it cost.  A *service node* is one rented
machine running one service version; the node applies its instance type's
speed factor to the version's baseline latency, which is how the same
version gets cheaper-but-slower or pricier-but-faster depending on where it
is deployed.

Nodes expose an async-style **submit/drain** interface: work is enqueued
onto a per-node FIFO queue with :meth:`ServiceNode.submit` and executed —
optionally in batches — by :meth:`ServiceNode.drain` or, one batch at a
time, by :meth:`ServiceNode.pop_batch` / :meth:`ServiceNode.execute_batch`.
The synchronous :meth:`ServiceNode.process` call is kept for the replay
path and delegates to the queueing primitives; the discrete-event engine in
:mod:`repro.service.simulation` drives the same primitives under a virtual
clock so queueing delay and batching become observable.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Protocol, Tuple

from repro.service.instances import InstanceType

__all__ = [
    "CallableVersion",
    "NodeCompletion",
    "QueuedRequest",
    "ServiceNode",
    "ServiceVersion",
    "VersionResult",
]


@dataclass(frozen=True)
class VersionResult:
    """What one service version reports after processing one request.

    Attributes:
        request_id: Identifier of the processed request.
        version: Name of the service version that produced the result.
        output: The model output (transcript, class id, ...).
        error: The result's error against the reference (WER or top-1
            error); ``None`` when no reference is available.
        confidence: Model confidence in ``[0, 1]``.
        compute_seconds: Baseline node-seconds of compute on a
            speed-factor-1.0 node.
    """

    request_id: str
    version: str
    output: Any
    error: Optional[float]
    confidence: float
    compute_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        if self.compute_seconds < 0.0:
            raise ValueError("compute_seconds must be non-negative")


class ServiceVersion(Protocol):
    """Protocol every hostable model version implements."""

    name: str

    def handle(self, request_id: str, payload: Any) -> VersionResult:
        """Process one request payload and report the outcome."""
        ...


class CallableVersion:
    """Adapts a plain callable into a :class:`ServiceVersion`.

    Args:
        name: Version name.
        handler: Callable ``(request_id, payload) -> VersionResult``.
    """

    def __init__(
        self, name: str, handler: Callable[[str, Any], VersionResult]
    ) -> None:
        self.name = name
        self._handler = handler

    def handle(self, request_id: str, payload: Any) -> VersionResult:
        """Delegate to the wrapped callable."""
        result = self._handler(request_id, payload)
        if result.version != self.name:
            raise ValueError(
                f"handler for version {self.name!r} returned a result labelled "
                f"{result.version!r}"
            )
        return result


@dataclass(frozen=True)
class QueuedRequest:
    """One unit of work waiting in a node's FIFO queue.

    Attributes:
        request_id: Identifier of the queued request.
        payload: Opaque payload the node's version understands.
        enqueued_at: Virtual time the request joined the queue.
    """

    request_id: str
    payload: Any
    enqueued_at: float = 0.0


@dataclass(frozen=True)
class NodeCompletion:
    """One request's completion record after a node executed its batch.

    Attributes:
        result: The version's result for the request.
        service_time_s: Wall service time of the *batch* the request rode in
            (equal to :attr:`solo_time_s` for unbatched execution).
        solo_time_s: What the request would have taken alone on this node.
        started_at: Virtual time the batch started executing.
        finished_at: Virtual time the batch finished.
        batch_size: Number of requests in the batch.
    """

    result: VersionResult
    service_time_s: float
    solo_time_s: float
    started_at: float
    finished_at: float
    batch_size: int = 1

    @property
    def amortized_seconds(self) -> float:
        """The request's share of the batch's node-seconds."""
        return self.service_time_s / self.batch_size


class ServiceNode:
    """One machine instance hosting one service version.

    Args:
        version: The hosted service version.
        instance_type: The machine type the node is rented on.
        node_id: Optional explicit node identifier (auto-generated
            otherwise).
    """

    _ids = itertools.count()

    def __init__(
        self,
        version: ServiceVersion,
        instance_type: InstanceType,
        *,
        node_id: Optional[str] = None,
    ) -> None:
        self.version = version
        self.instance_type = instance_type
        self.node_id = node_id or f"node_{next(self._ids):04d}"
        self._busy_seconds = 0.0
        self._requests_served = 0
        self._queue: Deque[QueuedRequest] = deque()
        #: Virtual time at which the node finishes its current work.
        self.busy_until = 0.0
        #: False once the node has crashed; a dead node must not be routed
        #: to (the load balancer filters it out) or execute work.
        self.alive = True
        #: Fault-injection multiplier on the node's effective speed; a
        #: straggler runs with ``speed_scale < 1``.
        self._speed_scale = 1.0

    # ------------------------------------------------------------------
    # health and degradation (fault injection)
    # ------------------------------------------------------------------
    @property
    def speed_scale(self) -> float:
        """Current fault-injection multiplier on the node's speed."""
        return self._speed_scale

    def set_speed_scale(self, scale: float) -> None:
        """Degrade (or restore) the node's speed by a multiplier.

        Applies to batches started afterwards; a batch already running
        keeps its finish time.
        """
        if scale <= 0.0:
            raise ValueError("speed scale must be positive")
        self._speed_scale = scale

    @property
    def effective_speed_factor(self) -> float:
        """Instance speed factor degraded by the current slowdown."""
        return self.instance_type.speed_factor * self._speed_scale

    def kill(self, *, now: float, aborted_requests: int = 0) -> None:
        """Crash the node at virtual time ``now``.

        Any work scheduled to finish after ``now`` is aborted: the busy
        time not yet elapsed is refunded (the machine stops billing the
        moment it dies) and the aborted requests leave the served counter.
        The caller (the simulation engine) is responsible for re-driving
        the aborted work elsewhere; a dead node refuses new work.
        """
        self.alive = False
        if self.busy_until > now:
            self._busy_seconds -= self.busy_until - now
            self.busy_until = now
        self._requests_served -= aborted_requests

    # ------------------------------------------------------------------
    # queueing interface (consumed by the replay path and the simulator)
    # ------------------------------------------------------------------
    def submit(self, request_id: str, payload: Any, *, now: float = 0.0) -> None:
        """Enqueue one request on the node's FIFO queue.

        Raises:
            RuntimeError: If the node has crashed.
        """
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is dead")
        self._queue.append(QueuedRequest(request_id, payload, enqueued_at=now))

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting in the queue (excluding running work)."""
        return len(self._queue)

    @property
    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue time of the request at the head of the queue, if any."""
        return self._queue[0].enqueued_at if self._queue else None

    def cancel(self, request_id: str) -> bool:
        """Remove a not-yet-started request from the queue.

        Returns:
            ``True`` if the request was still queued and has been removed;
            ``False`` if it already started (or was never submitted here).
        """
        for item in self._queue:
            if item.request_id == request_id:
                self._queue.remove(item)
                return True
        return False

    def requeue(self, item: QueuedRequest) -> None:
        """Insert a previously dequeued request, preserving FIFO order.

        Used when work migrates between nodes (pool scale-down): the item
        is placed by its original ``enqueued_at`` so the head of the queue
        stays the oldest request and flush deadlines remain correct.
        """
        position = len(self._queue)
        for i, existing in enumerate(self._queue):
            if existing.enqueued_at > item.enqueued_at:
                position = i
                break
        self._queue.insert(position, item)

    def pop_batch(self, max_size: int = 1) -> List[QueuedRequest]:
        """Dequeue up to ``max_size`` requests in FIFO order."""
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        batch: List[QueuedRequest] = []
        while self._queue and len(batch) < max_size:
            batch.append(self._queue.popleft())
        return batch

    def execute_batch(
        self,
        batch: List[QueuedRequest],
        *,
        now: float = 0.0,
        batching=None,
    ) -> List[NodeCompletion]:
        """Execute a popped batch, advancing the node's virtual clock.

        The batch starts at ``max(now, busy_until)``; its wall service time
        is the slowest member's solo time for unbatched execution, or the
        sublinear batch model of ``batching`` (a
        :class:`~repro.service.simulation.batching.BatchingConfig`) when
        given.  Busy time and request counters accumulate as in
        :meth:`process`.

        Args:
            batch: Requests popped with :meth:`pop_batch`.
            now: Current virtual time.
            batching: Optional batching config supplying the batch latency
                model.
        """
        if not batch:
            raise ValueError("cannot execute an empty batch")
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is dead")
        results = [
            self.version.handle(item.request_id, item.payload) for item in batch
        ]
        solo_times = [
            result.compute_seconds / self.effective_speed_factor
            for result in results
        ]
        if batching is not None and len(batch) > 1:
            wall = batching.batch_service_time(solo_times)
        else:
            wall = max(solo_times)
        start = max(now, self.busy_until)
        finish = start + wall
        self.busy_until = finish
        self._busy_seconds += wall
        self._requests_served += len(batch)
        return [
            NodeCompletion(
                result=result,
                service_time_s=wall,
                solo_time_s=solo,
                started_at=start,
                finished_at=finish,
                batch_size=len(batch),
            )
            for result, solo in zip(results, solo_times)
        ]

    def drain(self, *, now: float = 0.0, batching=None) -> List[NodeCompletion]:
        """Execute everything queued, one FIFO batch after another.

        This is the replay-path counterpart of the event engine's paced
        execution: all queued work runs back to back in virtual time.

        Args:
            now: Virtual time draining starts.
            batching: Optional batching config; without it every request
                runs alone.
        """
        completions: List[NodeCompletion] = []
        max_size = batching.max_batch_size if batching is not None else 1
        while self._queue:
            batch = self.pop_batch(max_size)
            completions.extend(
                self.execute_batch(batch, now=now, batching=batching)
            )
        return completions

    # ------------------------------------------------------------------
    # synchronous replay interface
    # ------------------------------------------------------------------
    def process(self, request_id: str, payload: Any) -> Tuple[VersionResult, float]:
        """Process a request and return ``(result, wall_latency_s)``.

        The wall latency is the version's baseline compute divided by the
        node's speed factor; the node also accumulates busy time so a
        deployment can report utilisation and IaaS spend.  Internally this
        delegates to :meth:`submit` / :meth:`drain`, so replayed and
        simulated requests share one execution path.

        Raises:
            RuntimeError: If work is already queued on the node — the
                synchronous path must not silently execute and discard
                someone else's pending requests; drain the queue first.
        """
        if self._queue:
            raise RuntimeError(
                f"node {self.node_id} has {len(self._queue)} queued "
                "request(s); drain() them before calling process()"
            )
        self.submit(request_id, payload, now=self.busy_until)
        completion = self.drain(now=self.busy_until)[-1]
        return completion.result, completion.service_time_s

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def busy_seconds(self) -> float:
        """Total node-seconds spent processing so far."""
        return self._busy_seconds

    @property
    def requests_served(self) -> int:
        """Number of requests this node has processed."""
        return self._requests_served

    @property
    def accumulated_cost(self) -> float:
        """IaaS cost of the node time consumed so far."""
        return self._busy_seconds * self.instance_type.price_per_second

    def reset_accounting(self) -> None:
        """Zero the busy-time and request counters and the virtual clock."""
        self._busy_seconds = 0.0
        self._requests_served = 0
        self.busy_until = 0.0
