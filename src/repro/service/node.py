"""Service nodes and the service-version protocol they host.

A *service version* is one concrete model configuration (an ASR beam-search
configuration, a CNN, or a calibrated profile) that knows how to process a
request payload and report what it cost.  A *service node* is one rented
machine running one service version; the node applies its instance type's
speed factor to the version's baseline latency, which is how the same
version gets cheaper-but-slower or pricier-but-faster depending on where it
is deployed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol

from repro.service.instances import InstanceType

__all__ = ["CallableVersion", "ServiceNode", "ServiceVersion", "VersionResult"]


@dataclass(frozen=True)
class VersionResult:
    """What one service version reports after processing one request.

    Attributes:
        request_id: Identifier of the processed request.
        version: Name of the service version that produced the result.
        output: The model output (transcript, class id, ...).
        error: The result's error against the reference (WER or top-1
            error); ``None`` when no reference is available.
        confidence: Model confidence in ``[0, 1]``.
        compute_seconds: Baseline node-seconds of compute on a
            speed-factor-1.0 node.
    """

    request_id: str
    version: str
    output: Any
    error: Optional[float]
    confidence: float
    compute_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        if self.compute_seconds < 0.0:
            raise ValueError("compute_seconds must be non-negative")


class ServiceVersion(Protocol):
    """Protocol every hostable model version implements."""

    name: str

    def handle(self, request_id: str, payload: Any) -> VersionResult:
        """Process one request payload and report the outcome."""
        ...


class CallableVersion:
    """Adapts a plain callable into a :class:`ServiceVersion`.

    Args:
        name: Version name.
        handler: Callable ``(request_id, payload) -> VersionResult``.
    """

    def __init__(
        self, name: str, handler: Callable[[str, Any], VersionResult]
    ) -> None:
        self.name = name
        self._handler = handler

    def handle(self, request_id: str, payload: Any) -> VersionResult:
        """Delegate to the wrapped callable."""
        result = self._handler(request_id, payload)
        if result.version != self.name:
            raise ValueError(
                f"handler for version {self.name!r} returned a result labelled "
                f"{result.version!r}"
            )
        return result


class ServiceNode:
    """One machine instance hosting one service version.

    Args:
        version: The hosted service version.
        instance_type: The machine type the node is rented on.
        node_id: Optional explicit node identifier (auto-generated
            otherwise).
    """

    _ids = itertools.count()

    def __init__(
        self,
        version: ServiceVersion,
        instance_type: InstanceType,
        *,
        node_id: Optional[str] = None,
    ) -> None:
        self.version = version
        self.instance_type = instance_type
        self.node_id = node_id or f"node_{next(self._ids):04d}"
        self._busy_seconds = 0.0
        self._requests_served = 0

    def process(self, request_id: str, payload: Any) -> tuple[VersionResult, float]:
        """Process a request and return ``(result, wall_latency_s)``.

        The wall latency is the version's baseline compute divided by the
        node's speed factor; the node also accumulates busy time so a
        deployment can report utilisation and IaaS spend.
        """
        result = self.version.handle(request_id, payload)
        latency = result.compute_seconds / self.instance_type.speed_factor
        self._busy_seconds += latency
        self._requests_served += 1
        return result, latency

    @property
    def busy_seconds(self) -> float:
        """Total node-seconds spent processing so far."""
        return self._busy_seconds

    @property
    def requests_served(self) -> int:
        """Number of requests this node has processed."""
        return self._requests_served

    @property
    def accumulated_cost(self) -> float:
        """IaaS cost of the node time consumed so far."""
        return self._busy_seconds * self.instance_type.price_per_second

    def reset_accounting(self) -> None:
        """Zero the busy-time and request counters."""
        self._busy_seconds = 0.0
        self._requests_served = 0
