"""Seeded resampling utilities: bootstrap, subsampling and k-fold splits.

The routing-rule generator (paper Fig. 7) repeatedly *subsamples* the
training data, simulates a candidate configuration on the subsample, and
keeps going until the observed spread of the metrics is statistically
confident.  The evaluation additionally uses 10-fold cross validation to
audit the accuracy guarantees on held-out requests.  All of the index-level
machinery for that lives here so that it can be tested in isolation.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "bootstrap_indices",
    "bootstrap_statistic",
    "kfold_indices",
    "subsample_indices",
]


def _validate_population(n: int) -> None:
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")


def bootstrap_indices(
    n: int, size: int | None = None, *, rng: np.random.Generator
) -> np.ndarray:
    """Draw a bootstrap sample of indices (with replacement).

    Args:
        n: Population size.
        size: Sample size; defaults to ``n``.
        rng: Seeded NumPy generator.

    Returns:
        An integer array of indices in ``[0, n)``.
    """
    _validate_population(n)
    if size is None:
        size = n
    if size <= 0:
        raise ValueError(f"sample size must be positive, got {size}")
    return rng.integers(0, n, size=size)


def subsample_indices(
    n: int, size: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Draw a subsample of indices *without* replacement.

    This is the sampling mode the routing-rule generator uses for each
    bootstrap trial: a random ``len(train)/10`` slice of the training data.

    Args:
        n: Population size.
        size: Subsample size, clipped to ``[1, n]``.
        rng: Seeded NumPy generator.
    """
    _validate_population(n)
    size = int(min(max(size, 1), n))
    return rng.choice(n, size=size, replace=False)


def bootstrap_statistic(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    *,
    trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Compute a statistic over ``trials`` bootstrap resamples of ``values``.

    Args:
        values: The observed sample.
        statistic: Reduction applied to each resample (e.g. ``np.mean``).
        trials: Number of bootstrap resamples.
        rng: Seeded NumPy generator.

    Returns:
        Array of ``trials`` statistic values.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    out = np.empty(trials, dtype=float)
    for i in range(trials):
        idx = bootstrap_indices(arr.size, rng=rng)
        out[i] = float(statistic(arr[idx]))
    return out


def kfold_indices(
    n: int, folds: int, *, rng: np.random.Generator | None = None
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split ``range(n)`` into ``folds`` (train, test) index pairs.

    The split is a shuffled partition: every index appears in exactly one
    test fold.  Fold sizes differ by at most one.

    Args:
        n: Population size.
        folds: Number of folds; must satisfy ``2 <= folds <= n``.
        rng: Optional seeded generator.  When omitted the split is the
            unshuffled contiguous partition (deterministic).

    Returns:
        A list of ``folds`` tuples ``(train_idx, test_idx)``.
    """
    _validate_population(n)
    if folds < 2:
        raise ValueError(f"need at least 2 folds, got {folds}")
    if folds > n:
        raise ValueError(f"cannot split {n} items into {folds} folds")
    order = np.arange(n)
    if rng is not None:
        order = rng.permutation(n)
    splits = np.array_split(order, folds)
    pairs: List[Tuple[np.ndarray, np.ndarray]] = []
    for i, test_idx in enumerate(splits):
        train_idx = np.concatenate([splits[j] for j in range(folds) if j != i])
        pairs.append((np.sort(train_idx), np.sort(test_idx)))
    return pairs
