"""Descriptive statistics helpers.

These helpers wrap a handful of NumPy reductions behind small, explicit
functions so that the rest of the code base never has to worry about empty
sequences, mixed int/float inputs, or NaN propagation rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "StreamingMoments",
    "Summary",
    "geometric_mean",
    "percentile",
    "summarize",
]


@dataclass(frozen=True)
class Summary:
    """A compact five-number-plus summary of a sample.

    Attributes:
        count: Number of observations.
        mean: Arithmetic mean.
        std: Population standard deviation (``ddof=0``).
        minimum: Smallest observation.
        p50: Median.
        p90: 90th percentile.
        p99: 99th percentile.
        maximum: Largest observation.
    """

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (JSON-friendly)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Summarise a sample of numbers.

    Args:
        values: Any iterable of finite numbers.  Must be non-empty.

    Returns:
        A :class:`Summary` of the sample.

    Raises:
        ValueError: If the sample is empty.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile of ``values``.

    Args:
        values: Non-empty sequence of numbers.
        q: Percentile in ``[0, 100]``.

    Raises:
        ValueError: If ``values`` is empty or ``q`` is out of range.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(arr, q))


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of strictly positive values.

    Raises:
        ValueError: If the sample is empty or contains non-positive values.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(arr <= 0.0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


class StreamingMoments:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Useful for aggregating per-request measurements without keeping every
    observation in memory, e.g. inside the service load balancer.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold a new observation into the running moments."""
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        """Fold a batch of observations into the running moments."""
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Running population variance (0.0 when fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Running population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = StreamingMoments()
        total = self._count + other._count
        if total == 0:
            return merged
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / total
        )
        return merged
