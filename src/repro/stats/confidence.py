"""Confidence tests used by the routing-rule generator.

The generator in the paper (Fig. 7) keeps running bootstrap trials of a
candidate ensemble configuration until, for every metric (error degradation,
response time, cost), the observed trial values have spread "enough": the
z-scores of the trial values must straddle the normal quantile implied by the
requested confidence level, or span more than twice that quantile.  Once the
spread condition holds, the *worst* observed value is recorded as the
configuration's worst-case estimate.

This module implements that spread test as an explicit, documented function
so it can be unit- and property-tested independent of the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

__all__ = [
    "ConfidenceTest",
    "normal_quantile",
    "spread_is_confident",
    "zscores",
]

#: Relative noise floor below which a sample's spread is treated as zero.
#: A constant sample whose mean subtraction leaves float dust has
#: ``std ~ eps * |value|`` (~1e-16 relative); genuine bootstrap-metric
#: spread is many orders of magnitude larger.  Without this floor the
#: z-score normalisation divides by that near-zero std and amplifies pure
#: rounding noise into "observed spread", letting a degenerate metric
#: falsely certify confidence.
_REL_SPREAD_FLOOR = 1e-12


def _is_effectively_constant(arr: np.ndarray, std: float) -> bool:
    """Whether a sample's spread is indistinguishable from rounding noise."""
    if std == 0.0:
        return True
    scale = float(np.abs(arr).max())
    return std <= _REL_SPREAD_FLOOR * scale


def normal_quantile(confidence: float) -> float:
    """Return the standard-normal quantile for a confidence level.

    Args:
        confidence: Confidence level in the open interval ``(0, 1)``,
            e.g. ``0.999`` for the paper's 99.9 % setting.

    Returns:
        ``Phi^{-1}(confidence)`` — the number of standard deviations a
        trial value must sit away from the mean before the spread test
        considers the sample "wide enough".

    Raises:
        ValueError: If ``confidence`` is not strictly between 0 and 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(norm.ppf(confidence))


def zscores(values: Sequence[float]) -> np.ndarray:
    """Return the z-scores of a sample (zeros when the spread is zero).

    ``scipy.stats.zscore`` returns NaN for constant samples; the generator
    must instead treat a constant sample as "no spread observed yet", so this
    wrapper maps that case to an all-zeros array.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return np.empty(0, dtype=float)
    std = arr.std()
    if std == 0.0:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std


def spread_is_confident(values: Sequence[float], confidence: float) -> bool:
    """Decide whether a metric's bootstrap trials have spread enough.

    This mirrors the ``confident`` predicate of the paper's
    ``RoutingRuleGenerator`` (Fig. 7): with ``z`` the z-scores of the trial
    values and ``q`` the normal quantile of the confidence level, the sample
    is confident when either

    * ``min(z) < -q`` and ``max(z) > q`` (the trials straddle both tails), or
    * ``max(z) - min(z) > 2 q`` (the total spread exceeds two quantiles).

    A sample with fewer than two trials is never confident.  A *constant*
    sample with at least ``ceil(1 / (1 - confidence))`` trials is treated as
    confident: a metric that does not vary at all across that many random
    subsamples has, for the purposes of worst-case estimation, been observed
    directly (this situation arises for deterministic costs).  "Constant"
    is judged against a relative noise floor, not exact float equality —
    a sample whose only variation is rounding dust must follow the
    constant rule, never feed the z-score normalisation (which would
    divide by a near-zero std and manufacture spread out of noise).

    Args:
        values: Observed trial values for one metric.
        confidence: Confidence level in ``(0, 1)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        return False
    quantile = normal_quantile(confidence)
    if _is_effectively_constant(arr, float(arr.std())):
        needed = int(np.ceil(1.0 / max(1.0 - confidence, 1e-12)))
        # Cap the requirement so that degenerate (constant) metrics cannot
        # force an unbounded number of trials at very high confidence.
        needed = min(needed, 1000)
        return arr.size >= min(needed, 30)
    z = zscores(arr)
    straddles = bool(z.min() < -quantile and z.max() > quantile)
    wide = bool(z.max() - z.min() > 2.0 * quantile)
    return straddles or wide


@lru_cache(maxsize=64)
def _cached_quantile(confidence: float) -> float:
    """Memoised :func:`normal_quantile` for the vectorized prefix scan.

    ``scipy.stats.norm.ppf`` costs tens of microseconds per call, which the
    scalar :func:`spread_is_confident` pays on every check; the blocked
    bootstrap path calls the quantile once per scan instead.
    """
    return normal_quantile(confidence)


def _prefix_spread_flags(
    stacked: np.ndarray, quantile: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Classify every prefix of every row of ``stacked`` (shape ``(C, T)``).

    Returns ``(satisfied, uncertain)`` boolean arrays of the same shape,
    where entry ``[c, t - 1]`` describes the prefix ``stacked[c, :t]``.
    ``satisfied`` is the vectorized verdict of
    :func:`spread_is_confident`; ``uncertain`` marks prefixes whose verdict
    sits within the numerical error bound of the running statistics (or
    whose spread is ~zero, where the scalar test switches to its
    constant-sample rule) and must be re-checked with the exact scalar
    test before being trusted.

    The running mean/variance use cumulative sums of mean-shifted values;
    the error bounds below are conservative for that scheme, so a prefix is
    only ever classified "certain" when the scalar test provably agrees.
    """
    x = stacked
    shift = x.mean(axis=1, keepdims=True)
    y = x - shift
    t = np.arange(1.0, x.shape[1] + 1.0)
    mean = np.cumsum(y, axis=1) / t
    var = np.maximum(np.cumsum(y * y, axis=1) / t - mean * mean, 0.0)
    std = np.sqrt(var)
    ymin = np.minimum.accumulate(y, axis=1)
    ymax = np.maximum.accumulate(y, axis=1)
    amax = np.maximum.accumulate(np.abs(y), axis=1)

    qstd = quantile * std
    low_margin = (ymin - mean) + qstd  # < 0 -> lower tail straddled
    high_margin = (ymax - mean) - qstd  # > 0 -> upper tail straddled
    wide_margin = (ymax - ymin) - 2.0 * qstd  # > 0 -> wide enough
    satisfied = ((low_margin < 0.0) & (high_margin > 0.0)) | (wide_margin > 0.0)

    eps = np.finfo(float).eps
    var_err = 16.0 * t * eps * (amax * amax + np.finfo(float).tiny)
    std_err = var_err / np.maximum(std, np.sqrt(var_err))
    tol = 4.0 * quantile * std_err + 64.0 * t * eps * (amax + std)
    # |shift| + amax bounds the magnitude of the original (unshifted)
    # values, so this flags every prefix the scalar test's relative
    # noise floor would route to the constant-sample rule.
    noise_floor = _REL_SPREAD_FLOOR * (np.abs(shift) + amax)
    uncertain = (
        (np.abs(low_margin) <= tol)
        | (np.abs(high_margin) <= tol)
        | (np.abs(wide_margin) <= tol)
        | (std <= std_err)
        | (std <= noise_floor)
    )
    return satisfied, uncertain


@dataclass(frozen=True)
class ConfidenceTest:
    """A reusable spread test bound to a confidence level.

    Attributes:
        confidence: Confidence level in ``(0, 1)``.
        min_trials: Lower bound on the number of trials before the test can
            pass, regardless of spread.  The paper leaves this implicit; we
            default to 10 so worst-case estimates are never based on one or
            two lucky subsamples.
        max_trials: Upper bound after which the test passes unconditionally,
            protecting the generator from non-terminating loops on
            pathological metrics.
    """

    confidence: float = 0.999
    min_trials: int = 10
    max_trials: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_trials < 2:
            raise ValueError("min_trials must be at least 2")
        if self.max_trials < self.min_trials:
            raise ValueError("max_trials must be >= min_trials")

    def is_satisfied(self, values: Sequence[float]) -> bool:
        """Return True when the trial sample for one metric is sufficient."""
        arr = np.asarray(values, dtype=float)
        if arr.size < self.min_trials:
            return False
        if arr.size >= self.max_trials:
            return True
        return spread_is_confident(arr, self.confidence)

    def all_satisfied(self, metric_columns: Sequence[Sequence[float]]) -> bool:
        """Return True when every metric column satisfies the test."""
        columns = list(metric_columns)
        if not columns:
            return False
        return all(self.is_satisfied(column) for column in columns)

    def first_satisfied(
        self,
        metric_columns: Sequence[Sequence[float]],
        *,
        start: int = 1,
    ) -> Optional[int]:
        """Earliest prefix length at which every metric column satisfies.

        This is the vectorized equivalent of running ``all_satisfied`` on
        ``[col[:t] for col in metric_columns]`` for ``t = start, start + 1,
        ...`` and returning the first ``t`` that passes — the check cadence
        of the bootstrap loop (one check per trial).  Prefix verdicts are
        computed with running statistics; any prefix within numerical error
        of a decision boundary is re-checked with the exact scalar test, so
        the returned trial count matches the sequential loop.

        Args:
            metric_columns: Equal-length trial-value columns (one per
                metric), in trial order.
            start: First prefix length to consider (earlier prefixes are
                assumed to have already been checked and found wanting).

        Returns:
            The earliest satisfying prefix length, or ``None`` when no
            prefix of the supplied columns satisfies the test yet.
        """
        columns = [np.asarray(column, dtype=float) for column in metric_columns]
        if not columns:
            return None
        n = columns[0].size
        if any(column.size != n for column in columns):
            raise ValueError("metric columns must have equal length")
        lo = max(start, self.min_trials, 1)
        if lo > n:
            return None
        if lo >= self.max_trials:
            # is_satisfied passes unconditionally once size reaches
            # max_trials, so the first prefix considered wins.
            return lo
        hi = min(n, self.max_trials)

        quantile = _cached_quantile(self.confidence)
        if lo == hi:
            # A single candidate prefix (e.g. the bootstrap's min_trials
            # block): the exact scalar check is cheaper than a prefix scan.
            if all(
                self._is_satisfied_exact(column, lo, quantile)
                for column in columns
            ):
                return lo
            return None
        satisfied, uncertain = _prefix_spread_flags(
            np.stack([column[:hi] for column in columns]), quantile
        )
        certain_false = (~satisfied & ~uncertain).any(axis=0)
        any_uncertain = uncertain.any(axis=0)
        all_satisfied = satisfied.all(axis=0)
        if hi >= self.max_trials:
            # the max_trials safety valve passes regardless of spread
            certain_false[self.max_trials - 1 :] = False
            any_uncertain[self.max_trials - 1 :] = False
            all_satisfied[self.max_trials - 1 :] = True

        for index in np.flatnonzero(~certain_false[lo - 1 :]):
            t = lo + int(index)
            if not any_uncertain[t - 1]:
                if all_satisfied[t - 1]:
                    return t
                continue
            if all(
                self._is_satisfied_exact(column, t, quantile)
                for column in columns
            ):
                return t
        return None

    def _is_satisfied_exact(
        self, column: np.ndarray, t: int, quantile: float
    ) -> bool:
        """Scalar :meth:`is_satisfied` on ``column[:t]`` with the quantile
        precomputed (``scipy``'s ``ppf`` is the expensive part of the
        scalar test; the verdict is unchanged)."""
        if t < self.min_trials:
            return False
        if t >= self.max_trials:
            return True
        arr = column[:t]
        if _is_effectively_constant(arr, float(arr.std())):
            needed = int(np.ceil(1.0 / max(1.0 - self.confidence, 1e-12)))
            needed = min(needed, 1000)
            return arr.size >= min(needed, 30)
        z = zscores(arr)
        straddles = bool(z.min() < -quantile and z.max() > quantile)
        wide = bool(z.max() - z.min() > 2.0 * quantile)
        return straddles or wide
