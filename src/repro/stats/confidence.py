"""Confidence tests used by the routing-rule generator.

The generator in the paper (Fig. 7) keeps running bootstrap trials of a
candidate ensemble configuration until, for every metric (error degradation,
response time, cost), the observed trial values have spread "enough": the
z-scores of the trial values must straddle the normal quantile implied by the
requested confidence level, or span more than twice that quantile.  Once the
spread condition holds, the *worst* observed value is recorded as the
configuration's worst-case estimate.

This module implements that spread test as an explicit, documented function
so it can be unit- and property-tested independent of the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import norm

__all__ = [
    "ConfidenceTest",
    "normal_quantile",
    "spread_is_confident",
    "zscores",
]


def normal_quantile(confidence: float) -> float:
    """Return the standard-normal quantile for a confidence level.

    Args:
        confidence: Confidence level in the open interval ``(0, 1)``,
            e.g. ``0.999`` for the paper's 99.9 % setting.

    Returns:
        ``Phi^{-1}(confidence)`` — the number of standard deviations a
        trial value must sit away from the mean before the spread test
        considers the sample "wide enough".

    Raises:
        ValueError: If ``confidence`` is not strictly between 0 and 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(norm.ppf(confidence))


def zscores(values: Sequence[float]) -> np.ndarray:
    """Return the z-scores of a sample (zeros when the spread is zero).

    ``scipy.stats.zscore`` returns NaN for constant samples; the generator
    must instead treat a constant sample as "no spread observed yet", so this
    wrapper maps that case to an all-zeros array.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return np.empty(0, dtype=float)
    std = arr.std()
    if std == 0.0:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std


def spread_is_confident(values: Sequence[float], confidence: float) -> bool:
    """Decide whether a metric's bootstrap trials have spread enough.

    This mirrors the ``confident`` predicate of the paper's
    ``RoutingRuleGenerator`` (Fig. 7): with ``z`` the z-scores of the trial
    values and ``q`` the normal quantile of the confidence level, the sample
    is confident when either

    * ``min(z) < -q`` and ``max(z) > q`` (the trials straddle both tails), or
    * ``max(z) - min(z) > 2 q`` (the total spread exceeds two quantiles).

    A sample with fewer than two trials is never confident.  A *constant*
    sample with at least ``ceil(1 / (1 - confidence))`` trials is treated as
    confident: a metric that does not vary at all across that many random
    subsamples has, for the purposes of worst-case estimation, been observed
    directly (this situation arises for deterministic costs).

    Args:
        values: Observed trial values for one metric.
        confidence: Confidence level in ``(0, 1)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        return False
    quantile = normal_quantile(confidence)
    if float(arr.std()) == 0.0:
        needed = int(np.ceil(1.0 / max(1.0 - confidence, 1e-12)))
        # Cap the requirement so that degenerate (constant) metrics cannot
        # force an unbounded number of trials at very high confidence.
        needed = min(needed, 1000)
        return arr.size >= min(needed, 30)
    z = zscores(arr)
    straddles = bool(z.min() < -quantile and z.max() > quantile)
    wide = bool(z.max() - z.min() > 2.0 * quantile)
    return straddles or wide


@dataclass(frozen=True)
class ConfidenceTest:
    """A reusable spread test bound to a confidence level.

    Attributes:
        confidence: Confidence level in ``(0, 1)``.
        min_trials: Lower bound on the number of trials before the test can
            pass, regardless of spread.  The paper leaves this implicit; we
            default to 10 so worst-case estimates are never based on one or
            two lucky subsamples.
        max_trials: Upper bound after which the test passes unconditionally,
            protecting the generator from non-terminating loops on
            pathological metrics.
    """

    confidence: float = 0.999
    min_trials: int = 10
    max_trials: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_trials < 2:
            raise ValueError("min_trials must be at least 2")
        if self.max_trials < self.min_trials:
            raise ValueError("max_trials must be >= min_trials")

    def is_satisfied(self, values: Sequence[float]) -> bool:
        """Return True when the trial sample for one metric is sufficient."""
        arr = np.asarray(values, dtype=float)
        if arr.size < self.min_trials:
            return False
        if arr.size >= self.max_trials:
            return True
        return spread_is_confident(arr, self.confidence)

    def all_satisfied(self, metric_columns: Sequence[Sequence[float]]) -> bool:
        """Return True when every metric column satisfies the test."""
        columns = list(metric_columns)
        if not columns:
            return False
        return all(self.is_satisfied(column) for column in columns)
