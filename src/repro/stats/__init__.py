"""Shared statistics helpers used across the Tolerance Tiers reproduction.

The sub-modules are intentionally small and dependency-light:

* :mod:`repro.stats.descriptive` -- means, percentiles, summaries.
* :mod:`repro.stats.resampling` -- seeded bootstrap and subsampling utilities.
* :mod:`repro.stats.confidence` -- z-score / normal-quantile confidence tests
  used by the routing-rule generator (paper Fig. 7).
* :mod:`repro.stats.changepoint` -- step-change detection over benchmark
  metric histories, judged at the confidence test's level instead of a
  fixed threshold.
"""

from repro.stats.changepoint import (
    Changepoint,
    detect_step,
    shift_zscore,
)
from repro.stats.confidence import (
    ConfidenceTest,
    normal_quantile,
    spread_is_confident,
    zscores,
)
from repro.stats.descriptive import (
    StreamingMoments,
    Summary,
    geometric_mean,
    percentile,
    summarize,
)
from repro.stats.resampling import (
    bootstrap_indices,
    bootstrap_statistic,
    kfold_indices,
    subsample_indices,
)

__all__ = [
    "Changepoint",
    "ConfidenceTest",
    "StreamingMoments",
    "Summary",
    "bootstrap_indices",
    "bootstrap_statistic",
    "detect_step",
    "geometric_mean",
    "kfold_indices",
    "normal_quantile",
    "percentile",
    "shift_zscore",
    "spread_is_confident",
    "subsample_indices",
    "summarize",
    "zscores",
]
