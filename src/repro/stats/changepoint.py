"""Step-change detection over benchmark metric histories.

The perf-regression gate used to compare two artefacts with a fixed ±5 %
band — a threshold that knows nothing about how noisy a metric actually
is on the machines that measure it.  This module replaces that fixed
rule with one conditioned on the observed history: a shift counts as a
changepoint only when it is large relative to the *within-regime* noise
of the series, judged at the confidence level the repo's
:class:`~repro.stats.confidence.ConfidenceTest` uses for its bootstrap
spread test.

Two entry points:

* :func:`detect_step` — scan a whole series for its most significant
  mean shift (the longitudinal history check: "did this metric's regime
  change somewhere in the last N runs?").  The scan statistic is the
  maximum over splits of the segment-mean difference in standard-error
  units; because a maximum over many candidate splits is *not* normal,
  its null distribution is calibrated by seeded permutation of the
  series itself rather than read off a normal quantile — the all-noise
  false-alarm rate is held at ``1 - test.confidence`` regardless of
  series length.
* :func:`shift_zscore` — score one new observation against a baseline
  sample's noise (the branch-vs-main and fresh-run-vs-history checks;
  no split selection happens here, so the plain z-score is the right
  scale and the caller compares it against the test's normal quantile).

Both share the :class:`~repro.stats.confidence.ConfidenceTest`'s
constant-sample philosophy: a baseline whose spread is indistinguishable
from float dust is treated as exactly constant, so any genuine departure
from it is an infinite-z step rather than rounding noise amplified into
a verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.confidence import ConfidenceTest

__all__ = [
    "Changepoint",
    "detect_step",
    "shift_zscore",
]

#: Relative spread below which a sample is treated as constant (the same
#: floor :mod:`repro.stats.confidence` applies to bootstrap trial
#: columns, for the same reason).
_REL_NOISE_FLOOR = 1e-12

#: Permutations used to calibrate the null distribution of the scan
#: statistic.  2 000 resolves the default 99.9 % level (~2 expected
#: exceedances under the null) while keeping the scan sub-millisecond
#: on history lengths that fit a JSONL file.
_DEFAULT_PERMUTATIONS = 2000


@dataclass(frozen=True)
class Changepoint:
    """The most significant mean shift found in a metric series.

    Attributes:
        index: First index of the new regime — ``values[:index]`` is the
            "before" segment, ``values[index:]`` the "after" segment.
        before_mean: Mean of the before segment.
        after_mean: Mean of the after segment.
        shift: ``after_mean - before_mean``.
        relative_shift: ``shift / |before_mean|`` (``inf`` when the
            before mean is zero and the shift is not).
        zscore: The shift in units of its standard error under the
            pooled within-segment noise (``inf`` for a shift between
            internally-constant segments).
    """

    index: int
    before_mean: float
    after_mean: float
    shift: float
    relative_shift: float
    zscore: float


def _split_zscores(rows: np.ndarray, min_segment: int) -> np.ndarray:
    """Segment-mean-shift z-scores for every admissible split of every row.

    Args:
        rows: ``(B, n)`` series matrix (one scan per row).
        min_segment: Minimum observations on each side of a split.

    Returns:
        ``(B, S)`` z-scores, one column per split ``t`` in
        ``[min_segment, n - min_segment]``; ``rows[:, :t]`` is the
        "before" segment.  Splits whose pooled within-segment noise sits
        below the relative floor get ``±inf`` for a real shift and
        ``0.0`` for none.
    """
    b, n = rows.shape
    splits = np.arange(min_segment, n - min_segment + 1)
    cs = np.cumsum(rows, axis=1)
    css = np.cumsum(rows * rows, axis=1)
    n1 = splits.astype(float)
    n2 = float(n) - n1
    s1 = cs[:, splits - 1]
    s2 = cs[:, -1:] - s1
    m1 = s1 / n1
    m2 = s2 / n2
    ss1 = np.maximum(css[:, splits - 1] - n1 * m1 * m1, 0.0)
    ss2 = np.maximum((css[:, -1:] - css[:, splits - 1]) - n2 * m2 * m2, 0.0)
    pooled = np.sqrt((ss1 + ss2) / float(n - 2))
    sem = pooled * np.sqrt(1.0 / n1 + 1.0 / n2)
    shift = m2 - m1
    scale = float(np.abs(rows).max())
    floor = _REL_NOISE_FLOOR * max(scale, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = shift / sem
    degenerate = pooled <= _REL_NOISE_FLOOR * scale
    z = np.where(degenerate & (shift > floor), np.inf, z)
    z = np.where(degenerate & (shift < -floor), -np.inf, z)
    z = np.where(degenerate & (np.abs(shift) <= floor), 0.0, z)
    return z


def shift_zscore(baseline: Sequence[float], value: float) -> float:
    """How many noise standard deviations ``value`` sits from a baseline.

    The baseline's own spread (``ddof=1``) is the noise model; an
    effectively-constant baseline (spread below the relative noise
    floor) makes any departing value an infinite-z shift and any
    matching value a zero-z one.

    Args:
        baseline: Historical observations of the metric (at least 2).
        value: The new observation to score.

    Raises:
        ValueError: If the baseline has fewer than two observations.
    """
    arr = np.asarray(baseline, dtype=float)
    if arr.size < 2:
        raise ValueError(
            f"shift_zscore needs at least 2 baseline observations, got {arr.size}"
        )
    mean = float(arr.mean())
    std = float(arr.std(ddof=1))
    scale = max(float(np.abs(arr).max()), abs(value))
    if std <= _REL_NOISE_FLOOR * scale:
        if abs(value - mean) <= _REL_NOISE_FLOOR * max(scale, 1.0):
            return 0.0
        return math.inf if value > mean else -math.inf
    return (value - mean) / std


def detect_step(
    values: Sequence[float],
    *,
    test: Optional[ConfidenceTest] = None,
    min_segment: int = 5,
    n_permutations: int = _DEFAULT_PERMUTATIONS,
    seed: int = 0,
) -> Optional[Changepoint]:
    """Find the most significant mean shift in a series, if any.

    Every admissible split point is scored — the difference of segment
    means in units of its standard error under the pooled
    within-segment noise — and the split with the largest ``|z|`` is
    the candidate changepoint.  Because that maximum is taken over many
    correlated candidates, its null distribution is calibrated
    empirically: the same scan runs over ``n_permutations`` seeded
    shuffles of the series (exchangeable under "no change"), and the
    candidate is flagged only when its ``|z|`` exceeds the
    ``test.confidence`` quantile of the permuted maxima.  The detector
    therefore conditions on the series' *own* measured noise — a noisy
    metric needs a bigger step to trip it than a quiet one — instead of
    any fixed relative threshold.  A step between two internally
    *constant* segments (the deterministic-metric regime: control-plane
    and resilience numbers are simulation outputs, not timings) is
    flagged directly, mirroring the confidence test's constant-sample
    rule.

    Args:
        values: The metric series, oldest first.
        test: The confidence test supplying the significance level
            (default: a fresh :class:`ConfidenceTest`, i.e. the
            generator's 99.9 % setting).
        min_segment: Minimum observations on each side of a split.
            Splits leaving a shorter segment are not considered, so a
            series shorter than ``2 * min_segment`` returns ``None``.
        n_permutations: Null-calibration shuffles (deterministic given
            ``seed``).
        seed: Seed for the permutation RNG, fixed by default so CI runs
            are reproducible.

    Returns:
        The winning :class:`Changepoint`, or ``None`` when no split
        clears the confidence bar (including all short series).
    """
    if test is None:
        test = ConfidenceTest()
    if min_segment < 2:
        raise ValueError("min_segment must be at least 2")
    if n_permutations < 1:
        raise ValueError("n_permutations must be at least 1")
    arr = np.asarray(values, dtype=float)
    n = arr.size
    if n < 2 * min_segment:
        return None

    observed = _split_zscores(arr[None, :], min_segment)[0]
    magnitudes = np.abs(observed)
    best_index = int(np.argmax(magnitudes))
    best_z = float(observed[best_index])
    if not abs(best_z) > 0.0:
        return None

    if not math.isinf(best_z):
        # Calibrate the max-over-splits null empirically: under "no
        # change" the series is exchangeable, so seeded shuffles of it
        # ARE the null.
        rng = np.random.default_rng(seed)
        shuffled = rng.permuted(
            np.broadcast_to(arr, (n_permutations, n)).copy(), axis=1
        )
        null_max = np.abs(_split_zscores(shuffled, min_segment)).max(axis=1)
        threshold = float(np.quantile(null_max, test.confidence))
        if not abs(best_z) > threshold:
            return None
    # else: an infinite z means both segments are internally constant —
    # the deterministic-metric regime.  Like the ConfidenceTest's
    # constant-sample rule, the shift has been observed directly and
    # needs no noise calibration.

    split = best_index + min_segment
    before, after = arr[:split], arr[split:]
    before_mean = float(before.mean())
    after_mean = float(after.mean())
    shift = after_mean - before_mean
    if before_mean != 0.0:
        relative = shift / abs(before_mean)
    else:
        relative = 0.0 if shift == 0.0 else math.copysign(math.inf, shift)
    return Changepoint(
        index=split,
        before_mean=before_mean,
        after_mean=after_mean,
        shift=shift,
        relative_shift=relative,
        zscore=best_z,
    )
