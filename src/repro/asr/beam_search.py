"""Frame-synchronous token-passing beam search.

This is the heart of the ASR substrate and the source of the accuracy ↔
latency trade-off that the whole paper is built around: the wider the
search (more active tokens, wider beams, more language-model successors per
word exit), the fewer search errors the decoder commits — and the more work
it performs.

The decoder explores the composition of lexicon and language model exposed
by :class:`repro.asr.hmm.DecodingGraph`.  A *token* represents a partial
hypothesis: the word currently being recognised, the position inside that
word's phone sequence, the running log score, and the words completed so
far.  Tokens advance frame-by-frame (self-loop, advance to the next phone,
or exit into a new word) and are pruned by the configured heuristics.

Pruning heuristics (paper Section III-A):

* ``max_active`` — hypothesis-count pruning: keep only the best N tokens.
* ``beam`` — score-based pruning whose reference point depends on ``scope``:
  ``"local"`` prunes relative to the best token *within the same word*
  (permissive), ``"global"`` relative to the best token overall (standard),
  and ``"network"`` disables score pruning entirely so only ``max_active``
  limits the search.
* ``word_end_beam`` — extra beam applied to word-exit expansions.
* ``lm_breadth`` — number of successor words considered per word exit
  (``None`` = the entire vocabulary).  Successors are ranked by the sum of
  the weighted language-model entry score and an acoustic look-ahead (the
  log-likelihood of each candidate word's first phone at the current frame),
  which is how lexicon-tree decoders keep narrow searches from discarding
  acoustically obvious words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.asr.acoustic import AcousticObservation
from repro.asr.hmm import DecodingGraph
from repro.asr.language_model import START_CONTEXT

__all__ = ["BeamSearchConfig", "BeamSearchDecoder", "DecodeResult"]

_LOG_HALF = float(np.log(0.5))
_VALID_SCOPES = ("local", "global", "network")


@dataclass(frozen=True)
class BeamSearchConfig:
    """Pruning-heuristic configuration of one decoder version.

    Attributes:
        name: Human-readable configuration name (e.g. ``"asr_v3"``).
        max_active: Maximum number of tokens kept after each frame.
        beam: Score beam width (natural-log units); tokens scoring more than
            ``beam`` below the reference are pruned.  Ignored when ``scope``
            is ``"network"``.
        word_end_beam: Beam applied to word-exit expansions relative to the
            best word-exit of the frame.
        lm_breadth: Number of language-model successors considered per word
            exit; ``None`` considers the whole vocabulary.
        scope: Pruning scope: ``"local"``, ``"global"`` or ``"network"``.
    """

    name: str = "default"
    max_active: int = 64
    beam: float = 8.0
    word_end_beam: float = 6.0
    lm_breadth: Optional[int] = 8
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError("max_active must be at least 1")
        if self.beam <= 0.0:
            raise ValueError("beam must be positive")
        if self.word_end_beam <= 0.0:
            raise ValueError("word_end_beam must be positive")
        if self.lm_breadth is not None and self.lm_breadth < 1:
            raise ValueError("lm_breadth must be positive or None")
        if self.scope not in _VALID_SCOPES:
            raise ValueError(
                f"scope must be one of {_VALID_SCOPES}, got {self.scope!r}"
            )

    def search_width_score(self) -> float:
        """A scalar proxy for how wide this configuration searches.

        Used only for ordering configurations in reports; the actual work is
        measured per decode.
        """
        breadth = self.lm_breadth if self.lm_breadth is not None else 1000
        return float(self.max_active) * float(breadth)


@dataclass
class _Token:
    """A partial hypothesis during decoding."""

    word_id: int
    position: int
    context: int
    score: float
    history: Tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one utterance under one configuration.

    Attributes:
        word_ids: Hypothesised word-id sequence.
        words: Hypothesised words (strings).
        log_score: Log score of the winning hypothesis.
        runner_up_score: Log score of the best *distinct* competing
            hypothesis (``-inf`` when the search produced only one).
        n_expansions: Number of tokens created during the search — the
            decoder's work measure, which the engine converts to latency.
        n_frames: Number of acoustic frames consumed.
        peak_active: Largest number of tokens alive after pruning.
        config_name: Name of the configuration that produced the result.
    """

    word_ids: Tuple[int, ...]
    words: Tuple[str, ...]
    log_score: float
    runner_up_score: float
    n_expansions: int
    n_frames: int
    peak_active: int
    config_name: str

    @property
    def score_margin(self) -> float:
        """Gap between the winning and runner-up hypothesis scores."""
        if not np.isfinite(self.runner_up_score):
            return float("inf")
        return float(self.log_score - self.runner_up_score)


class BeamSearchDecoder:
    """Token-passing beam-search decoder over a :class:`DecodingGraph`.

    Args:
        graph: The decoding graph (lexicon + language model).
        config: Pruning-heuristic configuration.
    """

    def __init__(self, graph: DecodingGraph, config: BeamSearchConfig) -> None:
        self.graph = graph
        self.config = config

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, observation: AcousticObservation) -> DecodeResult:
        """Decode one utterance's acoustic observation.

        Args:
            observation: Per-frame phone log-likelihoods.

        Returns:
            The best hypothesis found under the configured pruning.

        Raises:
            ValueError: If the observation has no frames.
        """
        if observation.n_frames == 0:
            raise ValueError("cannot decode an observation with zero frames")
        log_likelihoods = observation.log_likelihoods
        n_frames = observation.n_frames

        # Acoustic look-ahead table: log-likelihood of each word's first
        # phone at each frame, indexed [frame, word].
        word_entry_ll = log_likelihoods[:, self.graph.first_phone_ids]

        expansions = 0
        peak_active = 0

        tokens = self._initial_tokens(log_likelihoods[0], word_entry_ll[0])
        expansions += len(tokens)
        tokens = self._prune(tokens)
        peak_active = max(peak_active, len(tokens))

        for frame in range(1, n_frames):
            frame_ll = log_likelihoods[frame]
            frame_entry_ll = word_entry_ll[frame]
            candidates: Dict[Tuple[int, int, int], _Token] = {}
            word_exit_candidates: List[_Token] = []

            for token in tokens:
                expansions += self._expand_token(
                    token, frame_ll, frame_entry_ll, candidates, word_exit_candidates
                )

            self._merge_word_exits(candidates, word_exit_candidates)
            tokens = self._prune(list(candidates.values()))
            if not tokens:
                break
            peak_active = max(peak_active, len(tokens))

        return self._finalise(tokens, expansions, n_frames, peak_active)

    # ------------------------------------------------------------------
    # expansion steps
    # ------------------------------------------------------------------
    def _candidate_entries(
        self, context: int, frame_entry_ll: np.ndarray
    ) -> List[Tuple[int, float]]:
        """Rank candidate next words by LM entry score plus acoustic look-ahead.

        Returns at most ``lm_breadth`` ``(word_id, entry_score)`` pairs where
        ``entry_score`` already combines the weighted LM probability, the word
        insertion penalty and the acoustic log-likelihood of the candidate's
        first phone at the current frame.
        """
        combined = self.graph.entry_score_vector(context) + frame_entry_ll
        breadth = self.config.lm_breadth
        if breadth is None or breadth >= combined.size:
            order = np.argsort(-combined)
        else:
            top = np.argpartition(-combined, breadth - 1)[:breadth]
            order = top[np.argsort(-combined[top])]
        return [(int(w), float(combined[w])) for w in order]

    def _initial_tokens(
        self, frame_ll: np.ndarray, frame_entry_ll: np.ndarray
    ) -> List[_Token]:
        """Tokens entering the first phone of each candidate start word."""
        del frame_ll  # the entry table already folds in the first-phone score
        tokens: List[_Token] = []
        for word_id, entry_score in self._candidate_entries(
            START_CONTEXT, frame_entry_ll
        ):
            tokens.append(
                _Token(
                    word_id=word_id,
                    position=0,
                    context=START_CONTEXT,
                    score=entry_score,
                    history=(),
                )
            )
        return tokens

    def _expand_token(
        self,
        token: _Token,
        frame_ll: np.ndarray,
        frame_entry_ll: np.ndarray,
        candidates: Dict[Tuple[int, int, int], _Token],
        word_exit_candidates: List[_Token],
    ) -> int:
        """Expand one token into the next frame; returns expansions created."""
        created = 0
        phones = self.graph.phones_of(token.word_id)

        # 1. Self-loop: stay on the current phone.
        stay_score = token.score + _LOG_HALF + float(frame_ll[phones[token.position]])
        created += self._offer(
            candidates,
            _Token(
                word_id=token.word_id,
                position=token.position,
                context=token.context,
                score=stay_score,
                history=token.history,
            ),
        )

        # 2. Advance to the next phone of the same word.
        if token.position + 1 < len(phones):
            advance_score = (
                token.score + _LOG_HALF + float(frame_ll[phones[token.position + 1]])
            )
            created += self._offer(
                candidates,
                _Token(
                    word_id=token.word_id,
                    position=token.position + 1,
                    context=token.context,
                    score=advance_score,
                    history=token.history,
                ),
            )
        else:
            # 3. Word exit: finish the current word and enter a successor.
            for word_id, entry_score in self._candidate_entries(
                token.word_id, frame_entry_ll
            ):
                word_exit_candidates.append(
                    _Token(
                        word_id=word_id,
                        position=0,
                        context=token.word_id,
                        score=token.score + _LOG_HALF + entry_score,
                        history=token.history + (token.word_id,),
                    )
                )
                created += 1
        return created

    def _merge_word_exits(
        self,
        candidates: Dict[Tuple[int, int, int], _Token],
        word_exit_candidates: List[_Token],
    ) -> None:
        """Apply word-end beam pruning and merge exits into the candidate set."""
        if not word_exit_candidates:
            return
        best = max(t.score for t in word_exit_candidates)
        threshold = best - self.config.word_end_beam
        for token in word_exit_candidates:
            if token.score >= threshold:
                self._offer(candidates, token)

    @staticmethod
    def _offer(
        candidates: Dict[Tuple[int, int, int], _Token], token: _Token
    ) -> int:
        """Viterbi recombination: keep the best token per (word, pos, context)."""
        key = (token.word_id, token.position, token.context)
        existing = candidates.get(key)
        if existing is None or token.score > existing.score:
            candidates[key] = token
        return 1

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def _prune(self, tokens: List[_Token]) -> List[_Token]:
        """Apply scope-dependent beam pruning then hypothesis-count pruning."""
        if not tokens:
            return tokens

        scope = self.config.scope
        if scope == "global":
            best = max(t.score for t in tokens)
            threshold = best - self.config.beam
            tokens = [t for t in tokens if t.score >= threshold]
        elif scope == "local":
            best_per_word: Dict[int, float] = {}
            for t in tokens:
                prev = best_per_word.get(t.word_id)
                if prev is None or t.score > prev:
                    best_per_word[t.word_id] = t.score
            tokens = [
                t
                for t in tokens
                if t.score >= best_per_word[t.word_id] - self.config.beam
            ]
        # scope == "network": no score pruning.

        if len(tokens) > self.config.max_active:
            tokens.sort(key=lambda t: t.score, reverse=True)
            tokens = tokens[: self.config.max_active]
        return tokens

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def _finalise(
        self,
        tokens: List[_Token],
        expansions: int,
        n_frames: int,
        peak_active: int,
    ) -> DecodeResult:
        """Select the winning hypothesis and the best distinct competitor."""
        scored: List[Tuple[float, Tuple[int, ...]]] = []
        for token in tokens:
            # Prefer tokens that have finished their current word.
            completion_bonus = (
                0.0 if self.graph.is_final_position(token.word_id, token.position) else -2.0
            )
            hypothesis = token.history + (token.word_id,)
            scored.append((token.score + completion_bonus, hypothesis))

        if not scored:
            return DecodeResult(
                word_ids=(),
                words=(),
                log_score=float("-inf"),
                runner_up_score=float("-inf"),
                n_expansions=expansions,
                n_frames=n_frames,
                peak_active=peak_active,
                config_name=self.config.name,
            )

        scored.sort(key=lambda item: item[0], reverse=True)
        best_score, best_hypothesis = scored[0]
        runner_up = float("-inf")
        for score, hypothesis in scored[1:]:
            if hypothesis != best_hypothesis:
                runner_up = score
                break

        words = tuple(self.graph.lexicon.words[w] for w in best_hypothesis)
        return DecodeResult(
            word_ids=best_hypothesis,
            words=words,
            log_score=float(best_score),
            runner_up_score=float(runner_up),
            n_expansions=expansions,
            n_frames=n_frames,
            peak_active=peak_active,
            config_name=self.config.name,
        )
