"""Service-facing ASR engine.

:class:`ASREngine` wires the acoustic front-end, decoding graph and beam
search together and exposes the one call a service node needs:
"transcribe this utterance under this heuristic configuration and tell me
what it cost".  The engine reports both the hypothesis quality (WER against
the reference transcript) and the decoder's work, converted to a modelled
latency so experiments are deterministic and hardware-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.asr.acoustic import AcousticFrontEnd, AcousticObservation
from repro.asr.beam_search import BeamSearchConfig, BeamSearchDecoder, DecodeResult
from repro.asr.confidence import hypothesis_confidence
from repro.asr.hmm import DecodingGraph
from repro.asr.language_model import BigramLanguageModel
from repro.asr.lexicon import Lexicon
from repro.asr.wer import word_error_rate
from repro.datasets.voxforge import SyntheticSpeechCorpus, Utterance

__all__ = ["ASREngine", "TranscriptionResult"]


@dataclass(frozen=True)
class TranscriptionResult:
    """Everything a service version reports for one transcription request.

    Attributes:
        utterance_id: Identifier of the processed utterance.
        config_name: Heuristic configuration used.
        hypothesis: Hypothesised word sequence.
        reference: Reference word sequence.
        wer: Word error rate of the hypothesis against the reference.
        confidence: Decoder confidence in ``[0, 1]``.
        n_expansions: Beam-search work (tokens created).
        n_frames: Acoustic frames consumed.
        latency_s: Modelled single-node processing latency in seconds.
    """

    utterance_id: str
    config_name: str
    hypothesis: Tuple[str, ...]
    reference: Tuple[str, ...]
    wer: float
    confidence: float
    n_expansions: int
    n_frames: int
    latency_s: float

    @property
    def is_exact(self) -> bool:
        """Whether the hypothesis matches the reference word-for-word."""
        return self.hypothesis == self.reference


class ASREngine:
    """End-to-end ASR engine over a synthetic speech corpus.

    Args:
        lexicon: Pronunciation lexicon.
        language_model: Fitted bigram language model over the same
            vocabulary.
        front_end: Acoustic front-end that turns utterances into per-frame
            log-likelihoods.
        lm_weight: Language-model weight of the decoding graph.
        word_insertion_penalty: Word insertion penalty of the decoding graph.
        seconds_per_expansion: Modelled cost of one beam-search token
            expansion; together with ``seconds_per_frame`` this converts
            search work to latency.
        seconds_per_frame: Modelled fixed per-frame cost (feature extraction
            and acoustic scoring).
    """

    def __init__(
        self,
        lexicon: Lexicon,
        language_model: BigramLanguageModel,
        front_end: AcousticFrontEnd,
        *,
        lm_weight: float = 1.0,
        word_insertion_penalty: float = 0.5,
        seconds_per_expansion: float = 40e-6,
        seconds_per_frame: float = 1.2e-3,
    ) -> None:
        if seconds_per_expansion <= 0.0 or seconds_per_frame <= 0.0:
            raise ValueError("latency model constants must be positive")
        self.lexicon = lexicon
        self.language_model = language_model
        self.front_end = front_end
        self.graph = DecodingGraph(
            lexicon,
            language_model,
            lm_weight=lm_weight,
            word_insertion_penalty=word_insertion_penalty,
        )
        self.seconds_per_expansion = seconds_per_expansion
        self.seconds_per_frame = seconds_per_frame
        self._observation_cache: Dict[str, AcousticObservation] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_corpus(
        cls,
        corpus: SyntheticSpeechCorpus,
        *,
        lm_smoothing: float = 0.1,
        **engine_kwargs,
    ) -> "ASREngine":
        """Build an engine whose lexicon and LM are fit to a corpus.

        Args:
            corpus: The synthetic speech corpus; its vocabulary defines the
                lexicon and its training sentences fit the language model.
            lm_smoothing: Additive smoothing for the language model.
            **engine_kwargs: Forwarded to the :class:`ASREngine` constructor.
        """
        lexicon = Lexicon(corpus.vocabulary)
        word_to_id = {w: i for i, w in enumerate(corpus.vocabulary)}
        language_model = BigramLanguageModel.from_word_sentences(
            corpus.training_sentences, word_to_id, smoothing=lm_smoothing
        )
        front_end = AcousticFrontEnd(lexicon, base_seed=corpus.config.seed)
        return cls(lexicon, language_model, front_end, **engine_kwargs)

    # ------------------------------------------------------------------
    # transcription
    # ------------------------------------------------------------------
    def observation_for(self, utterance: Utterance) -> AcousticObservation:
        """Return (and cache) the acoustic observation of an utterance.

        Caching matters because the limitation study decodes every utterance
        under every service version; the acoustic evidence must be identical
        across versions and is expensive to regenerate.
        """
        cached = self._observation_cache.get(utterance.utterance_id)
        if cached is None:
            cached = self.front_end.observe(utterance)
            self._observation_cache[utterance.utterance_id] = cached
        return cached

    def latency_of(self, decode: DecodeResult) -> float:
        """Convert decoder work into a modelled latency in seconds."""
        return (
            decode.n_expansions * self.seconds_per_expansion
            + decode.n_frames * self.seconds_per_frame
        )

    def transcribe(
        self, utterance: Utterance, config: BeamSearchConfig
    ) -> TranscriptionResult:
        """Transcribe one utterance under one heuristic configuration."""
        observation = self.observation_for(utterance)
        decoder = BeamSearchDecoder(self.graph, config)
        decode = decoder.decode(observation)
        wer = word_error_rate(decode.words, utterance.words)
        return TranscriptionResult(
            utterance_id=utterance.utterance_id,
            config_name=config.name,
            hypothesis=decode.words,
            reference=utterance.words,
            wer=wer,
            confidence=hypothesis_confidence(decode),
            n_expansions=decode.n_expansions,
            n_frames=decode.n_frames,
            latency_s=self.latency_of(decode),
        )

    def transcribe_corpus(
        self,
        utterances: Iterable[Utterance],
        config: BeamSearchConfig,
    ) -> List[TranscriptionResult]:
        """Transcribe a collection of utterances under one configuration."""
        return [self.transcribe(u, config) for u in utterances]

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    @staticmethod
    def corpus_wer(results: Sequence[TranscriptionResult]) -> float:
        """Corpus-level WER: total errors over total reference words."""
        results = list(results)
        if not results:
            raise ValueError("no transcription results to aggregate")
        total_ref_words = sum(len(r.reference) for r in results)
        total_errors = sum(r.wer * len(r.reference) for r in results)
        if total_ref_words == 0:
            return 0.0
        return float(total_errors / total_ref_words)

    @staticmethod
    def mean_latency(results: Sequence[TranscriptionResult]) -> float:
        """Mean modelled latency across transcription results."""
        results = list(results)
        if not results:
            raise ValueError("no transcription results to aggregate")
        return float(sum(r.latency_s for r in results) / len(results))
