"""The seven ASR service versions.

The paper studies seven heuristic configurations of the production ASR
engine, chosen by the engine's maintainers from an exhaustive sweep of six
beam-search heuristics so that they lie along the accuracy-latency Pareto
frontier.  The versions here play the same role for our decoder: version 1
searches narrowly and cheaply, version 7 searches (almost) exhaustively.

The three pruning "scopes" discussed in the paper map onto the decoder as
documented in :mod:`repro.asr.beam_search`: ``local`` pruning compares
hypotheses only within the same word, ``global`` compares against the best
hypothesis overall, and ``network`` disables score pruning so the search is
limited only by the hypothesis count.
"""

from __future__ import annotations

from typing import Dict, List

from repro.asr.beam_search import BeamSearchConfig

__all__ = ["ASR_VERSIONS", "asr_version_names", "get_asr_version"]

#: The seven Pareto-frontier configurations, fastest first.  Keys are the
#: service-version names used throughout measurements and benchmarks.
ASR_VERSIONS: Dict[str, BeamSearchConfig] = {
    "asr_v1": BeamSearchConfig(
        name="asr_v1", max_active=20, beam=6.0, word_end_beam=4.5,
        lm_breadth=10, scope="global",
    ),
    "asr_v2": BeamSearchConfig(
        name="asr_v2", max_active=26, beam=7.0, word_end_beam=5.5,
        lm_breadth=12, scope="global",
    ),
    "asr_v3": BeamSearchConfig(
        name="asr_v3", max_active=32, beam=8.0, word_end_beam=6.5,
        lm_breadth=14, scope="global",
    ),
    "asr_v4": BeamSearchConfig(
        name="asr_v4", max_active=40, beam=9.0, word_end_beam=7.5,
        lm_breadth=18, scope="global",
    ),
    "asr_v5": BeamSearchConfig(
        name="asr_v5", max_active=48, beam=10.5, word_end_beam=8.5,
        lm_breadth=22, scope="global",
    ),
    "asr_v6": BeamSearchConfig(
        name="asr_v6", max_active=60, beam=12.0, word_end_beam=9.5,
        lm_breadth=26, scope="global",
    ),
    "asr_v7": BeamSearchConfig(
        name="asr_v7", max_active=64, beam=13.0, word_end_beam=10.5,
        lm_breadth=30, scope="network",
    ),
}


def asr_version_names() -> List[str]:
    """Return the version names ordered fastest to most accurate."""
    return list(ASR_VERSIONS.keys())


def get_asr_version(name: str) -> BeamSearchConfig:
    """Look up a version configuration by name.

    Raises:
        KeyError: If the name is not one of the seven versions.
    """
    try:
        return ASR_VERSIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown ASR version {name!r}; expected one of {asr_version_names()}"
        ) from None
