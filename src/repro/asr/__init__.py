"""Automatic speech recognition substrate.

This package is a from-scratch, pure-Python/NumPy re-implementation of the
class of ASR engine the paper evaluates: a hidden-Markov-model recogniser
driven by a heuristic beam search whose pruning parameters trade accuracy
against latency.

Pipeline (mirroring Section II-A of the paper):

1. :mod:`repro.asr.lexicon` -- phoneme inventory and word pronunciations.
2. :mod:`repro.asr.language_model` -- bigram language model with back-off.
3. :mod:`repro.asr.acoustic` -- synthetic acoustic front-end producing
   per-frame phone log-likelihoods for an utterance (speaker SNR, speaking
   rate and accent all influence difficulty).
4. :mod:`repro.asr.hmm` -- the decoding graph (lexicon x language model).
5. :mod:`repro.asr.beam_search` -- frame-synchronous token-passing beam
   search with the pruning heuristics the paper sweeps (``max_active``,
   ``beam``, ``word_end_beam``, LM successor breadth, pruning scope).
6. :mod:`repro.asr.engine` -- the service-facing engine: transcribe an
   utterance under a given heuristic configuration and report hypothesis,
   confidence, search work and modelled latency.
7. :mod:`repro.asr.versions` -- the seven Pareto-frontier heuristic
   configurations used as service versions.
"""

from repro.asr.acoustic import AcousticFrontEnd, AcousticObservation
from repro.asr.beam_search import BeamSearchConfig, BeamSearchDecoder, DecodeResult
from repro.asr.confidence import hypothesis_confidence
from repro.asr.engine import ASREngine, TranscriptionResult
from repro.asr.hmm import DecodingGraph
from repro.asr.language_model import BigramLanguageModel
from repro.asr.lexicon import Lexicon, PHONEME_INVENTORY
from repro.asr.versions import ASR_VERSIONS, asr_version_names, get_asr_version
from repro.asr.wer import WerBreakdown, word_error_rate

__all__ = [
    "ASREngine",
    "ASR_VERSIONS",
    "AcousticFrontEnd",
    "AcousticObservation",
    "BeamSearchConfig",
    "BeamSearchDecoder",
    "BigramLanguageModel",
    "DecodeResult",
    "DecodingGraph",
    "Lexicon",
    "PHONEME_INVENTORY",
    "TranscriptionResult",
    "WerBreakdown",
    "asr_version_names",
    "get_asr_version",
    "hypothesis_confidence",
    "word_error_rate",
]
