"""Synthetic acoustic front-end.

Real ASR engines extract per-frame features from audio and feed them to an
acoustic neural network that emits per-frame phone posteriors.  We do not
have audio, so this module synthesises the *output* of that front-end
directly: for a given utterance it produces a ``(frames, phones)`` matrix of
log-likelihoods whose quality depends on the speaker's recording conditions.

The synthesis is seeded per utterance (from the corpus seed and the
utterance id), so the same utterance always produces the same observation
matrix regardless of which service version decodes it — exactly the property
the per-request category analysis (Fig. 2) relies on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.asr.lexicon import Lexicon
from repro.datasets.voxforge import Utterance

__all__ = ["AcousticFrontEnd", "AcousticObservation"]


@dataclass(frozen=True)
class AcousticObservation:
    """Per-frame acoustic evidence for one utterance.

    Attributes:
        utterance_id: Identifier of the utterance the evidence belongs to.
        log_likelihoods: Array of shape ``(n_frames, n_phones)`` holding the
            log-likelihood of each phone at each frame.
        frame_phones: The true phone id of every frame (used only for
            diagnostics/tests, never by the decoder).
        n_frames: Number of frames.
    """

    utterance_id: str
    log_likelihoods: np.ndarray
    frame_phones: Tuple[int, ...]

    @property
    def n_frames(self) -> int:
        """Number of acoustic frames."""
        return int(self.log_likelihoods.shape[0])

    @property
    def n_phones(self) -> int:
        """Size of the phoneme inventory the evidence is expressed over."""
        return int(self.log_likelihoods.shape[1])

    def oracle_accuracy(self) -> float:
        """Fraction of frames whose arg-max phone equals the true phone.

        A pure diagnostic for how clean the synthetic acoustics are; the
        decoder never sees :attr:`frame_phones`.
        """
        if self.n_frames == 0:
            return 0.0
        argmax = np.argmax(self.log_likelihoods, axis=1)
        truth = np.asarray(self.frame_phones)
        return float((argmax == truth).mean())


class AcousticFrontEnd:
    """Synthesises per-frame phone log-likelihoods for utterances.

    Args:
        lexicon: Pronunciation lexicon (defines the phone inventory and the
            expansion of transcripts into phone sequences).
        frames_per_phone: Nominal number of frames each phone occupies
            before speaker-rate scaling.
        emission_scale: Sharpness of the synthetic log-likelihoods; larger
            values make frames more peaked around the true phone.
        base_seed: Seed mixed with the utterance id so observations are
            reproducible per utterance.
    """

    def __init__(
        self,
        lexicon: Lexicon,
        *,
        frames_per_phone: int = 3,
        emission_scale: float = 1.0,
        base_seed: int = 7,
    ) -> None:
        if frames_per_phone < 1:
            raise ValueError("frames_per_phone must be at least 1")
        if emission_scale <= 0.0:
            raise ValueError("emission_scale must be positive")
        self.lexicon = lexicon
        self.frames_per_phone = frames_per_phone
        self.emission_scale = emission_scale
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------
    def _utterance_rng(self, utterance: Utterance) -> np.random.Generator:
        digest = zlib.crc32(utterance.utterance_id.encode("utf-8"))
        return np.random.default_rng((self.base_seed << 32) ^ digest)

    def _frame_sequence(
        self, utterance: Utterance, rng: np.random.Generator
    ) -> List[int]:
        """Expand the transcript into the per-frame true-phone sequence."""
        phone_ids = self.lexicon.transcript_phone_ids(utterance.words)
        rate = utterance.speaker.speaking_rate
        frames: List[int] = []
        for phone in phone_ids:
            jitter = rng.uniform(0.75, 1.35)
            duration = max(1, int(round(self.frames_per_phone * jitter / rate)))
            frames.extend([phone] * duration)
        return frames

    def observe(self, utterance: Utterance) -> AcousticObservation:
        """Synthesise the acoustic observation matrix for an utterance.

        The emission for a frame with true phone ``p`` is a noisy one-hot
        vector whose peak height scales with the speaker's linear SNR, plus
        a per-speaker accent bias and white noise, passed through a
        log-softmax.  Lower SNR therefore yields flatter, more confusable
        per-frame evidence.
        """
        rng = self._utterance_rng(utterance)
        frame_phones = self._frame_sequence(utterance, rng)
        n_frames = len(frame_phones)
        n_phones = self.lexicon.n_phones

        snr_linear = 10.0 ** (utterance.speaker.snr_db / 20.0)
        accent = rng.normal(0.0, abs(utterance.speaker.accent_shift), size=n_phones)

        scores = rng.normal(0.0, 1.0, size=(n_frames, n_phones)) + accent
        scores[np.arange(n_frames), frame_phones] += snr_linear
        scores *= self.emission_scale

        log_likelihoods = scores - _logsumexp_rows(scores)
        return AcousticObservation(
            utterance_id=utterance.utterance_id,
            log_likelihoods=log_likelihoods,
            frame_phones=tuple(frame_phones),
        )

    def observe_many(self, utterances: List[Utterance]) -> List[AcousticObservation]:
        """Synthesise observations for a list of utterances."""
        return [self.observe(u) for u in utterances]


def _logsumexp_rows(scores: np.ndarray) -> np.ndarray:
    """Row-wise log-sum-exp, returned as a column for broadcasting."""
    peak = scores.max(axis=1, keepdims=True)
    return peak + np.log(np.exp(scores - peak).sum(axis=1, keepdims=True))
