"""Phoneme inventory and pronunciation lexicon.

The decoder searches over sequences of phonemes, so every vocabulary word
needs a pronunciation.  Real engines ship hand-built pronunciation
dictionaries; here pronunciations are derived deterministically from the
pseudo-word spelling (each letter or digraph maps to one phoneme), which
keeps the mapping stable across runs and makes acoustically similar words
genuinely confusable — the property that creates recognition errors under
aggressive pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["Lexicon", "PHONEME_INVENTORY"]

#: The closed phoneme inventory used by the synthetic acoustic model.  The
#: exact symbols are arbitrary; what matters is that the inventory is small
#: enough for per-frame posteriors to be informative yet large enough for
#: distinct words to have distinct pronunciations.
PHONEME_INVENTORY: Tuple[str, ...] = (
    "AA", "AE", "AY", "B", "D", "EH", "F", "G", "IY", "K",
    "L", "M", "N", "OW", "P", "R", "S", "T", "UW", "V", "Z",
)

_LETTER_TO_PHONE: Dict[str, str] = {
    "a": "AA", "e": "EH", "i": "IY", "o": "OW", "u": "UW",
    "b": "B", "d": "D", "f": "F", "g": "G", "k": "K",
    "l": "L", "m": "M", "n": "N", "p": "P", "r": "R",
    "s": "S", "t": "T", "v": "V", "z": "Z",
}

_DIGRAPH_TO_PHONE: Dict[str, str] = {
    "ai": "AY",
    "ou": "UW",
}


def _pronounce(word: str) -> Tuple[str, ...]:
    """Derive a pronunciation for a pseudo-word from its spelling."""
    phones: List[str] = []
    i = 0
    while i < len(word):
        digraph = word[i : i + 2]
        if digraph in _DIGRAPH_TO_PHONE:
            phones.append(_DIGRAPH_TO_PHONE[digraph])
            i += 2
            continue
        letter = word[i]
        phone = _LETTER_TO_PHONE.get(letter)
        if phone is not None:
            phones.append(phone)
        else:
            # Unknown character: map to a stable phone so the lexicon never
            # fails on exotic spellings (e.g. user-supplied words).
            phones.append("AE")
        i += 1
    if not phones:
        raise ValueError(f"word {word!r} produced an empty pronunciation")
    return tuple(phones)


@dataclass(frozen=True)
class _Entry:
    word: str
    phones: Tuple[str, ...]


class Lexicon:
    """Pronunciation lexicon over a closed vocabulary.

    Args:
        vocabulary: The words the decoder may hypothesise.  Order is
            preserved and defines the integer word ids used throughout the
            decoder.

    Raises:
        ValueError: If the vocabulary is empty or contains duplicates.
    """

    def __init__(self, vocabulary: Sequence[str]) -> None:
        words = list(vocabulary)
        if not words:
            raise ValueError("vocabulary must not be empty")
        if len(set(words)) != len(words):
            raise ValueError("vocabulary contains duplicate words")
        self._entries: List[_Entry] = [
            _Entry(word=w, phones=_pronounce(w)) for w in words
        ]
        self._word_to_id: Dict[str, int] = {w: i for i, w in enumerate(words)}
        self._phone_to_id: Dict[str, int] = {
            p: i for i, p in enumerate(PHONEME_INVENTORY)
        }

    # ------------------------------------------------------------------
    # vocabulary accessors
    # ------------------------------------------------------------------
    @property
    def words(self) -> Tuple[str, ...]:
        """The vocabulary, in word-id order."""
        return tuple(e.word for e in self._entries)

    @property
    def n_words(self) -> int:
        """Vocabulary size."""
        return len(self._entries)

    @property
    def n_phones(self) -> int:
        """Size of the phoneme inventory."""
        return len(PHONEME_INVENTORY)

    def word_id(self, word: str) -> int:
        """Return the integer id of ``word``.

        Raises:
            KeyError: If the word is out of vocabulary.
        """
        return self._word_to_id[word]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return self.n_words

    # ------------------------------------------------------------------
    # pronunciations
    # ------------------------------------------------------------------
    def pronunciation(self, word: str) -> Tuple[str, ...]:
        """Return the phoneme sequence of ``word``."""
        return self._entries[self.word_id(word)].phones

    def pronunciation_ids(self, word: str) -> Tuple[int, ...]:
        """Return the pronunciation as phoneme ids."""
        return tuple(self._phone_to_id[p] for p in self.pronunciation(word))

    def phones_of_word_id(self, word_id: int) -> Tuple[int, ...]:
        """Return the phoneme ids for an integer word id."""
        if not 0 <= word_id < self.n_words:
            raise IndexError(f"word id {word_id} out of range")
        return tuple(
            self._phone_to_id[p] for p in self._entries[word_id].phones
        )

    def phone_id(self, phone: str) -> int:
        """Return the integer id of a phoneme symbol."""
        return self._phone_to_id[phone]

    def transcript_phone_ids(self, words: Iterable[str]) -> List[int]:
        """Flatten a word sequence into its phoneme-id sequence."""
        phone_ids: List[int] = []
        for word in words:
            phone_ids.extend(self.pronunciation_ids(word))
        return phone_ids

    def average_pronunciation_length(self) -> float:
        """Mean number of phones per vocabulary word."""
        return sum(len(e.phones) for e in self._entries) / self.n_words
