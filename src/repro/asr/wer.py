"""Word error rate (WER) computation.

WER is the accuracy metric the paper uses for the ASR service: the number
of word-level edit operations (insertions, deletions, substitutions) needed
to turn the hypothesis into the reference, divided by the number of
reference words.  Lower is better; values above 1.0 are possible when the
hypothesis inserts more words than the reference contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["WerBreakdown", "word_error_rate", "edit_distance"]


@dataclass(frozen=True)
class WerBreakdown:
    """Word-level alignment counts between a hypothesis and a reference.

    Attributes:
        substitutions: Number of substituted words.
        deletions: Number of reference words missing from the hypothesis.
        insertions: Number of hypothesis words absent from the reference.
        n_reference_words: Length of the reference transcript.
    """

    substitutions: int
    deletions: int
    insertions: int
    n_reference_words: int

    @property
    def errors(self) -> int:
        """Total number of word errors."""
        return self.substitutions + self.deletions + self.insertions

    @property
    def wer(self) -> float:
        """Word error rate (errors / reference length).

        An empty reference with a non-empty hypothesis yields a WER equal to
        the number of insertions (conventionally treated as ``errors / 1``);
        an empty reference with an empty hypothesis is a perfect 0.0.
        """
        if self.n_reference_words == 0:
            return float(self.errors)
        return self.errors / self.n_reference_words


def edit_distance(
    hypothesis: Sequence[str], reference: Sequence[str]
) -> WerBreakdown:
    """Compute the word-level Levenshtein alignment between two transcripts.

    Args:
        hypothesis: Hypothesised word sequence.
        reference: Reference word sequence.

    Returns:
        A :class:`WerBreakdown` with the minimum-cost operation counts.
    """
    hyp = list(hypothesis)
    ref = list(reference)
    n_hyp, n_ref = len(hyp), len(ref)

    # costs[i][j] = (total, subs, dels, ins) for ref[:i] vs hyp[:j]
    costs = np.zeros((n_ref + 1, n_hyp + 1), dtype=int)
    ops = np.zeros((n_ref + 1, n_hyp + 1, 3), dtype=int)  # subs, dels, ins

    for i in range(1, n_ref + 1):
        costs[i, 0] = i
        ops[i, 0] = (0, i, 0)
    for j in range(1, n_hyp + 1):
        costs[0, j] = j
        ops[0, j] = (0, 0, j)

    for i in range(1, n_ref + 1):
        for j in range(1, n_hyp + 1):
            if ref[i - 1] == hyp[j - 1]:
                costs[i, j] = costs[i - 1, j - 1]
                ops[i, j] = ops[i - 1, j - 1]
                continue
            substitution = costs[i - 1, j - 1] + 1
            deletion = costs[i - 1, j] + 1
            insertion = costs[i, j - 1] + 1
            best = min(substitution, deletion, insertion)
            costs[i, j] = best
            if best == substitution:
                ops[i, j] = ops[i - 1, j - 1] + np.array([1, 0, 0])
            elif best == deletion:
                ops[i, j] = ops[i - 1, j] + np.array([0, 1, 0])
            else:
                ops[i, j] = ops[i, j - 1] + np.array([0, 0, 1])

    subs, dels, ins = (int(x) for x in ops[n_ref, n_hyp])
    return WerBreakdown(
        substitutions=subs,
        deletions=dels,
        insertions=ins,
        n_reference_words=n_ref,
    )


def word_error_rate(
    hypothesis: Sequence[str], reference: Sequence[str]
) -> float:
    """Word error rate of ``hypothesis`` against ``reference``.

    Convenience wrapper over :func:`edit_distance`.
    """
    return edit_distance(hypothesis, reference).wer
