"""Decoder confidence estimation.

Tolerance Tiers' ensembling policies decide whether a fast service version's
result is good enough by looking at the model's *confidence* in its own
answer (paper Section IV: "result confidence metrics" are one of the two
general ML characteristics the design leverages).  For a beam-search
recogniser two cheap signals are available at the end of a decode:

* the per-frame normalised log score of the winning hypothesis — a poorly
  matching hypothesis accumulates low acoustic likelihoods, and
* the per-frame score margin between the winner and the best *distinct*
  competing hypothesis — a close runner-up means the search was genuinely
  ambiguous.

Both are combined through a logistic squash into a single value in
``[0, 1]``.  The default weights were chosen so that correct transcriptions
of the synthetic corpus land mostly above 0.6 and incorrect ones mostly
below 0.5, giving the routing policies a usable operating range; they are
exposed as keyword arguments so ablations can study other calibrations.
"""

from __future__ import annotations

import math

from repro.asr.beam_search import DecodeResult

__all__ = ["hypothesis_confidence"]


def hypothesis_confidence(
    result: DecodeResult,
    *,
    score_center: float = -2.0,
    score_weight: float = 2.2,
    margin_weight: float = 8.0,
) -> float:
    """Map a decode result to a confidence score in ``[0, 1]``.

    Args:
        result: The decode result to score.
        score_center: Per-frame log score at which the score feature is
            neutral; scores above it push confidence up.
        score_weight: Weight of the per-frame score feature.
        margin_weight: Weight of the per-frame winner/runner-up margin.

    Returns:
        Confidence in ``[0, 1]``; 0.0 if the decode produced no hypothesis.

    Raises:
        ValueError: If either weight is negative.
    """
    if score_weight < 0.0 or margin_weight < 0.0:
        raise ValueError("feature weights must be non-negative")
    if not result.words:
        return 0.0
    frames = max(result.n_frames, 1)
    score_per_frame = result.log_score / frames
    if math.isfinite(result.runner_up_score):
        margin_per_frame = result.score_margin / frames
    else:
        # No surviving competitor: treat as a comfortably wide margin.
        margin_per_frame = 0.25
    logit = score_weight * (score_per_frame - score_center) + margin_weight * (
        margin_per_frame - 0.05
    )
    return 1.0 / (1.0 + math.exp(-logit))
